"""Unit tests for by-example program search."""

import pytest

from repro.transforms import OPERATORS_BY_NAME, ProgramSearcher, TransformProgram, infer_program


def test_identity_shortcut():
    searcher = ProgramSearcher()
    result = searcher.search([("same", "same")])
    assert result.found
    assert len(result.program) == 0
    assert result.program("anything") == "anything"


def test_single_operator_program_found():
    program = infer_program([("20210315", "2021-03-15"), ("19991231", "1999-12-31")])
    assert program is not None
    assert program("20000101") == "2000-01-01"


def test_two_step_composition_found():
    # upper-case then snake->camel is not meaningful; use strip + upper instead.
    examples = [("  hello  ", "HELLO"), ("  bye ", "BYE")]
    program = infer_program(examples, max_depth=2)
    assert program is not None
    assert program(" ok ") == "OK"


def test_inconsistent_examples_yield_no_program():
    program = infer_program([("20210315", "2021-03-15"), ("20210316", "not-a-date")])
    assert program is None


def test_semantic_mapping_not_found_by_search():
    assert infer_program([("germany", "DEU"), ("france", "FRA")]) is None


def test_search_requires_examples():
    with pytest.raises(ValueError):
        ProgramSearcher().search([])


def test_max_depth_validation():
    with pytest.raises(ValueError):
        ProgramSearcher(max_depth=0)


def test_transform_convenience():
    searcher = ProgramSearcher()
    assert searcher.transform([("abc", "ABC")], "xyz") == "XYZ"
    assert searcher.transform([("germany", "DEU")], "spain") is None


def test_program_name_and_consistency():
    program = TransformProgram((OPERATORS_BY_NAME["to_upper"],))
    assert program.name == "to_upper"
    assert program.is_consistent([("a", "A")])
    assert not program.is_consistent([("a", "b")])


def test_candidate_budget_respected():
    searcher = ProgramSearcher(max_candidates=5)
    result = searcher.search([("germany", "DEU")])
    assert not result.found
    assert result.candidates_tried <= 6
