"""Property-based tests for the transformation operators and program search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import OPERATOR_LIBRARY, ProgramSearcher

arbitrary_strings = st.text(min_size=0, max_size=40)


@given(arbitrary_strings)
@settings(max_examples=60)
def test_operators_total_and_string_valued(value):
    for operator in OPERATOR_LIBRARY:
        result = operator(value)
        assert result is None or isinstance(result, str)


@given(st.integers(min_value=0, max_value=10**8))
@settings(max_examples=40)
def test_thousand_separator_round_trip(number):
    add = dict((o.name, o) for o in OPERATOR_LIBRARY)["add_thousands_separator"]
    strip = dict((o.name, o) for o in OPERATOR_LIBRARY)["strip_thousands_separator"]
    formatted = add(str(number))
    assert formatted is not None
    if "," in formatted:
        assert strip(formatted) == str(number)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1990, max_value=2030),
            st.integers(min_value=1, max_value=12),
            st.integers(min_value=1, max_value=28),
        ),
        min_size=2,
        max_size=4,
        unique=True,
    )
)
@settings(max_examples=30, deadline=None)
def test_search_finds_program_consistent_with_unseen_example(dates):
    pairs = [
        (f"{y:04d}{m:02d}{d:02d}", f"{y:04d}-{m:02d}-{d:02d}") for y, m, d in dates
    ]
    *examples, held_out = pairs
    program = ProgramSearcher().search(examples).program
    assert program is not None
    assert program(held_out[0]) == held_out[1]


@given(arbitrary_strings, arbitrary_strings)
@settings(max_examples=30, deadline=None)
def test_found_programs_are_consistent_by_construction(a, b):
    searcher = ProgramSearcher(max_depth=1)
    result = searcher.search([(a, b)])
    if result.program is not None:
        assert result.program(a) == b
