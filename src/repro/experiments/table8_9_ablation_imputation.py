"""Tables 8 and 9 — component ablation of UniDM on the imputation benchmarks.

Components are enabled cumulatively (instance-wise retrieval, meta-wise
retrieval, target prompt construction, context data parsing), following the
row layout of the paper's Tables 8 (Restaurant) and 9 (Buy).
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..eval import (
    IMPUTATION_ABLATION_LADDER,
    ablation_rows,
    format_table,
    run_ablation,
)
from .common import make_unidm

PAPER_RESULTS: dict[str, list[float]] = {
    # In ladder order: none, +instance, +meta, +instance+meta,
    # +retrieval+target prompt, full UniDM.
    "restaurant": [82.6, 84.9, 90.7, 90.7, 91.9, 93.0],
    "buy": [90.8, 92.3, 90.8, 92.3, 96.9, 98.5],
}

DATASETS = ("restaurant", "buy")


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        results = run_ablation(
            dataset,
            method_factory=lambda config: make_unidm(dataset, config, seed=seed + 2),
            variants=IMPUTATION_ABLATION_LADDER,
            max_tasks=max_tasks,
        )
        for (variant_row, paper) in zip(
            ablation_rows(results), PAPER_RESULTS[dataset_name]
        ):
            variant_row["dataset"] = dataset_name
            variant_row["paper"] = paper
            rows.append(variant_row)
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=[
            "dataset",
            "variant",
            "instance_retrieval",
            "meta_retrieval",
            "target_prompt",
            "context_parsing",
            "score",
            "paper",
        ],
        title="Tables 8-9 — UniDM component ablation on data imputation (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
