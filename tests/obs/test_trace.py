"""Tests for trace ids: context propagation and wire-envelope round trips."""

import asyncio
import json
import threading

from repro.api import TransformationSpec, encode_request, parse_request
from repro.api.protocol import decode_response, encode_error, encode_success
from repro.api.errors import ErrorInfo
from repro.api.results import TaskResult
from repro.obs import Trace, new_trace_id

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


# ------------------------------------------------------------------- contexts
def test_trace_ids_are_unique_hex():
    ids = {new_trace_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(t) == 16 and int(t, 16) >= 0 for t in ids)


def test_trace_context_binds_and_unbinds():
    assert Trace.current_id() is None
    with Trace.start() as outer:
        assert Trace.current_id() == outer.trace_id
        with Trace.start("deadbeefdeadbeef") as inner:
            assert Trace.current_id() == inner.trace_id == "deadbeefdeadbeef"
        assert Trace.current_id() == outer.trace_id
    assert Trace.current_id() is None


def test_trace_context_is_isolated_between_threads():
    seen = {}

    def worker():
        seen["in_thread"] = Trace.current_id()

    with Trace.start():
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["in_thread"] is None


def test_trace_context_propagates_through_asyncio_tasks():
    async def child():
        return Trace.current_id()

    async def main():
        with Trace.start() as trace:
            inside = await asyncio.create_task(child())
            return trace.trace_id, inside

    trace_id, inside = asyncio.run(main())
    assert inside == trace_id


# ------------------------------------------------------------------ envelopes
def test_encode_request_stamps_the_active_trace_id():
    with Trace.start() as trace:
        wire = encode_request(SPEC, request_id=1)
    assert wire["trace"] == trace.trace_id
    parsed = parse_request(json.loads(json.dumps(wire)))
    assert parsed.trace == trace.trace_id


def test_encode_request_without_context_has_no_trace_key():
    wire = encode_request(SPEC, request_id=1)
    assert "trace" not in wire
    assert parse_request(wire).trace is None


def test_v1_requests_never_carry_a_trace():
    with Trace.start():
        wire = encode_request(SPEC, request_id=1, version=1)
    assert "trace" not in wire


def test_priority_round_trips_through_the_envelope():
    wire = encode_request(SPEC, request_id=1, priority=5)
    assert wire["priority"] == 5
    assert parse_request(wire).priority == 5
    assert parse_request(encode_request(SPEC, request_id=1)).priority == 0


def test_responses_echo_the_trace_and_decode_surfaces_it():
    result = TaskResult(answer="x", task_type="transformation")
    ok = encode_success(result, request_id=1, version=2, trace="aa" * 8)
    assert ok["trace"] == "aa" * 8
    assert decode_response(ok).trace_id == "aa" * 8

    err = encode_error(
        ErrorInfo(code="overloaded", message="m", retry_after=0.5),
        request_id=2,
        version=2,
        trace="bb" * 8,
    )
    decoded = decode_response(err)
    assert decoded.trace_id == "bb" * 8
    assert decoded.error.code == "overloaded"
    assert decoded.error.retry_after == 0.5


def test_v1_responses_stay_flat_without_trace():
    result = TaskResult(answer="x")
    assert "trace" not in encode_success(result, request_id=1, version=1, trace="cc" * 8)
    assert "trace" not in encode_error(
        ErrorInfo(code="error", message="m"), request_id=1, version=1, trace="cc" * 8
    )


# ------------------------------------------------------------------ end to end
def test_router_forwards_a_batch_trace_to_its_workers():
    from repro.cluster.router import Router
    from repro.cluster.workers import Worker

    class RecordingWorker(Worker):
        def __init__(self, worker_id):
            self.worker_id = worker_id
            self.seen = []

        def submit(self, requests, priority=0, **kwargs):
            self.seen.extend(requests)
            return [
                encode_success(
                    TaskResult(answer="x", task_type="transformation"),
                    request.get("id"),
                    2,
                )
                for request in requests
            ]

        def ping(self):
            return True

    worker = RecordingWorker("w0")
    with Router(workers=[worker]) as router:
        wire = encode_request(SPEC, request_id=1, trace="ab" * 8)
        response = router.handle_batch([wire])[0]
    assert response["trace"] == "ab" * 8  # echoed to the caller...
    assert worker.seen[0]["trace"] == "ab" * 8  # ...and forwarded inward


def test_local_client_echoes_one_trace_id_per_batch_context():
    from repro.api import Client

    with Client.local(seed=0) as client:
        with Trace.start() as trace:
            results = client.submit_many([SPEC, SPEC])
        assert all(r.trace_id == trace.trace_id for r in results)
        # Outside a context every request gets its own fresh id.
        results = client.submit_many([SPEC, SPEC])
        ids = {r.trace_id for r in results}
        assert None not in ids and len(ids) == 2
