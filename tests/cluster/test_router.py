"""Router behaviour: affinity, failover, wire front, flow fan-out, stats."""

import pytest

from cluster_testing import RNG_FREE, PromptPureLLM, fingerprint, make_mixed_specs

from repro.api import Client, PipelineSpec, TransformationSpec
from repro.cluster import ClusterError, Router
from repro.serving.service import InvalidRequest


def make_router(n_workers: int = 3, **overrides) -> Router:
    options = dict(llm_factory=lambda i: PromptPureLLM(), config=RNG_FREE)
    options.update(overrides)
    return Router.local(n_workers, **options)


# ---------------------------------------------------------------- routing
def test_same_spec_always_routes_to_the_same_worker():
    with make_router() as router:
        spec = TransformationSpec(value="19990415", examples=[["a", "b"]])
        owners = {router.worker_for(spec) for _ in range(10)}
        assert len(owners) == 1


def test_results_keep_submission_order(mixed_specs):
    with make_router() as router:
        results = router.submit_specs(mixed_specs)
        assert len(results) == len(mixed_specs)
        types = [result.task_type for result in results]
        # Each round of the mixed workload repeats the seven types in order.
        assert types[:7] == types[7:14]
        assert all(result.error is None for result in results)


def test_repeated_submission_hits_the_owning_workers_cache(mixed_specs):
    with make_router() as router:
        router.submit_specs(mixed_specs)
        cold = {
            row.worker_id: (row.cache_hits, row.cache_misses)
            for row in router.stats().workers
        }
        router.submit_specs(mixed_specs)
        for row in router.stats().workers:
            hits, misses = cold[row.worker_id]
            # Affinity: the rerun added hits only; no shard saw a new miss.
            assert row.cache_misses == misses
            if misses:  # this worker owns at least one spec
                assert row.cache_hits > hits


# --------------------------------------------------------------- failover
def test_worker_death_requeues_onto_survivors(mixed_specs):
    from repro.obs import configure_default_event_log

    log = configure_default_event_log(capacity=8192)
    try:
        with make_router(3) as router:
            baseline = fingerprint(router.submit_specs(mixed_specs))
            victim_id = sorted(router.live_workers)[0]
            router.workers[victim_id].kill()
            results = router.submit_specs(mixed_specs)
            assert fingerprint(results) == baseline  # pure-function regime
            assert victim_id not in router.live_workers
            stats = router.stats()
            assert stats.deaths == 1
            assert stats.requeues > 0
            dead_rows = [row for row in stats.workers if not row.alive]
            assert [row.worker_id for row in dead_rows] == [victim_id]
            # The incident landed in the structured event log.
            deaths = log.events(kind="worker.death")
            assert [e["worker"] for e in deaths] == [victim_id]
            assert deaths[0]["survivors"] == 2
            requeues = log.events(kind="router.requeue")
            assert requeues and all(e["worker"] == victim_id for e in requeues)
    finally:
        configure_default_event_log(capacity=8192)


def test_all_workers_dead_raises_cluster_error():
    with make_router(2) as router:
        for worker in router.workers.values():
            worker.kill()
        with pytest.raises(ClusterError):
            router.submit_specs([TransformationSpec(value="x", examples=[["a", "b"]])])


def test_check_health_unrings_dead_workers():
    with make_router(2) as router:
        victim_id = sorted(router.live_workers)[0]
        router.workers[victim_id].kill()
        alive = router.check_health()
        assert alive[victim_id] is False
        assert victim_id not in router.live_workers
        assert len(router.live_workers) == 1


# -------------------------------------------------------------- wire front
def test_handle_batch_mirrors_service_semantics():
    with make_router(2) as router:
        responses = router.handle_batch(
            [
                {"v": 2, "id": 1, "task": {"type": "transformation",
                                           "value": "x", "examples": [["a", "b"]]}},
                {"v": 2, "id": 2, "task": {"type": "transformation"}},  # missing field
                {"id": 3, "type": "transformation", "value": "x",
                 "examples": [["a", "b"]]},  # flat v1
                InvalidRequest("bad JSON: boom"),
                {"v": 2, "id": 5, "task": {"type": "no_such_task"}},
            ]
        )
        assert [r.get("id") for r in responses] == [1, 2, 3, None, 5]
        assert responses[0]["ok"] is True
        assert responses[1]["error"]["code"] == "invalid_request"
        assert responses[1]["error"]["field"] == "examples"
        assert responses[2]["ok"] is True and "answer" in responses[2]  # v1 shape
        assert "v" not in responses[2]
        # Unparseable lines claim no version, so the error keeps the flat
        # v1 shape (a bare string) — the same behaviour as the service.
        assert responses[3]["ok"] is False
        assert responses[3]["error"] == "bad JSON: boom"
        assert responses[4]["error"]["code"] == "unknown_task_type"


def test_cluster_client_is_specs_only():
    with Client.cluster(
        workers=2, llm_factory=lambda i: PromptPureLLM(), config=RNG_FREE
    ) as client:
        from repro.api.errors import TransportError
        from repro.core.tasks import TransformationTask

        assert client.router.live_workers == {"worker-00", "worker-01"}
        with pytest.raises(TransportError):
            client.run_task(TransformationTask("x", [("a", "b")]))
    with Client.local(llm=PromptPureLLM(), config=RNG_FREE) as local:
        from repro.api.errors import TransportError

        with pytest.raises(TransportError):
            local.router


# ------------------------------------------------------------- flow fan-out
def test_pipeline_spec_fans_out_across_workers():
    rows = [
        {"name": f"shop-{i % 4}", "city": None if i % 2 else "rome"}
        for i in range(12)
    ]
    spec = PipelineSpec(
        rows=rows,
        stages=[{"op": "impute", "column": "city"}],
        partition_size=4,
    )
    with make_router(3) as router:
        results = router.submit_specs([spec])
        assert len(results) == 1
        payload = results[0].answer
        assert payload["columns"] == ["name", "city"]
        assert len(payload["rows"]) == len(rows)
        assert all(row["city"] is not None for row in payload["rows"])
        # The plan itself never hashes to one worker: its compiled specs do.
        routed = {row.worker_id: row.routed for row in router.stats().workers}
        assert sum(routed.values()) > 0
        assert len([count for count in routed.values() if count]) >= 2


def test_cluster_client_matches_local_client_on_pipeline_spec():
    rows = [{"name": f"s-{i}", "city": None if i % 3 else "rome"} for i in range(9)]
    spec = PipelineSpec(
        rows=rows, stages=[{"op": "impute", "column": "city"}], partition_size=3
    )
    with Client.local(llm=PromptPureLLM(), config=RNG_FREE) as local:
        expected = local.submit(spec).answer
    with Client.cluster(
        workers=3, llm_factory=lambda i: PromptPureLLM(), config=RNG_FREE
    ) as cluster:
        observed = cluster.submit(spec).answer
    assert observed["rows"] == expected["rows"]
    assert observed["columns"] == expected["columns"]


def test_pipeline_request_counts_once_in_requests_served():
    """The nested wave submissions of a plan must not inflate the counter."""
    rows = [{"name": f"s-{i}", "city": None if i % 2 else "rome"} for i in range(8)]
    spec = PipelineSpec(
        rows=rows, stages=[{"op": "impute", "column": "city"}], partition_size=2
    )
    with make_router(2) as router:
        router.submit_specs([spec])
        assert router.requests_served == 1  # matches the single service
        assert router.stats().routed > 1  # ...while the waves still routed


# ------------------------------------------------------------------- stats
def test_stats_aggregate_routed_and_cache_counters(mixed_specs):
    with make_router(3) as router:
        router.submit_specs(mixed_specs)
        stats = router.stats()
        assert stats.routed == len(mixed_specs)
        assert stats.routed == sum(row.routed for row in stats.workers)
        assert stats.alive_workers == 3
        assert stats.cache_hits + stats.cache_misses > 0
        payload = stats.to_payload()
        assert payload["routed"] == len(mixed_specs)
        assert len(payload["workers"]) == 3
        assert "workers alive" in stats.describe()


# --------------------------------------------------------------- lifecycle
def test_duplicate_worker_ids_rejected():
    with make_router(1) as router:
        worker = next(iter(router.workers.values()))
        with pytest.raises(ValueError):
            Router([worker, worker])


def test_router_needs_workers():
    with pytest.raises(ValueError):
        Router([])


def test_close_is_idempotent_and_kills_submissions(mixed_specs):
    router = make_router(2)
    router.submit_specs(mixed_specs[:3])
    router.close()
    router.close()
    with pytest.raises(ClusterError):
        router.submit_specs(mixed_specs[:1])
