"""Asyncio-native wire transport: negotiated framing, multiplexed pipelining.

This module is the socket tier of the serving stack.  One asyncio server
(:func:`start_wire_server`) speaks **two framings on the same port**,
chosen per connection by a first-line handshake:

* **JSON lines** (the legacy protocol, and the fallback) — one JSON object
  per ``\\n``-terminated line.  A connection that never sends a handshake
  gets the exact historical semantics: blank lines flush the accumulated
  batch through the handler and responses come back one line each, in
  request order.  Every pre-existing client — ``nc``, piped files, old
  ``Client.remote`` builds — keeps working unmodified.
* **Binary frames** (negotiated) — each message is a 4-byte big-endian
  unsigned length prefix followed by exactly that many bytes of compact
  UTF-8 JSON.  No per-message delimiter scan, no blank-line flushes.

A connection that *does* open with a handshake line::

    {"repro": 1, "frames": ["bin", "lines"]}

is answered with one JSON line naming the chosen framing::

    {"repro": 1, "frame": "bin", "max_frame": 8388608}

and from that byte on the connection is **multiplexed**: every request is
dispatched as it arrives (no blank-line flush needed), many requests ride
in flight concurrently, and responses are correlated by the v2 envelope
``id`` — the order they come back in is not part of the contract.
Requests that arrive while a dispatch is running coalesce into the next
one, so a pipelined burst of N requests costs ~1 executor hop instead of
N connection+thread hops.  See ``docs/wire-transport.md`` for the full
spec (layout, backpressure, error handling, fallback rules).

Framing errors are connection-fatal in binary mode: an oversized length
prefix or a stream that ends mid-frame gets a best-effort ``bad_frame``
error response and the connection closes, because a byte stream that lost
frame sync cannot be re-entered.  In lines mode a bad JSON line is
answered per line (``bad_json``) and the connection lives on, exactly as
before.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from typing import Any, Callable, Sequence

__all__ = [
    "AsyncWireConnection",
    "FRAME_BINARY",
    "FRAME_LINES",
    "FrameError",
    "HANDSHAKE_KEY",
    "MAX_FRAME_BYTES",
    "PROTOCOL_REVISION",
    "WireConnection",
    "WireConnectionPool",
    "client_hello",
    "decode_frame_payload",
    "encode_frame",
    "encode_line",
    "negotiate_frame",
    "order_responses",
    "read_frame",
    "server_hello",
    "start_wire_server",
]

#: Key whose presence in a connection's first JSON line marks a handshake
#: (task requests never carry it: they carry ``task`` / ``type`` instead).
HANDSHAKE_KEY = "repro"

#: Revision of the handshake itself (bump only on incompatible changes).
PROTOCOL_REVISION = 1

#: Framing names as they appear in handshake ``frames`` / ``frame`` fields.
FRAME_LINES = "lines"
FRAME_BINARY = "bin"

#: Hard ceiling on one binary frame's payload (bytes).  Large enough for
#: plan-level ``pipeline`` requests carrying whole tables, small enough to
#: bound what one malicious frame can make the server buffer.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Requests buffered per connection before the reader stops consuming the
#: socket (TCP backpressure then reaches the sender).
MAX_PENDING_REQUESTS = 1024

#: 4-byte big-endian unsigned payload length.
_HEADER = struct.Struct(">I")

#: Contract of a batch handler: raw request objects in, responses out, in
#: request order (mirrors ``repro.serving.service.BatchHandler``).
_Handler = Callable[[list], "list[dict]"]


class FrameError(Exception):
    """A binary frame violated the framing layer (oversized or torn)."""


# ----------------------------------------------------------------- encoding
def encode_frame(payload: Any) -> bytes:
    """One binary frame: length prefix + compact JSON bytes."""
    body = json.dumps(payload, ensure_ascii=False, separators=(",", ":")).encode()
    return _HEADER.pack(len(body)) + body


def encode_line(payload: Any) -> bytes:
    """One JSON-lines message (the legacy/text framing)."""
    return (json.dumps(payload, ensure_ascii=False) + "\n").encode()


def decode_frame_payload(body: bytes) -> Any:
    """Parse one frame's payload bytes (raises :class:`FrameError`)."""
    try:
        return json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from exc


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME_BYTES,
    *,
    skip_newlines: bool = False,
) -> "bytes | None":
    """Read one binary frame's payload bytes; ``None`` on clean EOF.

    With ``skip_newlines`` any leading LF bytes are discarded first: a
    negotiating client follows its hello with one blank line (the
    legacy-server fallback poke), and a server entering binary mode must
    not mistake that ``0x0A`` for the first byte of a length prefix.

    Raises :class:`FrameError` on an oversized declared length or a stream
    that ends mid-header/mid-payload (a *torn* frame) — both mean frame
    sync is lost and the connection cannot be re-entered.
    """
    lead = b""
    if skip_newlines:
        while True:
            try:
                byte = await reader.readexactly(1)
            except asyncio.IncompleteReadError:
                return None  # clean EOF among the padding
            if byte != b"\n":
                lead = byte
                break
    try:
        header = lead + await reader.readexactly(_HEADER.size - len(lead))
    except asyncio.IncompleteReadError as exc:
        if not exc.partial and not lead:  # clean EOF between frames
            return None
        raise FrameError(
            f"torn frame: stream ended {len(lead) + len(exc.partial)} "
            "bytes into a header"
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameError(
            f"frame of {length} bytes exceeds the {max_frame}-byte limit"
        )
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError(
            f"torn frame: stream ended {len(exc.partial)} of {length} "
            "bytes into a payload"
        ) from exc


# ---------------------------------------------------------------- handshake
def client_hello(frames: Sequence[str] = (FRAME_BINARY, FRAME_LINES)) -> dict:
    """The handshake line a negotiating client opens with."""
    return {HANDSHAKE_KEY: PROTOCOL_REVISION, "frames": list(frames)}


def server_hello(frame: str, max_frame: int = MAX_FRAME_BYTES) -> dict:
    """The server's one-line answer naming the chosen framing."""
    return {HANDSHAKE_KEY: PROTOCOL_REVISION, "frame": frame, "max_frame": max_frame}


def negotiate_frame(offered: Any) -> str:
    """Pick the framing for a connection from the client's offer.

    Binary wins when offered (it is why the client negotiated at all);
    anything unrecognisable falls back to JSON lines — the one framing
    every peer speaks.
    """
    if isinstance(offered, (list, tuple)) and FRAME_BINARY in offered:
        return FRAME_BINARY
    return FRAME_LINES


def is_handshake(payload: Any) -> bool:
    """Whether a first-line JSON object is a transport handshake."""
    return isinstance(payload, dict) and HANDSHAKE_KEY in payload


def _bad_frame_response(message: str) -> dict:
    """The best-effort error envelope sent before a framing-fatal close."""
    return {
        "v": 2,
        "id": None,
        "ok": False,
        "error": {"code": "bad_frame", "message": message},
    }


# ------------------------------------------------------------------- server
async def start_wire_server(
    handle_batch: _Handler,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    max_pending: int = MAX_PENDING_REQUESTS,
) -> asyncio.AbstractServer:
    """Bind the asyncio wire server over any batch handler.

    Every connection starts in JSON-lines mode; a first-line handshake
    upgrades it to multiplexed (optionally binary-framed) service, and its
    absence leaves the connection on the exact legacy blank-line-batch
    semantics.  ``handle_batch`` may block and may spin its own event loop
    (the execution engine does), so dispatches run on the default executor
    — coalesced per in-flight window, not per request.
    """

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        conn = _Connection(
            handle_batch,
            reader,
            writer,
            max_frame=max_frame_bytes,
            max_pending=max_pending,
        )
        try:
            await conn.run()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass

    # The stream limit bounds one *line*; binary frames bound themselves via
    # the length prefix, and legacy clients get the same generous ceiling.
    return await asyncio.start_server(
        handle, host, port, limit=max_frame_bytes + 1024
    )


class _Connection:
    """One accepted connection: negotiation, then legacy or multiplexed service."""

    def __init__(
        self,
        handle_batch: _Handler,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_frame: int,
        max_pending: int,
    ):
        self.handle_batch = handle_batch
        self.reader = reader
        self.writer = writer
        self.max_frame = max_frame
        self.max_pending = max_pending
        self.frame = FRAME_LINES
        #: Parsed-but-undispatched requests (the in-flight window).
        self._inbox: list = []
        self._inbox_ready = asyncio.Event()
        self._inbox_drained = asyncio.Event()
        self._inbox_drained.set()
        self._eof = False

    # -------------------------------------------------------------- top level
    async def run(self) -> None:
        first = await self._readline()
        if first is None:
            return
        payload = _maybe_json(first)
        if is_handshake(payload):
            self.frame = negotiate_frame(payload.get("frames"))
            self.writer.write(
                encode_line(server_hello(self.frame, self.max_frame))
            )
            await self.writer.drain()
            await self._run_multiplexed()
        else:
            await self._run_legacy(first)

    # ------------------------------------------------------------ legacy mode
    async def _run_legacy(self, first_line: str) -> None:
        """The historical protocol: blank-line batches, ordered responses."""
        from .service import InvalidRequest

        loop = asyncio.get_running_loop()
        batch: list = []

        def accept(text: str) -> None:
            try:
                batch.append(json.loads(text))
            except json.JSONDecodeError as exc:
                batch.append(InvalidRequest(f"bad JSON: {exc}"))

        async def flush() -> None:
            if not batch:
                return
            responses = await loop.run_in_executor(
                None, self.handle_batch, list(batch)
            )
            batch.clear()
            for response in responses:
                self.writer.write(encode_line(response))
            await self.writer.drain()

        if first_line:
            accept(first_line)
        while True:
            line = await self._readline()
            if line is None:
                break
            if not line:
                await flush()
                continue
            accept(line)
        await flush()

    # ------------------------------------------------------- multiplexed mode
    async def _run_multiplexed(self) -> None:
        """Negotiated service: dispatch-as-they-arrive, id-correlated replies."""
        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        try:
            await self._read_loop()
        finally:
            self._eof = True
            self._inbox_ready.set()  # wake the dispatcher for its last drain
            await dispatcher

    async def _read_loop(self) -> None:
        from .service import InvalidRequest

        while True:
            if len(self._inbox) >= self.max_pending:
                # Stop consuming the socket until the dispatcher catches up;
                # TCP flow control then pushes back on the sender.
                self._inbox_drained.clear()
                await self._inbox_drained.wait()
                continue
            if self.frame == FRAME_BINARY:
                try:
                    # skip_newlines: the client's hello is chased by one
                    # blank line (legacy-server poke) that must not be
                    # mistaken for the first byte of a length prefix.
                    body = await read_frame(
                        self.reader, self.max_frame, skip_newlines=True
                    )
                except FrameError as exc:
                    await self._fail_connection(str(exc))
                    return
                if body is None:
                    return
                try:
                    request = decode_frame_payload(body)
                except FrameError as exc:
                    await self._fail_connection(str(exc))
                    return
            else:
                line = await self._readline()
                if line is None:
                    return
                if not line:  # blank flush lines are legal no-ops here
                    continue
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    request = InvalidRequest(f"bad JSON: {exc}")
            if is_handshake(request):  # repeated hello: idempotent no-op
                continue
            self._inbox.append(request)
            self._inbox_ready.set()

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await self._inbox_ready.wait()
            self._inbox_ready.clear()
            group, self._inbox = self._inbox, []
            self._inbox_drained.set()
            if group:
                try:
                    responses = await loop.run_in_executor(
                        None, self.handle_batch, group
                    )
                except ConnectionError:  # pragma: no cover - peer vanished
                    return
                encode = (
                    encode_frame if self.frame == FRAME_BINARY else encode_line
                )
                try:
                    for response in responses:
                        self.writer.write(encode(response))
                    await self.writer.drain()
                except (ConnectionError, RuntimeError):
                    return  # peer went away; nothing left to answer
            if self._eof and not self._inbox:
                return

    async def _fail_connection(self, message: str) -> None:
        """Best-effort ``bad_frame`` notice, then close (frame sync is lost)."""
        self._eof = True
        try:
            # The error travels in the *negotiated* framing: a binary peer
            # reads one last well-formed frame, then EOF.
            encode = encode_frame if self.frame == FRAME_BINARY else encode_line
            self.writer.write(encode(_bad_frame_response(message)))
            await self.writer.drain()
        except (ConnectionError, RuntimeError):  # pragma: no cover
            pass

    # -------------------------------------------------------------- utilities
    async def _readline(self) -> "str | None":
        """One decoded, stripped line; ``None`` on EOF or an over-long line."""
        try:
            line = await self.reader.readline()
        except ValueError:  # line exceeded the stream limit: unrecoverable
            await self._fail_connection("request line exceeds the size limit")
            return None
        if not line:
            return None
        return line.decode(errors="replace").strip()


def _maybe_json(text: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return None


# ------------------------------------------------------------- client (sync)
def order_responses(requests: "list[dict]", responses: "list[dict]") -> "list[dict]":
    """Align multiplexed responses with their requests by envelope ``id``.

    Multiplexed connections only promise id correlation, not ordering.  When
    every request carries a unique, echoed id the responses are returned in
    request order; otherwise (v1 callers without ids, duplicate ids) the
    arrival order is preserved — which the in-order server dispatcher makes
    correct for those callers anyway.
    """
    ids = [
        request.get("id") if isinstance(request, dict) else None
        for request in requests
    ]
    try:
        unique = len(set(ids)) == len(ids) and None not in ids
    except TypeError:  # unhashable id: arrival order
        return responses
    if not unique or len(responses) != len(requests):
        return responses
    by_id: dict = {}
    for response in responses:
        if isinstance(response, dict):
            by_id.setdefault(response.get("id"), response)
    if any(request_id not in by_id for request_id in ids):
        return responses
    return [by_id[request_id] for request_id in ids]


class _SocketReader:
    """Minimal buffered reader over a blocking socket (lines and exact reads).

    ``socket.makefile`` cannot switch between text lines and binary frames
    on one connection; this can.
    """

    def __init__(self, sock: "socket.socket"):
        self._sock = sock
        self._buffer = b""

    def read_line(self) -> "bytes | None":
        """One ``\\n``-terminated line without the terminator; ``None`` on EOF."""
        while b"\n" not in self._buffer:
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    line, self._buffer = self._buffer, b""
                    return line
                return None
            self._buffer += chunk
        line, self._buffer = self._buffer.split(b"\n", 1)
        return line

    def read_exactly(self, count: int) -> "bytes | None":
        """Exactly ``count`` bytes; ``None`` on clean EOF at a boundary."""
        while len(self._buffer) < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                if not self._buffer:
                    return None
                raise FrameError(
                    f"torn frame: connection closed {len(self._buffer)} of "
                    f"{count} bytes into a message"
                )
            self._buffer += chunk
        body, self._buffer = self._buffer[:count], self._buffer[count:]
        return body


class WireConnection:
    """One negotiated (or legacy) client connection, reusable across batches.

    ``open`` performs the connect-time handshake: the hello line plus one
    blank line, then one reply line.  A transport-aware server answers the
    hello itself (choosing the framing); a legacy server treats the hello as
    an invalid request and answers a normal error response when the blank
    line flushes it — either way exactly one line comes back, and its
    ``"repro"`` key (or absence) decides the connection's mode.  The same
    object then carries any number of request batches.
    """

    def __init__(self, sock: "socket.socket", mode: str, max_frame: int):
        self._sock = sock
        self._reader = _SocketReader(sock)
        #: ``FRAME_BINARY`` / ``FRAME_LINES`` (both multiplexed) or ``"legacy"``.
        self.mode = mode
        self.max_frame = max_frame
        self._alive = True

    # ------------------------------------------------------------ life-cycle
    @classmethod
    def open(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        negotiate: bool = True,
        frames: Sequence[str] = (FRAME_BINARY, FRAME_LINES),
    ) -> "WireConnection":
        sock = socket.create_connection((host, port), timeout=timeout)
        if not negotiate:
            return cls(sock, "legacy", MAX_FRAME_BYTES)
        sock.sendall(encode_line(client_hello(frames)) + b"\n")
        reader = _SocketReader(sock)
        line = reader.read_line()
        if line is None:
            sock.close()
            raise ConnectionError("connection closed during the handshake")
        reply = _maybe_json(line.decode(errors="replace").strip())
        if is_handshake(reply):
            mode = str(reply.get("frame", FRAME_LINES))
            max_frame = int(reply.get("max_frame") or MAX_FRAME_BYTES)
        else:
            # A legacy server answered the hello with an error response:
            # fall back to blank-line batches on this same connection.
            mode, max_frame = "legacy", MAX_FRAME_BYTES
        conn = cls(sock, mode, max_frame)
        conn._reader = reader
        return conn

    @property
    def alive(self) -> bool:
        return self._alive

    def close(self) -> None:
        self._alive = False
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown best-effort
            pass

    # --------------------------------------------------------------- batches
    def send_batch(self, requests: "list[dict]") -> "list[dict]":
        """Ship one batch and collect its responses (request order)."""
        try:
            return self._send_batch(requests)
        except Exception:
            self._alive = False
            raise

    def _send_batch(self, requests: "list[dict]") -> "list[dict]":
        if self.mode == FRAME_BINARY:
            self._sock.sendall(b"".join(encode_frame(r) for r in requests))
            responses = [self._read_frame_response() for _ in requests]
            return order_responses(requests, responses)
        if self.mode == FRAME_LINES:
            self._sock.sendall(b"".join(encode_line(r) for r in requests))
            responses = [self._read_line_response() for _ in requests]
            return order_responses(requests, responses)
        # Legacy: lines + blank flush; responses arrive strictly in order.
        self._sock.sendall(b"".join(encode_line(r) for r in requests) + b"\n")
        return [self._read_line_response() for _ in requests]

    def _read_frame_response(self) -> dict:
        header = self._reader.read_exactly(_HEADER.size)
        if header is None:
            raise ConnectionError("service closed the connection mid-batch")
        (length,) = _HEADER.unpack(header)
        if length > self.max_frame:
            raise FrameError(
                f"service sent a {length}-byte frame over the "
                f"{self.max_frame}-byte limit"
            )
        body = self._reader.read_exactly(length)
        if body is None:  # pragma: no cover - read_exactly raises instead
            raise ConnectionError("service closed the connection mid-frame")
        return self._require_dict(decode_frame_payload(body))

    def _read_line_response(self) -> dict:
        line = self._reader.read_line()
        if line is None:
            raise ConnectionError("service closed the connection mid-batch")
        payload = _maybe_json(line.decode(errors="replace").strip())
        if payload is None:
            raise FrameError("service answered bad JSON")
        return self._require_dict(payload)

    @staticmethod
    def _require_dict(payload: Any) -> dict:
        if not isinstance(payload, dict):
            raise FrameError(
                f"service answered a non-object response: {payload!r}"
            )
        return payload


class WireConnectionPool:
    """Thread-safe keep-alive pool of :class:`WireConnection` objects.

    ``acquire`` hands out an idle healthy connection or opens a fresh one;
    ``release`` returns it for reuse (up to ``size`` idle connections are
    retained).  Pooling is what turns the connect+handshake round trip into
    a one-time cost instead of a per-batch one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        size: int = 4,
        negotiate: bool = True,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.size = size
        self.negotiate = negotiate
        self._idle: "list[WireConnection]" = []
        self._lock = threading.Lock()
        self._closed = False

    def acquire(self) -> WireConnection:
        with self._lock:
            while self._idle:
                conn = self._idle.pop()
                if conn.alive:
                    return conn
                conn.close()
        return WireConnection.open(
            self.host, self.port, self.timeout, negotiate=self.negotiate
        )

    def release(self, conn: WireConnection) -> None:
        with self._lock:
            if not self._closed and conn.alive and len(self._idle) < self.size:
                self._idle.append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


# ------------------------------------------------------------ client (async)
class AsyncWireConnection:
    """The asyncio twin of :class:`WireConnection` (same handshake, modes).

    ``send_batch`` is *streaming*: the writer coroutine pushes requests
    while the reader coroutine is already collecting responses, so a large
    pipelined batch overlaps its own upload and download on one connection.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        mode: str,
        max_frame: int,
        timeout: float,
    ):
        self._reader = reader
        self._writer = writer
        self.mode = mode
        self.max_frame = max_frame
        self.timeout = timeout
        self._alive = True

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        negotiate: bool = True,
        frames: Sequence[str] = (FRAME_BINARY, FRAME_LINES),
    ) -> "AsyncWireConnection":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES + 1024
        )
        if not negotiate:
            return cls(reader, writer, "legacy", MAX_FRAME_BYTES, timeout)
        writer.write(encode_line(client_hello(frames)) + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            writer.close()
            raise ConnectionError("connection closed during the handshake")
        reply = _maybe_json(line.decode(errors="replace").strip())
        if is_handshake(reply):
            mode = str(reply.get("frame", FRAME_LINES))
            max_frame = int(reply.get("max_frame") or MAX_FRAME_BYTES)
        else:
            mode, max_frame = "legacy", MAX_FRAME_BYTES
        return cls(reader, writer, mode, max_frame, timeout)

    @property
    def alive(self) -> bool:
        return self._alive and not self._writer.is_closing()

    async def close(self) -> None:
        self._alive = False
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except OSError:  # pragma: no cover - teardown best-effort
            pass

    async def send_batch(self, requests: "list[dict]") -> "list[dict]":
        try:
            return await self._send_batch(requests)
        except Exception:
            self._alive = False
            raise

    async def _send_batch(self, requests: "list[dict]") -> "list[dict]":
        binary = self.mode == FRAME_BINARY
        encode = encode_frame if binary else encode_line

        async def write_all() -> None:
            for request in requests:
                self._writer.write(encode(request))
                await self._writer.drain()
            if self.mode == "legacy":
                self._writer.write(b"\n")  # the blank flush line
                await self._writer.drain()

        writer_task = asyncio.ensure_future(write_all())
        responses: "list[dict]" = []
        try:
            for _ in requests:
                if binary:
                    response = await asyncio.wait_for(
                        self._read_frame_response(), self.timeout
                    )
                else:
                    response = await asyncio.wait_for(
                        self._read_line_response(), self.timeout
                    )
                responses.append(response)
        finally:
            if not writer_task.done():
                writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, OSError):
                pass
        if self.mode == "legacy":
            return responses
        return order_responses(requests, responses)

    async def _read_frame_response(self) -> dict:
        body = await read_frame(self._reader, self.max_frame)
        if body is None:
            raise ConnectionError("service closed the connection mid-batch")
        return WireConnection._require_dict(decode_frame_payload(body))

    async def _read_line_response(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection mid-batch")
        payload = _maybe_json(line.decode(errors="replace").strip())
        if payload is None:
            raise FrameError("service answered bad JSON")
        return WireConnection._require_dict(payload)
