"""Regenerate every paper table/figure and write the results to a report file.

Usage::

    python scripts/run_all_experiments.py [--max-tasks N] [--out results.txt]

The per-experiment ``max_tasks`` cap trades fidelity for runtime; ``None``
(default) runs every benchmark at its full generated size.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.eval import format_table
from repro.experiments import ALL_EXPERIMENTS

COLUMNS = {
    "table1": ["dataset", "method", "score", "paper"],
    "table2": ["dataset", "method", "score", "paper"],
    "table3": ["dataset", "method", "score", "paper", "precision", "recall"],
    "table4": ["dataset", "method", "score", "paper"],
    "table5": ["model", "fm_f1", "fm_paper", "unidm_f1", "unidm_paper"],
    "table6": ["model", "restaurant", "restaurant_paper", "buy", "buy_paper"],
    "table7": ["dataset", "method", "tokens_per_query", "llm_calls_per_query", "paper"],
    "table8_9": [
        "dataset", "variant", "instance_retrieval", "meta_retrieval",
        "target_prompt", "context_parsing", "score", "paper",
    ],
    "table10": ["dataset", "variant", "target_prompt", "context_parsing", "score", "paper"],
    "table11": ["method", "score", "paper"],
    "figure5": ["method", "threshold", "precision", "recall", "f1"],
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-tasks", type=int, default=None)
    parser.add_argument("--out", type=Path, default=Path("experiment_results.txt"))
    parser.add_argument("--json-out", type=Path, default=Path("experiment_results.json"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    sections: list[str] = []
    raw: dict[str, list[dict]] = {}
    for name, module in ALL_EXPERIMENTS.items():
        start = time.time()
        kwargs = {"seed": args.seed}
        if args.max_tasks is not None:
            kwargs["max_tasks"] = args.max_tasks
        rows = module.run(**kwargs)
        raw[name] = rows
        elapsed = time.time() - start
        table = format_table(rows, columns=COLUMNS.get(name), title=f"== {name} ==")
        sections.append(f"{table}\n({elapsed:.1f}s)\n")
        print(sections[-1], flush=True)

    args.out.write_text("\n".join(sections), encoding="utf-8")
    args.json_out.write_text(json.dumps(raw, indent=2, default=str), encoding="utf-8")
    print(f"wrote {args.out} and {args.json_out}")


if __name__ == "__main__":
    main()
