"""Sharded multi-worker serving with cache affinity and live elasticity.

``repro.cluster`` scales the single-process serving tier horizontally: a
:class:`Router` consistent-hashes task specs across N workers — in-process
:class:`ThreadWorker` shards or spawned :class:`SubprocessWorker` processes
speaking the v2 TCP protocol — so each worker owns a disjoint persistent
cache shard and repeated work always lands where its cache is.

The worker set is **elastic at runtime**: :meth:`Router.add_worker` /
:meth:`Router.remove_worker` resize the ring while requests are in flight,
migrating only the hash-minimal set of cache entries between shards; a
:class:`Supervisor` auto-restarts crashed workers in place (same id, same
shard, warm-restart replay) with capped exponential backoff; and an
:class:`Autoscaler` drives both from the rolling load windows.  The
:class:`FaultInjector` harness makes every one of those transitions
deterministically testable.

Entry points:

* :meth:`repro.api.Client.cluster` — the facade constructor most code uses;
* :meth:`Router.local` / :meth:`Router.spawn` — direct router assembly;
* ``python -m repro serve --cluster --workers 4 [--autoscale]`` — the
  sharded service CLI.

See ``docs/architecture.md`` for where the cluster tier sits in the stack.
"""

from .autoscaler import Autoscaler
from .faults import FaultInjector, FaultyWorker
from .hashing import HashRing, minimal_moved_keys, spec_key
from .router import Router
from .stats import ClusterStats, WorkerStats
from .supervisor import Supervisor
from .workers import (
    ClusterError,
    SubprocessWorker,
    ThreadWorker,
    Worker,
    WorkerDeadError,
)

__all__ = [
    "Autoscaler",
    "ClusterError",
    "ClusterStats",
    "FaultInjector",
    "FaultyWorker",
    "HashRing",
    "Router",
    "SubprocessWorker",
    "Supervisor",
    "ThreadWorker",
    "Worker",
    "WorkerDeadError",
    "WorkerStats",
    "minimal_moved_keys",
    "spec_key",
]
