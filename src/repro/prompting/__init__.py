"""Canonical prompt templates shared by the UniDM pipeline and the simulated LLM."""

from .templates import (
    CLOZE_BLANK,
    CLOZE_CONSTRUCTION,
    CLOZE_DEMONSTRATIONS,
    DATA_PARSING,
    DIRECT_ANSWER,
    FM_ENTITY_RESOLUTION_QUESTION,
    FM_ERROR_DETECTION_QUESTION,
    FM_IMPUTATION_QUESTION,
    FM_ROW_SEPARATOR,
    FM_TRANSFORMATION_QUESTION,
    INSTANCE_RETRIEVAL,
    META_RETRIEVAL,
    ClozeDemonstration,
    PromptTemplate,
    render_demonstrations,
)

__all__ = [
    "CLOZE_BLANK",
    "CLOZE_CONSTRUCTION",
    "CLOZE_DEMONSTRATIONS",
    "ClozeDemonstration",
    "DATA_PARSING",
    "DIRECT_ANSWER",
    "FM_ENTITY_RESOLUTION_QUESTION",
    "FM_ERROR_DETECTION_QUESTION",
    "FM_IMPUTATION_QUESTION",
    "FM_ROW_SEPARATOR",
    "FM_TRANSFORMATION_QUESTION",
    "INSTANCE_RETRIEVAL",
    "META_RETRIEVAL",
    "PromptTemplate",
    "render_demonstrations",
]
