"""Unit tests for automatic context retrieval."""

import numpy as np

from repro.core import ImputationTask, UniDMConfig
from repro.core.retrieval import ContextRetriever
from repro.core.types import PromptTrace
from repro.llm import EchoLLM


def make_task(city_table):
    return ImputationTask(city_table, city_table[5], "timezone")


def test_retrieval_selects_llm_suggested_attribute(city_table, city_llm):
    config = UniDMConfig.full(candidate_sample_size=5, top_k_instances=2)
    retriever = ContextRetriever(city_llm, config)
    trace = PromptTrace()
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0), trace)
    assert not context.is_empty
    assert context.selected_by_llm == ["country"]
    # context attributes: pk + helpful + target
    assert context.attributes[0] == "city"
    assert "timezone" in context.attributes
    assert len(context.records) <= 2
    assert trace.meta_retrieval is not None
    assert trace.instance_retrieval is not None


def test_retrieval_excludes_target_record(city_table, city_llm):
    config = UniDMConfig.full(candidate_sample_size=10, top_k_instances=5)
    retriever = ContextRetriever(city_llm, config)
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0))
    target_id = city_table[5].record_id
    assert all(record.record_id != target_id for record in context.records)


def test_random_variants_do_not_call_llm(city_table):
    llm = EchoLLM(reply="")
    config = UniDMConfig.random_context(candidate_sample_size=5, top_k_instances=2)
    retriever = ContextRetriever(llm, config)
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0))
    assert llm.usage.calls == 0
    assert len(context.records) == 2
    assert len(context.selected_by_llm) == 0 or context.selected_by_llm


def test_llm_garbage_reply_falls_back_to_random(city_table):
    llm = EchoLLM(reply="this mentions no attribute at all")
    config = UniDMConfig.full(candidate_sample_size=5, top_k_instances=2)
    retriever = ContextRetriever(llm, config)
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0))
    # One attribute is still chosen (randomly) despite the useless reply.
    assert len(context.selected_by_llm) == 1


def test_zero_topk_returns_no_records(city_table, city_llm):
    config = UniDMConfig.full(candidate_sample_size=5, top_k_instances=0)
    retriever = ContextRetriever(city_llm, config)
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0))
    assert context.records == []


def test_score_parser_handles_malformed_lines():
    scores = ContextRetriever._parse_scores("1: 3\nbogus line\n2) 1\n99: 2", 3)
    assert scores == [3.0, 1.0, 0.0]


def test_score_parser_accepts_decimal_scores():
    scores = ContextRetriever._parse_scores("1: 4.5\n2: 2.25\n3) 0.75", 3)
    assert scores == [4.5, 2.25, 0.75]


def test_score_parser_accepts_leading_decimal_point():
    scores = ContextRetriever._parse_scores("1: .5\n2: .25", 2)
    assert scores == [0.5, 0.25]


def test_score_parser_ranks_by_fractional_scores(city_table):
    # Decimal scores must actually order the pool: "2" outranks "1".
    llm = EchoLLM(reply="1: 1.25\n2: 2.75")
    config = UniDMConfig.full(candidate_sample_size=2, top_k_instances=1)
    retriever = ContextRetriever(llm, config)
    context = retriever.retrieve(make_task(city_table), np.random.default_rng(0))
    assert len(context.records) == 1


def test_no_table_task_yields_empty_context(city_llm):
    from repro.core import TransformationTask

    retriever = ContextRetriever(city_llm, UniDMConfig.full())
    context = retriever.retrieve(
        TransformationTask("a", [("x", "y")]), np.random.default_rng(0)
    )
    assert context.is_empty
