"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs also work in
environments whose setuptools predates PEP 660 editable-wheel support (no
``wheel`` package available offline).
"""

from setuptools import setup

setup()
