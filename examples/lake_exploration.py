"""Exploring a data lake with flow pipelines: join, ask, extract.

The appendix tasks show that the unified framework generalises beyond
cell-level cleaning; this script drives all three lake workloads through
declarative :class:`repro.flow.Pipeline` stages instead of per-row loops:

* **Join** — an LLM-gated left join: one join-discovery task decides whether
  two lake columns are joinable, and only then are the reference columns
  merged in (Figure 4);
* **Ask** — whole-table question answering as a pipeline stage whose answers
  land in the flow's ``answers`` channel (Figure 3);
* **Extract** — populating a structured view from semi-structured documents;
  the three extraction stages write disjoint columns, so the planner fuses
  them into a single submission wave (Figure 6).

Run with::

    python examples/lake_exploration.py
"""

from __future__ import annotations

from repro.api import Client
from repro.core import UniDMConfig
from repro.datalake import Table
from repro.datasets import load_dataset
from repro.eval import flow_stage_rows, format_table
from repro.experiments.common import make_llm
from repro.flow import Ask, Extract, Join, Pipeline


def _client(dataset, **config_overrides) -> Client:
    return Client.local(
        llm=make_llm(dataset, seed=2),
        config=UniDMConfig.full(seed=0, **config_overrides),
        batch_size=8,
        workers=8,
    )


def llm_gated_join() -> None:
    """Enrich the FIFA ranking table with country names — if the LLM agrees."""
    dataset = load_dataset("nextiajd", seed=0, n_pairs=12)
    ranking = dataset.tables["fifa_ranking"]
    geo = dataset.tables["countries_and_continents"]
    flow = Pipeline(
        [
            # Joinable pair: country_abrv lines up with the ISO code.
            Join(geo, on="country_abrv", other_on="ISO", prefix="geo_"),
            # Nonsense pair: country codes do not join with order ids.
            Join(dataset.tables["orders"], on="country_abrv", other_on="order_id",
                 other_name="orders", prefix="order_"),
        ],
        name="lake-join",
    )
    with _client(dataset) as client:
        result = flow.run(ranking, client=client)
    print("join decisions:", result.answers)
    sample = [
        {k: record[k] for k in ("country_full", "country_abrv", "geo_name", "order_item_name")}
        for record in list(result.table)[:5]
    ]
    print(format_table(sample, title="FIFA ranking after the two gated joins"))


def whole_table_questions() -> None:
    """Aggregate questions over one table, answered as pipeline stages."""
    dataset = load_dataset("wiki_table_questions", seed=0, n_tables=2)
    by_table: dict[str, list] = {}
    for task, truth in zip(dataset.tasks, dataset.ground_truth):
        by_table.setdefault(task.table().name, []).append((task, truth))
    name, entries = next(iter(by_table.items()))
    flow = Pipeline(
        [Ask(task.question, name=f"q{i}") for i, (task, _) in enumerate(entries)],
        name="table-qa",
    )
    with _client(dataset, candidate_sample_size=10) as client:
        result = flow.run(entries[0][0].table(), client=client)
    rows = [
        {"question": task.question, "answer": result.answers[f"q{i}"], "expected": truth}
        for i, (task, truth) in enumerate(entries)
    ]
    print(format_table(rows, title=f"Questions over table {name!r}"))


def document_extraction() -> None:
    """Build a structured player view out of semi-structured pages."""
    dataset = load_dataset("nba_players", seed=0, n_documents=6)
    pages = Table.from_dicts(
        "player_pages",
        [{"page": document} for document in
         dict.fromkeys(task.document for task in dataset.tasks)],
    )
    flow = Pipeline(
        [
            Extract("page", "player"),
            Extract("page", "college"),
            Extract("page", "position"),
        ],
        name="player-view",
    )
    with _client(dataset) as client:
        result = flow.run(pages, client=client)
    view = [
        {k: record[k] for k in ("player", "college", "position")}
        for record in result.table
    ]
    print(format_table(view, title="Structured view extracted from player pages"))
    print(format_table(flow_stage_rows(result.report), title="Stage metrics"))
    print(
        f"waves: {result.report.waves} (the three extract stages write "
        "disjoint columns, so they share one submission wave)"
    )


def main() -> None:
    llm_gated_join()
    print()
    whole_table_questions()
    print()
    document_extraction()


if __name__ == "__main__":
    main()
