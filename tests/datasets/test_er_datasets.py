"""Unit tests for the entity resolution benchmarks."""

import pytest

from repro.core import EntityResolutionTask, TaskType
from repro.datasets import load_dataset
from repro.llm.answering import entity_match_score


def test_beer_structure(beer_dataset):
    assert beer_dataset.task_type is TaskType.ENTITY_RESOLUTION
    assert all(isinstance(t, EntityResolutionTask) for t in beer_dataset.tasks)
    assert len(beer_dataset.tables) == 2
    assert beer_dataset.train_pairs, "training split expected"
    labels = beer_dataset.ground_truth
    assert 0.2 < sum(labels) / len(labels) < 0.6


def test_positives_more_similar_than_negatives(beer_dataset):
    pos, neg = [], []
    for task, label in zip(beer_dataset.tasks, beer_dataset.ground_truth):
        score = entity_match_score(task.describe_a(), task.describe_b())
        (pos if label else neg).append(score)
    assert sum(pos) / len(pos) > sum(neg) / len(neg)


def test_walmart_has_large_training_split(walmart_dataset):
    assert len(walmart_dataset.train_pairs) >= 100
    labels = [p.label for p in walmart_dataset.train_pairs]
    assert any(labels) and not all(labels)


@pytest.mark.parametrize("name", ["amazon_google", "itunes_amazon"])
def test_other_er_datasets_build(name):
    dataset = load_dataset(name, seed=0, n_entities=30, n_pairs=40, n_train_pairs=40)
    assert len(dataset) == 40
    assert len(dataset.tables) == 2


def test_amazon_google_is_harder_than_beer():
    beer = load_dataset("beer", seed=0, n_entities=40, n_pairs=80, n_train_pairs=40)
    ag = load_dataset("amazon_google", seed=0, n_entities=40, n_pairs=80, n_train_pairs=40)

    def separation(dataset):
        pos, neg = [], []
        for task, label in zip(dataset.tasks, dataset.ground_truth):
            score = entity_match_score(
                dataset.knowledge.canonicalize(task.describe_a()),
                dataset.knowledge.canonicalize(task.describe_b()),
            )
            (pos if label else neg).append(score)
        return sum(pos) / len(pos) - sum(neg) / len(neg)

    assert separation(ag) < separation(beer)


def test_er_knowledge_registers_abbreviations(beer_dataset):
    assert beer_dataset.knowledge.are_equivalent("india pale ale", "ipa")
