"""Unit tests for CSV / JSON persistence of tables and lakes."""

from repro.datalake import (
    DataLake,
    lake_from_directory,
    lake_to_directory,
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)


def test_csv_round_trip(tmp_path, city_table):
    path = table_to_csv(city_table, tmp_path / "cities.csv")
    loaded = table_from_csv(path)
    assert loaded.schema.names == city_table.schema.names
    assert len(loaded) == len(city_table)
    assert loaded[0]["city"] == city_table[0]["city"]
    # Missing timezone round-trips as missing (empty -> None).
    assert loaded[5]["timezone"] is None


def test_csv_preserves_given_schema(tmp_path, city_table):
    path = table_to_csv(city_table, tmp_path / "cities.csv")
    loaded = table_from_csv(path, name="renamed", schema=city_table.schema)
    assert loaded.name == "renamed"
    assert loaded.schema.primary_key().name == "city"


def test_json_round_trip_preserves_schema_metadata(tmp_path, city_table):
    path = tmp_path / "cities.json"
    table_to_json(city_table, path)
    loaded = table_from_json(path)
    assert loaded.schema.primary_key().name == "city"
    assert loaded.schema["population"].type.is_numeric()
    assert len(loaded) == len(city_table)


def test_json_round_trip_from_string(city_table):
    payload = table_to_json(city_table)
    loaded = table_from_json(payload)
    assert loaded.name == city_table.name


def test_lake_directory_round_trip(tmp_path, city_table):
    lake = DataLake([city_table], name="demo")
    directory = lake_to_directory(lake, tmp_path / "lake")
    loaded = lake_from_directory(directory, name="demo")
    assert loaded.table_names == ["cities"]
    assert len(loaded["cities"]) == len(city_table)
