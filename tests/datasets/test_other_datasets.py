"""Unit tests for the TableQA, join discovery and extraction benchmarks."""

from repro.core import (
    InformationExtractionTask,
    JoinDiscoveryTask,
    TableQATask,
    TaskType,
)


def test_tableqa_dataset(tableqa_dataset):
    assert tableqa_dataset.task_type is TaskType.TABLE_QA
    assert all(isinstance(t, TableQATask) for t in tableqa_dataset.tasks)
    # Ground truth answers are consistent with the generated tables.
    for task, answer in zip(tableqa_dataset.tasks, tableqa_dataset.ground_truth):
        assert answer.isdigit()
        if "total" in task.question:
            nations = [r["nation"] for r in task.table() if str(r["nation"]) in task.question]
            golds = [int(r["gold"]) for r in task.table() if str(r["nation"]) in task.question]
            assert sum(golds) == int(answer)
            assert len(nations) == 2


def test_nextiajd_dataset(nextiajd_dataset):
    assert nextiajd_dataset.task_type is TaskType.JOIN_DISCOVERY
    assert all(isinstance(t, JoinDiscoveryTask) for t in nextiajd_dataset.tasks)
    labels = nextiajd_dataset.ground_truth
    assert any(labels) and not all(labels)
    pairs = nextiajd_dataset.extra["pairs"]
    kinds = {p.kind for p in pairs}
    assert "semantic" in kinds and "negative" in kinds
    # Semantic joins rely on equivalences registered in the knowledge store.
    assert nextiajd_dataset.knowledge.are_equivalent("germany", "DEU")


def test_nextiajd_tables_exist_for_every_pair(nextiajd_dataset):
    for task in nextiajd_dataset.tasks:
        assert task.column_a in task.table_a.schema
        assert task.column_b in task.table_b.schema


def test_nba_players_dataset(nba_dataset):
    assert nba_dataset.task_type is TaskType.INFORMATION_EXTRACTION
    assert all(isinstance(t, InformationExtractionTask) for t in nba_dataset.tasks)
    attributes = set(nba_dataset.extra["attributes"])
    assert attributes == {"player", "height", "position", "college"}
    documents = nba_dataset.extra["documents"]
    # Every ground-truth value actually appears in its document.
    for doc in documents[:10]:
        for attribute, value in doc.values.items():
            assert value in doc.document
    # Several distinct templates are used.
    assert len({d.template_index for d in documents}) >= 2
    # Domain values for closed attributes are registered for the extractors.
    assert nba_dataset.knowledge.domain_values("position")
