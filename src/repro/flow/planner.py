"""Compiling pipeline stages into deduplicated, schedulable spec batches.

Two jobs live here:

* **Dependency-aware wave scheduling** — consecutive LLM stages whose
  read/write column sets do not conflict compile against the *same* input
  table and submit as one combined batch (:func:`independent_waves`).  Three
  ``Extract`` stages writing disjoint columns, for example, share one engine
  round instead of three; a ``Transform`` that reads a column an earlier
  wave member writes must wait for its own wave, and evidence-carrying
  operators (whole rows travel inside their specs) never follow any writer
  in a wave (:meth:`~repro.flow.operators.Operator.scans_all_columns`).
* **Cross-stage prompt deduplication** — every compiled
  :class:`~repro.flow.operators.WorkItem` is keyed by a digest of the
  canonical JSON of its spec's wire form; a spec already answered earlier in
  the run (another stage, another partition, or earlier in the same wave)
  reuses the recorded result instead of re-submitting (:class:`Planner`).
  On lake tables with duplicated rows or repeated values this is where most
  of the LLM-call savings come from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..api.specs import TaskSpec
from .operators import Operator, WorkItem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.results import TaskResult
    from ..datalake.table import Table


def spec_key(spec: TaskSpec) -> str:
    """Canonical dedup key of a spec: a digest of its key-sorted wire form.

    Evidence-carrying specs embed whole partitions, so the canonical JSON can
    be kilobytes per item; hashing it keeps the run-wide dedup cache at a few
    dozen bytes per distinct spec without changing dedup semantics.
    """
    canonical = json.dumps(
        spec.to_request(), sort_keys=True, ensure_ascii=False, default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def independent_waves(stages: Sequence[tuple[int, Operator]]) -> list[list[tuple[int, Operator]]]:
    """Group consecutive LLM stages into conflict-free submission waves.

    Stages in one wave compile against the same input table, so a stage may
    only join the current wave when neither its reads nor its writes touch a
    column an earlier wave member writes (no read-after-write or
    write-after-write hazards).  Non-LLM stages always form their own wave:
    they reshape the table every later compile must see.
    """
    waves: list[list[tuple[int, Operator]]] = []
    current: list[tuple[int, Operator]] = []
    written: set[str] = set()

    def flush() -> None:
        nonlocal current, written
        if current:
            waves.append(current)
        current, written = [], set()

    for index, operator in stages:
        if not operator.needs_llm:
            flush()
            waves.append([(index, operator)])
            continue
        touched = set(operator.reads()) | set(operator.writes())
        if (touched & written) or (operator.scans_all_columns() and written):
            flush()
        current.append((index, operator))
        written |= set(operator.writes())
    flush()
    return waves


@dataclass
class StagePlan:
    """The compiled work of one stage over one partition."""

    index: int
    operator: Operator
    items: list[WorkItem]
    #: Dedup key per item (aligned with ``items``).
    keys: list[str]
    #: How many of this plan's keys were first seen here (i.e. submitted).
    fresh: int = 0


@dataclass
class WavePlan:
    """One submission round: several stage plans plus their combined new work."""

    plans: list[StagePlan]
    #: First-seen (key, spec) pairs across the wave, in compile order.
    new: list[tuple[str, TaskSpec]] = field(default_factory=list)


class Planner:
    """Compiles operators into wave plans against a shared result cache."""

    def __init__(self) -> None:
        #: Answered specs for the whole run, keyed by :func:`spec_key`.
        self.results: dict[str, "TaskResult"] = {}

    def plan_wave(
        self, stages: Sequence[tuple[int, Operator]], table: "Table"
    ) -> WavePlan:
        """Compile every stage of a wave over ``table``, deduplicating specs."""
        queued: set[str] = set()
        wave = WavePlan(plans=[])
        for index, operator in stages:
            items = operator.compile(table)
            keys = [spec_key(item.spec) for item in items]
            fresh = 0
            for item, key in zip(items, keys):
                if key in self.results or key in queued:
                    continue
                queued.add(key)
                fresh += 1
                wave.new.append((key, item.spec))
            wave.plans.append(
                StagePlan(index=index, operator=operator, items=items, keys=keys, fresh=fresh)
            )
        return wave

    def record(self, key: str, result: "TaskResult") -> None:
        self.results[key] = result

    def answer(self, key: str):
        return self.results[key].answer


__all__ = ["Planner", "StagePlan", "WavePlan", "independent_waves", "spec_key"]
