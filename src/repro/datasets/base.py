"""Common infrastructure for the synthetic benchmark datasets.

Every dataset builder produces a :class:`BenchmarkDataset` holding the
generated tables, the task instances to solve, the aligned ground truth, and a
:class:`~repro.llm.knowledge.WorldKnowledge` store describing what a
pre-trained LLM would plausibly know about the generated entities (see the
substitution table in DESIGN.md).  Builders are deterministic given a seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..core.tasks.base import Task
from ..core.types import TaskType
from ..datalake.lake import DataLake
from ..datalake.table import Table
from ..llm.finetune import LabeledPair
from ..llm.knowledge import WorldKnowledge


@dataclass
class BenchmarkDataset:
    """A generated benchmark: tables + tasks + ground truth + knowledge."""

    name: str
    task_type: TaskType
    tables: dict[str, Table]
    knowledge: WorldKnowledge
    tasks: list[Task]
    ground_truth: list[Any]
    train_pairs: list[LabeledPair] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.tasks) != len(self.ground_truth):
            raise ValueError(
                f"{self.name}: tasks ({len(self.tasks)}) and ground truth "
                f"({len(self.ground_truth)}) must be aligned"
            )

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def table(self) -> Table:
        """The primary table (useful for single-table benchmarks)."""
        if len(self.tables) == 1:
            return next(iter(self.tables.values()))
        raise ValueError(
            f"{self.name} has {len(self.tables)} tables; access .tables explicitly"
        )

    def as_lake(self) -> DataLake:
        return DataLake(list(self.tables.values()), name=self.name)

    def subset(self, n: int, seed: int = 0) -> "BenchmarkDataset":
        """A smaller dataset with ``n`` randomly chosen task instances."""
        if n >= len(self.tasks):
            return self
        rng = np.random.default_rng(seed)
        idx = sorted(rng.choice(len(self.tasks), size=n, replace=False).tolist())
        return BenchmarkDataset(
            name=f"{self.name}[{n}]",
            task_type=self.task_type,
            tables=self.tables,
            knowledge=self.knowledge,
            tasks=[self.tasks[i] for i in idx],
            ground_truth=[self.ground_truth[i] for i in idx],
            train_pairs=self.train_pairs,
            extra=dict(self.extra),
        )


class DatasetBuilder(abc.ABC):
    """Base class for the seeded synthetic dataset generators."""

    #: Registry name of the dataset, e.g. ``"restaurant"``.
    name: str = ""
    task_type: TaskType

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def build(self) -> BenchmarkDataset:
        """Generate the dataset (deterministic for a fixed seed)."""

    # -- shared helpers ------------------------------------------------------------
    def choice(self, items: Sequence[Any]) -> Any:
        return items[int(self.rng.integers(len(items)))]

    def sample(self, items: Sequence[Any], k: int) -> list[Any]:
        k = min(k, len(items))
        idx = self.rng.choice(len(items), size=k, replace=False)
        return [items[int(i)] for i in np.atleast_1d(idx)]

    def shuffled(self, items: Sequence[Any]) -> list[Any]:
        idx = self.rng.permutation(len(items))
        return [items[int(i)] for i in idx]
