"""JSON service front-end over the execution engine.

Speaks newline-delimited JSON: one request object per line, one response
object per line, in request order.  A blank line (or EOF) closes the current
batch and executes it through the engine, so piping a file of requests gets
full micro-batching while an interactive session can flush at will:

.. code-block:: console

   $ printf '%s\n' \
       '{"v": 2, "id": 1, "task": {"type": "transformation",
         "value": "19990415", "examples": [["20000101", "2000-01-01"]]}}' \
     | python -m repro serve

Requests follow the versioned protocol of :mod:`repro.api.protocol`: the
native form is the v2 envelope ``{"v": 2, "id": ..., "task": {...}}``, and
flat v1 objects (the PR 1 format) are still accepted.  All seven task types
of the unified framework are served — the task payload schema is defined by
the :class:`~repro.api.specs.TaskSpec` registry, which replaced the service's
former if/elif request builder (that builder only understood four types).

Responses mirror the request generation: v2 callers get
``{"v": 2, "id", "ok", "result": {...}}`` or a structured
``"error": {"code", "message", "field"?}`` object; v1 callers keep getting
the flat ``{"id", "ok", "answer", "raw", "tokens", "calls"}`` / bare-string
``"error"`` shapes.  A bad request never aborts its batch.

``serve_tcp`` exposes the same protocol on a socket through the asyncio
wire transport of :mod:`repro.serving.transport`: plain JSON-lines
connections keep the exact semantics above, while connections opening with
a handshake line are upgraded to multiplexed (optionally binary-framed)
service — many in-flight requests per connection, correlated by ``id``.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, IO, Iterable, Sequence

from ..api.errors import ApiError, ErrorInfo, InvalidRequestError
from ..api.pipeline_spec import PipelineSpec
from ..api.protocol import ParsedRequest, encode_error, encode_success, parse_request
from ..api.results import TaskResult
from ..api.specs import TaskSpec
from ..api.stats_spec import StatsSpec
from ..core.config import UniDMConfig
from ..core.pipeline import UniDM
from ..core.tasks.base import Task
from ..core.types import ManipulationResult
from ..llm.base import LanguageModel
from ..llm.cache import CachedLLM
from ..llm.simulated import SimulatedLLM
from ..obs.admission import AdmissionController
from ..obs.events import emit_event
from ..obs.export import get_default_exemplars
from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.slo import HealthMonitor, SLOSpec
from ..obs.span import remote_span
from ..obs.trace import Trace
from ..tenancy import DEFAULT_TENANT, TenancyController, TenantRegistry, WeightedFairLock
from .cache import PersistentCache
from .engine import EngineConfig, ExecutionEngine


def _route_key(spec: "TaskSpec") -> "str | None":
    """The spec's routing digest (``None`` when the spec cannot hash)."""
    from ..flow.planner import spec_key

    try:
        return spec_key(spec)
    except Exception:  # pragma: no cover - defensive: tagging is best-effort
        return None


@dataclass(frozen=True)
class InvalidRequest:
    """Out-of-band marker for a line that never parsed into a request object.

    Kept separate from request dicts so client payloads can carry any keys
    they like without colliding with the error channel.
    """

    error: str


class ServingService:
    """Answers JSON task requests through the execution engine.

    Admission control (off by default): with ``max_inflight`` /
    ``max_queue_depth`` set, a batch that would push pending requests past
    their sum is shed immediately with a structured ``overloaded`` error
    carrying a ``retry_after`` hint, instead of queueing unboundedly.
    Admitted batches contending for the engine dequeue highest-priority
    first (v2 envelope key ``"priority"``).  ``stats`` requests are answered
    before admission and outside the batch lock, so observability survives
    overload.

    Tenancy (off by default): with a :class:`~repro.tenancy.TenantRegistry`
    passed as ``tenants``, each request's claimed tenant (v2 envelope key
    ``"tenant"``; untagged and unknown names resolve to ``default``) is
    charged against that tenant's token bucket and ``max_inflight`` cap
    *before* global admission — excess is shed per tenant with a structured
    ``rate_limited`` error — and admitted groups contend for the engine
    weighted-fair across tenants (priority still breaks ties within one).
    """

    def __init__(
        self,
        pipeline: UniDM,
        engine: ExecutionEngine | None = None,
        *,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        retry_after: float = 0.05,
        metrics: MetricsRegistry | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        monitor_interval: float = 1.0,
    ):
        self.pipeline = pipeline
        self._metrics = metrics or get_default_registry()
        self._m_requests = self._metrics.counter("service.requests")
        self._m_batch_latency = self._metrics.histogram("service.batch_latency")
        self.engine = engine or ExecutionEngine(metrics=self._metrics)
        self.requests_served = 0
        self.admission = AdmissionController(
            max_inflight,
            max_queue_depth,
            retry_after=retry_after,
            name="service.admission",
            metrics=self._metrics,
        )
        self.tenancy = (
            TenancyController(tenants, retry_after=retry_after, metrics=self._metrics)
            if tenants is not None
            else None
        )
        # Always present (probes and the timeseries/alerts stats sections
        # work without any SLO configured); its background loop only runs
        # when a front-end calls monitor.start().
        self.monitor = HealthMonitor(
            registry=self._metrics,
            slos=slos,
            interval=monitor_interval,
            admission=self.admission,
        )
        # One batch at a time: the pipeline's rng and the engine's report are
        # shared state, so concurrent TCP connections take turns here (their
        # requests still micro-batch *within* each flush).  Under contention
        # the fair-share tenant's highest-priority waiting batch acquires
        # first; untagged traffic all rides the default tenant, where the
        # order is exactly the old PriorityLock's (priority desc, arrival).
        self._batch_lock = WeightedFairLock()
        self._served_lock = threading.Lock()

    def run_tasks(self, tasks: Iterable[Task]) -> list[ManipulationResult]:
        """Run pipeline tasks directly through the engine (in-process path).

        This is what ``Client.local(...).run_tasks`` and the evaluation
        harness use; it shares the batch lock with the JSON request path so a
        service embedded in a bigger process stays internally consistent.
        (Admission control applies to the JSON request path only.)
        """
        with self._batch_lock:
            return self.pipeline.run_many(list(tasks), engine=self.engine)

    def handle_batch(self, requests: Iterable[dict]) -> list[dict]:
        """Execute a batch of request objects; responses keep request order."""
        request_list = list(requests)
        parsed_entries, responses = parse_batch(request_list)
        work: list[tuple[int, ParsedRequest]] = []
        for position, parsed in parsed_entries:
            if isinstance(parsed.spec, StatsSpec):
                snapshot = TaskResult(
                    answer=self.stats_snapshot(
                        parsed.spec.prefix,
                        reset=parsed.spec.reset,
                        tenant=parsed.spec.tenant,
                    ),
                    task_type="stats",
                )
                responses[position] = encode_success(
                    snapshot,
                    parsed.id,
                    parsed.version,
                    trace=parsed.trace,
                    tenant=parsed.tenant,
                )
            else:
                work.append((position, parsed))
        if work:
            # Per-tenant limits first (cheap, per-group), then global
            # capacity over whatever survived.
            admitted = self._admit_tenants(work, responses)
            if admitted:
                total = sum(len(group) for _, group in admitted)
                if not self.admission.try_acquire(total):
                    info = overloaded_error(self.admission)
                    emit_event(
                        "admission.shed",
                        name=self.admission.name,
                        requests=total,
                        **(info.details or {}),
                    )
                    for _, group in admitted:
                        for position, parsed in group:
                            responses[position] = encode_error(
                                info,
                                parsed.id,
                                parsed.version,
                                trace=parsed.trace,
                                tenant=parsed.tenant,
                            )
                    self._release_tenants(admitted)
                else:
                    try:
                        for tenant, group in admitted:
                            self._handle_tenant_group(tenant, group, responses)
                    finally:
                        self.admission.release(total)
                        self._release_tenants(admitted)
        with self._served_lock:
            self.requests_served += len(request_list)
        self._m_requests.inc(len(request_list))
        return [response for response in responses if response is not None]

    def _admit_tenants(
        self,
        work: "list[tuple[int, ParsedRequest]]",
        responses: "list[dict | None]",
    ) -> "list[tuple[str, list[tuple[int, ParsedRequest]]]]":
        """Group ``work`` by resolved tenant and charge each tenant's limits.

        Returns the admitted ``(tenant, group)`` pairs; rejected groups get
        their ``rate_limited`` error encoded into ``responses`` in place.
        With tenancy off, everything is one admitted ``default`` group.
        """
        if self.tenancy is None:
            return [(DEFAULT_TENANT, list(work))]
        groups: dict[str, list[tuple[int, ParsedRequest]]] = {}
        for position, parsed in work:
            tenant = self.tenancy.resolve(parsed.tenant)
            groups.setdefault(tenant, []).append((position, parsed))
        admitted: list[tuple[str, list[tuple[int, ParsedRequest]]]] = []
        for tenant, group in groups.items():
            info = self.tenancy.admit(tenant, len(group))
            if info is None:
                admitted.append((tenant, group))
                continue
            emit_event("tenancy.shed", **(info.details or {}))
            for position, parsed in group:
                responses[position] = encode_error(
                    info,
                    parsed.id,
                    parsed.version,
                    trace=parsed.trace,
                    tenant=parsed.tenant,
                )
        return admitted

    def _release_tenants(
        self, admitted: "list[tuple[str, list[tuple[int, ParsedRequest]]]]"
    ) -> None:
        if self.tenancy is None:
            return
        for tenant, group in admitted:
            self.tenancy.release(tenant, len(group))

    def _handle_tenant_group(
        self,
        tenant: str,
        group: "list[tuple[int, ParsedRequest]]",
        responses: "list[dict | None]",
    ) -> None:
        """Run one tenant's admitted requests under the fair batch lock."""
        priority = max(parsed.priority for _, parsed in group)
        weight = self.tenancy.weight(tenant) if self.tenancy is not None else 1.0
        batch_trace, batch_parent = batch_span_context(parsed for _, parsed in group)
        started = time.perf_counter()
        try:
            # The span covers the lock wait too — that *is* the
            # service-side queueing a caller experiences.
            with remote_span(
                "service.batch",
                trace_id=batch_trace,
                parent_id=batch_parent,
                requests=len(group),
                tenant=tenant,
            ):
                with self._batch_lock.hold(
                    priority, tenant=tenant, weight=weight, cost=float(len(group))
                ):
                    self._handle_parsed_locked(group, responses)
        finally:
            if self.tenancy is not None:
                # Queueing behind other tenants included: this histogram's
                # p99 is the isolation signal the chaos tests assert on.
                self.tenancy.observe_latency(
                    tenant, time.perf_counter() - started, len(group)
                )

    def _handle_parsed_locked(
        self,
        parsed_entries: "list[tuple[int, ParsedRequest]]",
        responses: "list[dict | None]",
    ) -> None:
        """Execute already-parsed requests, filling ``responses`` in place."""
        tasks: list[Task] = []
        #: (request position, parsed request) per queued task.
        slots: list[tuple[int, ParsedRequest]] = []
        #: Pipeline (plan-level) requests, answered after the task batch.
        plans: list[tuple[int, ParsedRequest]] = []
        for position, parsed in parsed_entries:
            if isinstance(parsed.spec, PipelineSpec):
                plans.append((position, parsed))
                continue
            try:
                task = parsed.spec.to_task()
                # Spec-key tag the engine propagates to the batcher so every
                # prompt lands in the shard's route index — the attribution
                # the cluster's hash-minimal migration moves entries by.
                task.route_key = _route_key(parsed.spec)
                tasks.append(task)
            except (ApiError, ValueError, KeyError, TypeError, IndexError) as exc:
                info = exc.info if isinstance(exc, ApiError) else ErrorInfo(
                    code="invalid_request", message=str(exc)
                )
                responses[position] = encode_error(
                    info,
                    parsed.id,
                    parsed.version,
                    trace=parsed.trace,
                    tenant=parsed.tenant,
                )
                continue
            slots.append((position, parsed))
        if tasks:
            started = time.perf_counter()
            results = self.pipeline.run_many(tasks, engine=self.engine)
            self._m_batch_latency.observe(time.perf_counter() - started)
            get_default_exemplars().note("service.batch_latency", Trace.current_id())
            for (position, parsed), result in zip(slots, results):
                payload = TaskResult.from_manipulation(result, request_id=parsed.id)
                responses[position] = encode_success(
                    payload,
                    parsed.id,
                    parsed.version,
                    trace=parsed.trace,
                    tenant=parsed.tenant,
                )
        for position, parsed in plans:
            responses[position] = self._run_plan_locked(parsed)

    # ------------------------------------------------------------------- stats
    def stats_snapshot(
        self, prefix: str = "", *, reset: bool = False, tenant: str = ""
    ) -> dict:
        """The observability snapshot a ``stats`` request answers with.

        With ``reset`` the registry is zeroed in place *after* the snapshot
        is taken, so the next one reports only what happened since.  With
        ``tenant`` (and tenancy on) the metrics narrow to that tenant's
        ``tenant.<name>.*`` series and the tenancy section to its state.
        """
        if tenant and not prefix and self.tenancy is not None:
            prefix = f"tenant.{self.tenancy.resolve(tenant)}."
        snapshot = {
            "service": {
                "requests_served": self.requests_served,
                "admission": {
                    "max_inflight": self.admission.max_inflight,
                    "max_queue_depth": self.admission.max_queue_depth,
                    "pending": self.admission.pending,
                    "inflight": self.admission.inflight,
                    "queue_depth": self.admission.queued,
                    "retry_after": self.admission.retry_after,
                },
            },
            "metrics": self._metrics.snapshot(prefix),
            "exemplars": get_default_exemplars().snapshot(),
        }
        if self.tenancy is not None:
            snapshot["tenancy"] = self.tenancy.snapshot(tenant or None)
        snapshot.update(self.monitor.sections(prefix))
        if reset:
            self._metrics.reset()
        return snapshot

    def _run_specs_locked(self, specs: "Sequence[TaskSpec]") -> list[TaskResult]:
        """Execute already-validated specs through the engine (lock held).

        This is the plan-level submission path the flow executor uses when a
        whole pipeline runs inside the service: spec batches skip the JSON
        envelope and go straight to the engine.
        """
        tasks = []
        for spec in specs:
            task = spec.to_task()
            task.route_key = _route_key(spec)
            tasks.append(task)
        results = self.pipeline.run_many(tasks, engine=self.engine)
        return [TaskResult.from_manipulation(result) for result in results]

    def _run_plan_locked(self, parsed: ParsedRequest) -> dict:
        """Answer one pipeline request by running the streaming flow executor."""
        result = run_pipeline_spec(parsed.spec, self._run_specs_locked)
        result.id = parsed.id
        if result.error is not None:
            return encode_error(
                result.error,
                parsed.id,
                parsed.version,
                trace=parsed.trace,
                tenant=parsed.tenant,
            )
        return encode_success(
            result, parsed.id, parsed.version, trace=parsed.trace, tenant=parsed.tenant
        )

    def handle_request(self, request: dict) -> dict:
        return self.handle_batch([request])[0]

    # ----------------------------------------------------------------- fronts
    def serve_stream(self, in_stream: IO[str], out_stream: IO[str]) -> int:
        """Blocking request loop over text streams (stdin/stdout by default).

        Blank lines flush the accumulated batch through the engine; EOF
        flushes and returns the number of requests served.
        """
        serve_lines(self.handle_batch, in_stream, out_stream)
        return self.requests_served

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Socket server speaking the same line protocol, one batch per blank line."""
        server = await self.start_tcp(host, port)
        async with server:
            await server.serve_forever()

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Bind the socket server and return it without blocking (for embedding)."""
        return await start_line_server(self.handle_batch, host, port)


#: Contract of a batch handler: raw request objects in, responses in order.
BatchHandler = Callable[[list], "list[dict]"]


def parse_batch(
    requests: Sequence[Any],
) -> "tuple[list[tuple[int, ParsedRequest]], list[dict | None]]":
    """Parse raw wire requests into specs, encoding failures in position.

    The single parsing/error path shared by the single-process service and
    the cluster router, so the two front-ends cannot drift: unparseable
    lines (:class:`InvalidRequest`) become ``bad_json`` errors, validation
    failures carry their :class:`~repro.api.errors.ApiError` info, and all
    error responses use the request's claimed protocol generation.

    Returns:
        ``(parsed, responses)`` where ``parsed`` holds ``(position,
        ParsedRequest)`` for every valid request and ``responses`` is a
        request-aligned list containing an encoded error response for each
        invalid one (``None`` elsewhere).
    """
    parsed_entries: list[tuple[int, ParsedRequest]] = []
    responses: list[dict | None] = [None] * len(requests)
    for position, request in enumerate(requests):
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if isinstance(request, InvalidRequest):
                raise InvalidRequestError(request.error, code="bad_json")
            parsed_entries.append((position, parse_request(request)))
        except ApiError as exc:
            version = claimed_version(request)
            responses[position] = encode_error(exc.info, request_id, version)
        except (ValueError, KeyError, TypeError, IndexError) as exc:
            version = claimed_version(request)
            error = ErrorInfo(code="invalid_request", message=str(exc))
            responses[position] = encode_error(error, request_id, version)
    return parsed_entries, responses


def serve_lines(
    handle_batch: BatchHandler, in_stream: IO[str], out_stream: IO[str]
) -> int:
    """Drive any batch handler over the newline-delimited text protocol.

    Shared by the single-service and cluster front-ends: blank lines flush
    the accumulated batch through ``handle_batch``; EOF flushes and returns
    the number of requests forwarded.  Unparseable lines become
    :class:`InvalidRequest` markers so the handler can answer them in
    position with a ``bad_json`` error.
    """
    forwarded = 0
    batch: list = []

    def flush() -> None:
        nonlocal forwarded
        if not batch:
            return
        forwarded += len(batch)
        for response in handle_batch(list(batch)):
            out_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
        out_stream.flush()
        batch.clear()

    for line in in_stream:
        line = line.strip()
        if not line:
            flush()
            continue
        try:
            batch.append(json.loads(line))
        except json.JSONDecodeError as exc:
            batch.append(InvalidRequest(f"bad JSON: {exc}"))
    flush()
    return forwarded


async def start_line_server(
    handle_batch: BatchHandler,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_frame_bytes: int | None = None,
) -> asyncio.AbstractServer:
    """Bind the TCP wire server over any batch handler.

    This is the asyncio-native transport of :mod:`repro.serving.transport`:
    connections that open with a handshake line get multiplexed, optionally
    binary-framed service (many in-flight requests per connection,
    responses correlated by ``id``); connections that don't get the exact
    legacy JSON-lines semantics — request lines accumulate and flush on
    blank lines, batches execute on a worker thread (``handle_batch`` may
    spin its own event loop) so the accept loop stays responsive.  See
    ``docs/wire-transport.md`` for the negotiation and framing spec.
    """
    from .transport import MAX_FRAME_BYTES, start_wire_server

    return await start_wire_server(
        handle_batch,
        host,
        port,
        max_frame_bytes=max_frame_bytes or MAX_FRAME_BYTES,
    )


def run_pipeline_spec(spec: PipelineSpec, submit: "Callable") -> TaskResult:
    """Execute one :class:`PipelineSpec` through a spec-batch backend.

    Shared by the single service (``submit`` = its locked engine path) and
    the cluster router (``submit`` = the sharded fan-out): runs the
    streaming :class:`~repro.flow.executor.FlowExecutor` and adapts the
    outcome into a :class:`TaskResult`.  A failed plan comes back with a
    structured ``pipeline_failed`` error instead of raising.
    """
    from ..flow.executor import FlowExecutor
    from ..flow.operators import FlowError

    try:
        flow_result = FlowExecutor(submit).run(spec.to_pipeline(), spec.to_table())
    except FlowError as exc:
        return TaskResult(
            answer=None,
            task_type="pipeline",
            error=ErrorInfo(code="pipeline_failed", message=str(exc)),
        )
    return TaskResult(
        answer={
            # Columns travel separately so an empty result still carries
            # the pipeline's output schema.
            "columns": flow_result.table.schema.names,
            "rows": flow_result.table.to_dicts(),
            "answers": flow_result.answers,
            "report": flow_result.report.to_payload(),
        },
        task_type="pipeline",
        tokens=flow_result.report.llm_tokens,
        calls=flow_result.report.llm_calls,
    )


def overloaded_error(admission: AdmissionController) -> ErrorInfo:
    """The structured shed response of an admission-control rejection.

    Beyond the ``retry_after`` back-off hint, ``details`` carries the
    controller state at shed time — ``queue_depth`` and ``inflight`` tell a
    shed client (and the chaos tests) *why*: saturated executor, or backlog.
    """
    capacity = admission.capacity
    return ErrorInfo(
        code="overloaded",
        message=(
            f"admission control shed this request: {admission.pending} pending "
            f"of {capacity} allowed; retry after {admission.retry_after:g}s"
        ),
        retry_after=admission.retry_after,
        details={
            "pending": admission.pending,
            "inflight": admission.inflight,
            "queue_depth": admission.queued,
            "capacity": capacity,
        },
    )


def batch_span_context(
    parsed_entries: "Iterable[ParsedRequest]",
) -> tuple[str | None, str | None]:
    """The (trace id, parent span id) a batch-level server span should use.

    One server-side span covers the whole admitted batch, so it can only be
    attached to a caller's trace when the batch is *unambiguous*: every
    envelope carries the same trace id.  The parent span id is used under
    the same condition — mixed-trace batches (independent requests that
    happened to coalesce) get a local span with a fresh trace instead of
    cross-linking unrelated traces.
    """
    traces: set[str | None] = set()
    spans: set[str | None] = set()
    for parsed in parsed_entries:
        traces.add(parsed.trace)
        spans.add(parsed.span)
    batch_trace = traces.pop() if len(traces) == 1 else None
    batch_parent = (
        spans.pop() if batch_trace is not None and len(spans) == 1 else None
    )
    return batch_trace, batch_parent


def claimed_version(request: Any) -> int:
    """Best-effort protocol generation of a failed request (for its response)."""
    if isinstance(request, dict) and isinstance(request.get("v"), int) and request["v"] >= 2:
        return 2
    return 1


#: Backwards-compatible alias (pre-cluster internal name).
_claimed_version = claimed_version


def build_service(
    model: str | None = None,
    seed: int = 0,
    cache_dir: str | None = None,
    batch_size: int = 8,
    workers: int = 8,
    knowledge=None,
    llm: LanguageModel | None = None,
    max_inflight: int | None = None,
    max_queue_depth: int | None = None,
    tenants: TenantRegistry | None = None,
    slos: Sequence[SLOSpec] = (),
    monitor_interval: float = 1.0,
) -> ServingService:
    """Assemble the default serving stack: simulated LLM → cache → engine."""
    if llm is None:
        llm = SimulatedLLM(**({"profile": model} if model else {}), knowledge=knowledge, seed=seed)
    persistent = PersistentCache(cache_dir) if cache_dir else None
    cached = CachedLLM(llm, persistent=persistent)
    pipeline = UniDM(cached, UniDMConfig.full(seed=seed))
    engine = ExecutionEngine(EngineConfig(max_batch_size=batch_size, workers=workers))
    return ServingService(
        pipeline,
        engine,
        max_inflight=max_inflight,
        max_queue_depth=max_queue_depth,
        tenants=tenants,
        slos=slos,
        monitor_interval=monitor_interval,
    )


def main_stdin(service: ServingService) -> int:  # pragma: no cover - thin wrapper
    service.serve_stream(sys.stdin, sys.stdout)
    return 0
