"""Data imputation benchmarks: Restaurant and Buy (Mei et al. 2021).

*Restaurant* asks for the missing ``city`` of a restaurant record given its
name, address, phone and cuisine; *Buy* asks for the missing ``manufacturer``
of a product given its name, description and price.  The synthetic generators
mirror the schemas and the signal structure of the originals:

* addresses / phone prefixes correlate with the city, so retrieved neighbours
  often reveal the answer (the paper's case study in Appendix B);
* most product names contain the manufacturer token, so the Buy task is easier
  than Restaurant (98.5% vs 93.0% for UniDM in Table 1);
* every generated entity is registered in the dataset's
  :class:`~repro.llm.knowledge.WorldKnowledge` with a prevalence reflecting how
  likely a web-scale corpus is to mention it.
"""

from __future__ import annotations

import numpy as np

from ..core.tasks.imputation import ImputationTask
from ..core.types import TaskType
from ..datalake.schema import Attribute, AttributeType, Schema
from ..datalake.table import Table
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder

# --------------------------------------------------------------------------
# Restaurant
# --------------------------------------------------------------------------

#: City -> (street names, phone prefix, representative neighbourhoods).
_CITY_PROFILES: dict[str, dict[str, list[str] | str]] = {
    "new york": {
        "streets": ["park ave", "54th st", "madison ave", "broadway", "columbus ave", "spring st"],
        "phone": "212",
    },
    "los angeles": {
        "streets": ["pico blvd", "sunset blvd", "melrose ave", "la cienega blvd", "4th street"],
        "phone": "213",
    },
    "beverly hills": {
        "streets": ["beverly dr", "little santa monica blvd", "rodeo dr", "wilshire blvd"],
        "phone": "310",
    },
    "san francisco": {
        "streets": ["columbus ave", "mission st", "geary blvd", "fillmore st"],
        "phone": "415",
    },
    "atlanta": {
        "streets": ["piedmont rd", "peachtree rd", "ponce de leon ave"],
        "phone": "404",
    },
    "chicago": {
        "streets": ["michigan ave", "clark st", "halsted st", "randolph st"],
        "phone": "312",
    },
    "boston": {
        "streets": ["newbury st", "boylston st", "hanover st"],
        "phone": "617",
    },
    "seattle": {
        "streets": ["pike st", "1st ave", "capitol hill blvd"],
        "phone": "206",
    },
    "new orleans": {
        "streets": ["bourbon st", "magazine st", "canal st"],
        "phone": "504",
    },
    "las vegas": {
        "streets": ["las vegas blvd", "fremont st", "paradise rd"],
        "phone": "702",
    },
    "philadelphia": {
        "streets": ["walnut st", "south st", "market st"],
        "phone": "215",
    },
    "washington dc": {
        "streets": ["pennsylvania ave", "m st nw", "14th st nw"],
        "phone": "202",
    },
}

_CUISINES = [
    "american", "italian", "french", "seafood", "steakhouses", "japanese",
    "mexican", "thai", "chinese", "mediterranean", "indian", "bbq",
    "cajun", "delis", "pizza", "vegetarian",
]

_NAME_FIRST = [
    "ruth's chris", "the palm", "blue ribbon", "golden dragon", "la traviata",
    "casa blanca", "the grill", "union square", "ocean harbor", "old town",
    "saffron", "magnolia", "the copper pot", "bella vista", "king crab",
    "harvest moon", "red lantern", "silver spoon", "the tasting room",
    "willow creek", "sunset terrace", "market street", "lakeside", "the anchor",
    "wild sage", "stonebridge", "ivory coast", "pepper tree", "amber light",
    "north star",
]

_NAME_SECOND = [
    "steak house", "bistro", "cafe", "grill", "trattoria", "brasserie",
    "kitchen", "tavern", "diner", "oyster bar", "cantina", "noodle house",
    "chophouse", "smokehouse", "eatery",
]


class RestaurantDataset(DatasetBuilder):
    """Synthetic counterpart of the Restaurant imputation benchmark."""

    name = "restaurant"
    task_type = TaskType.DATA_IMPUTATION

    def __init__(
        self,
        seed: int = 0,
        n_records: int = 200,
        n_tasks: int = 90,
        knowledge_prevalence: float = 0.84,
    ):
        super().__init__(seed)
        self.n_records = n_records
        self.n_tasks = n_tasks
        self.knowledge_prevalence = knowledge_prevalence

    def build(self) -> BenchmarkDataset:
        schema = Schema(
            [
                Attribute("name", primary_key=True, domain="restaurants"),
                Attribute("addr", domain="restaurants.address"),
                Attribute("phone", domain="restaurants.phone"),
                Attribute("type", AttributeType.CATEGORICAL, domain="restaurants.cuisine"),
                Attribute("city", AttributeType.CATEGORICAL, domain="geography.city"),
            ]
        )
        table = Table("restaurant", schema, description="Fodor's/Zagat style restaurant listings")
        knowledge = WorldKnowledge()
        self._register_templates(knowledge)

        cities = list(_CITY_PROFILES)
        rows: list[dict[str, str]] = []
        used_names: set[str] = set()
        while len(rows) < self.n_records:
            city = self.choice(cities)
            profile = _CITY_PROFILES[city]
            base = f"{self.choice(_NAME_FIRST)} {self.choice(_NAME_SECOND)}"
            name = base
            if name in used_names:
                # Chains disambiguate by city, like "ruth's chris (los angeles)".
                name = f"{base} ({city})"
            if name in used_names:
                continue
            used_names.add(name)
            street_no = int(self.rng.integers(10, 9900))
            street = self.choice(list(profile["streets"]))
            phone = (
                f"{profile['phone']}-{int(self.rng.integers(200, 999))}-"
                f"{int(self.rng.integers(1000, 9999)):04d}"
            )
            rows.append(
                {
                    "name": name,
                    "addr": f"{street_no} {street}",
                    "phone": phone,
                    "type": self.choice(_CUISINES),
                    "city": city,
                }
            )
        for row in rows:
            table.append(row)
            prevalence = float(
                np.clip(self.rng.normal(self.knowledge_prevalence, 0.05), 0.35, 0.99)
            )
            knowledge.add_fact(row["name"], "city", row["city"], prevalence, "restaurants")
            knowledge.add_fact(row["name"], "type", row["type"], 0.7, "restaurants")
            knowledge.add_fact(row["name"], "addr", row["addr"], 0.55, "restaurants")
            knowledge.add_domain_value("city", row["city"])
            knowledge.add_domain_value("type", row["type"])

        # Mask the target attribute of the task records and build the tasks.
        records = table.records
        task_indices = self.sample(range(len(records)), self.n_tasks)
        tasks: list[ImputationTask] = []
        ground_truth: list[str] = []
        for index in task_indices:
            record = records[index]
            ground_truth.append(str(record["city"]))
            record["city"] = None
            tasks.append(ImputationTask(table, record, "city"))

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={table.name: table},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"target_attribute": "city"},
        )

    @staticmethod
    def _register_templates(knowledge: WorldKnowledge) -> None:
        knowledge.set_relation_template("city", "{subject} is located in the city of {value}")
        knowledge.set_relation_template("addr", "{subject} is at the address {value}")
        knowledge.set_relation_template("phone", "the phone number of {subject} is {value}")
        knowledge.set_relation_template("type", "{subject} serves {value} food")
        knowledge.add_attribute_link("addr", "city", 0.85)
        knowledge.add_attribute_link("phone", "city", 0.70)
        knowledge.add_attribute_link("type", "city", 0.10)


# --------------------------------------------------------------------------
# Buy
# --------------------------------------------------------------------------

_MANUFACTURERS = [
    "sony", "samsung", "apple", "panasonic", "lg", "canon", "nikon", "hp",
    "dell", "logitech", "toshiba", "garmin", "bose", "philips", "asus",
]

_PRODUCT_LINES: dict[str, list[str]] = {
    "sony": ["bravia lcd tv", "cybershot camera", "walkman player", "handycam camcorder"],
    "samsung": ["galaxy phone", "led monitor", "blu-ray player", "soundbar"],
    "apple": ["ipod nano", "macbook pro", "iphone", "ipad"],
    "panasonic": ["lumix camera", "viera plasma tv", "cordless phone"],
    "lg": ["flatron monitor", "washing machine", "home theater system"],
    "canon": ["powershot camera", "eos digital slr", "pixma printer"],
    "nikon": ["coolpix camera", "d-series slr", "nikkor lens"],
    "hp": ["pavilion laptop", "officejet printer", "photosmart printer"],
    "dell": ["inspiron laptop", "ultrasharp monitor", "xps desktop"],
    "logitech": ["wireless mouse", "webcam pro", "gaming keyboard"],
    "toshiba": ["satellite laptop", "portable hard drive", "dvd recorder"],
    "garmin": ["nuvi gps", "forerunner watch", "etrex handheld"],
    "bose": ["quietcomfort headphones", "wave music system", "companion speakers"],
    "philips": ["norelco shaver", "ambilight tv", "docking speaker"],
    "asus": ["zenbook laptop", "rog monitor", "eee pc netbook"],
}

_DESCRIPTION_SNIPPETS = [
    "with remote control", "refurbished", "black", "white", "bundle edition",
    "2-pack", "energy efficient", "high definition", "wireless", "portable",
]


class BuyDataset(DatasetBuilder):
    """Synthetic counterpart of the Buy imputation benchmark (manufacturer)."""

    name = "buy"
    task_type = TaskType.DATA_IMPUTATION

    def __init__(
        self,
        seed: int = 0,
        n_records: int = 150,
        n_tasks: int = 65,
        knowledge_prevalence: float = 0.93,
        name_mentions_manufacturer: float = 0.85,
    ):
        super().__init__(seed)
        self.n_records = n_records
        self.n_tasks = n_tasks
        self.knowledge_prevalence = knowledge_prevalence
        self.name_mentions_manufacturer = name_mentions_manufacturer

    def build(self) -> BenchmarkDataset:
        schema = Schema(
            [
                Attribute("name", primary_key=True, domain="products"),
                Attribute("description", domain="products"),
                Attribute("price", AttributeType.NUMERIC, domain="products.price"),
                Attribute("manufacturer", AttributeType.CATEGORICAL, domain="products.brand"),
            ]
        )
        table = Table("buy", schema, description="Buy.com style product catalog")
        knowledge = WorldKnowledge()
        self._register_templates(knowledge)

        rows: list[dict[str, object]] = []
        used_names: set[str] = set()
        while len(rows) < self.n_records:
            manufacturer = self.choice(_MANUFACTURERS)
            line = self.choice(_PRODUCT_LINES[manufacturer])
            model = f"{self.choice('abcdefghkmnpqrstvw')}{int(self.rng.integers(100, 9999))}"
            mentions = self.rng.random() < self.name_mentions_manufacturer
            name = f"{manufacturer} {line} {model}" if mentions else f"{line} {model}"
            if name in used_names:
                continue
            used_names.add(name)
            description = f"{line} {self.choice(_DESCRIPTION_SNIPPETS)} by {manufacturer}"
            price = round(float(self.rng.uniform(19, 1999)), 2)
            rows.append(
                {
                    "name": name,
                    "description": description,
                    "price": price,
                    "manufacturer": manufacturer,
                }
            )
        for row in rows:
            table.append(row)
            prevalence = float(
                np.clip(self.rng.normal(self.knowledge_prevalence, 0.025), 0.5, 0.995)
            )
            knowledge.add_fact(
                str(row["name"]), "manufacturer", str(row["manufacturer"]), prevalence, "products"
            )
            knowledge.add_domain_value("manufacturer", str(row["manufacturer"]))

        records = table.records
        task_indices = self.sample(range(len(records)), self.n_tasks)
        tasks: list[ImputationTask] = []
        ground_truth: list[str] = []
        for index in task_indices:
            record = records[index]
            ground_truth.append(str(record["manufacturer"]))
            record["manufacturer"] = None
            tasks.append(ImputationTask(table, record, "manufacturer"))

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={table.name: table},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"target_attribute": "manufacturer"},
        )

    @staticmethod
    def _register_templates(knowledge: WorldKnowledge) -> None:
        knowledge.set_relation_template(
            "manufacturer", "{subject} is manufactured by {value}"
        )
        knowledge.set_relation_template("description", "{subject} is described as {value}")
        knowledge.set_relation_template("price", "{subject} is priced at ${value}")
        knowledge.add_attribute_link("description", "manufacturer", 0.80)
        knowledge.add_attribute_link("price", "manufacturer", 0.05)
