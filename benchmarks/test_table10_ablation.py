"""Benchmark: regenerate Table 10 (transformation component ablation)."""

from conftest import run_once

from repro.experiments import table10_ablation_transformation


def test_table10_ablation(benchmark):
    rows = run_once(benchmark, table10_ablation_transformation.run, seed=0, max_tasks=40)
    assert len(rows) == 8
    for dataset in ("stackoverflow", "bing_querylogs"):
        ladder = {row["variant"]: row["score"] for row in rows if row["dataset"] == dataset}
        # Paper shape: adding both prompt-side components never hurts much and
        # the full combination is the strongest variant (within noise).
        assert ladder["target prompt + context parsing"] >= ladder["none"] - 3
        assert ladder["target prompt + context parsing"] >= max(ladder.values()) - 6
