"""Unit tests for the SimulatedLLM prompt handlers."""

import pytest

from repro.llm import SimulatedLLM
from repro.prompting import DATA_PARSING, INSTANCE_RETRIEVAL, META_RETRIEVAL


def test_meta_retrieval_selects_linked_attribute(city_llm):
    prompt = META_RETRIEVAL.render(
        task="data imputation",
        query="Copenhagen, timezone",
        candidates="country, population",
    )
    reply = city_llm.complete(prompt, kind="p_rm").text
    assert "country" in reply
    # population is weakly linked and should not outrank country
    assert reply.split(",")[0].strip() == "country"


def test_instance_scoring_prefers_related_records(city_llm):
    instances = "\n".join(
        [
            "1) city: Florence, country: Italy, timezone: Central European Time",
            "2) city: London, country: United Kingdom, timezone: Greenwich Mean Time",
            "3) city: Antwerp, country: Belgium, timezone: Central European Time",
        ]
    )
    prompt = INSTANCE_RETRIEVAL.render(
        task="data imputation", query="Copenhagen, timezone", instances=instances
    )
    reply = city_llm.complete(prompt, kind="p_ri").text
    scores = {}
    for line in reply.splitlines():
        index, score = line.split(":")
        scores[int(index)] = int(score)
    assert set(scores) == {1, 2, 3}
    assert all(0 <= s <= 3 for s in scores.values())


def test_data_parsing_uses_relation_templates(city_llm):
    prompt = DATA_PARSING.render(
        serialized="city: Florence, country: Italy, timezone: Central European Time"
    )
    reply = city_llm.complete(prompt, kind="p_dp").text
    assert "Florence is a city in the country Italy." in reply
    assert "Florence is in the timezone Central European Time." in reply


def test_cloze_construction_produces_parseable_cloze(city_llm):
    prompt = (
        "Write the claim as a cloze question.\n"
        "Claim: The task is data imputation which produces the missing data. "
        "The context is [Florence is a city in the country Italy.]. "
        "The target query is [Copenhagen, timezone].\n"
        "Cloze question:"
    )
    reply = city_llm.complete(prompt, kind="p_cq").text
    assert "The timezone of Copenhagen is __." in reply
    assert "Florence" in reply


def test_answer_prompt_round_trip(city_llm):
    reply = city_llm.complete("The country of Copenhagen is __.").text
    assert isinstance(reply, str) and reply


def test_usage_accumulates_by_kind(city_llm):
    city_llm.complete("The country of Copenhagen is __.", kind="answer")
    assert city_llm.usage.calls >= 1
    assert city_llm.usage.per_prompt_kind.get("answer", 0) > 0


def test_simulated_llm_is_deterministic_per_seed(city_knowledge):
    prompt = "The timezone of Copenhagen is __."
    a = SimulatedLLM(knowledge=city_knowledge, seed=5).complete(prompt).text
    b = SimulatedLLM(knowledge=city_knowledge, seed=5).complete(prompt).text
    assert a == b


def test_simulated_llm_accepts_profile_string(city_knowledge):
    llm = SimulatedLLM(profile="gpt-4-turbo", knowledge=city_knowledge, seed=0)
    assert llm.name == "gpt-4-turbo"
    with pytest.raises(KeyError):
        SimulatedLLM(profile="no-such-model", knowledge=city_knowledge)
