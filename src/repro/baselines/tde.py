"""TDE baseline (He et al. 2018) — transform-data-by-example program search.

TDE searches a large library of transformation functions for a program
consistent with the user's input/output examples and applies it to the new
inputs.  The reproduction searches the operator library in
:mod:`repro.transforms`; cases whose transformation is semantic (requires
world knowledge) or outside the library simply fail, which is what limits TDE
to the lower accuracies of Table 2.
"""

from __future__ import annotations

from typing import Any

from ..core.tasks.transformation import TransformationTask
from ..core.types import TaskType
from ..datasets.base import BenchmarkDataset
from ..transforms.search import ProgramSearcher
from .base import Baseline


class TDETransformer(Baseline):
    """By-example program search over the built-in operator library."""

    name = "TDE"

    def __init__(self, seed: int = 0, max_depth: int = 2):
        super().__init__(seed)
        self.searcher = ProgramSearcher(max_depth=max_depth)

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.DATA_TRANSFORMATION)
        predictions: list[Any] = []
        for task in dataset.tasks:
            if not isinstance(task, TransformationTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            predictions.append(self.transform(task))
        return predictions

    def transform(self, task: TransformationTask) -> str:
        result = self.searcher.search(task.examples)
        if result.program is None:
            # TDE surfaces "no program found"; scored as an incorrect repair.
            return ""
        output = result.program(task.source)
        return output if output is not None else ""
