"""Crash supervision — auto-restarting dead workers in place.

The router survives a worker death (un-ring + requeue) but never brings
capacity back; the :class:`Supervisor` closes that loop.  It watches the
router's worker table, and when a registered worker has fallen off the ring
without draining — a crash, not a planned leave — it asks the router to
:meth:`~repro.cluster.router.Router.revive_worker` it: respawn through the
worker factory, re-open the *same* persistent shard directory (warm-restart
replay — every completion the dead incarnation flushed is served from disk,
zero recomputation), re-enter the ring at the same id so consistent hashing
hands back exactly the keys it owned.

Restart storms are damped by capped exponential backoff per worker id: the
first revival is immediate, each subsequent one of the same id waits
``backoff_base * 2^(n-1)`` seconds (capped at ``backoff_cap``), and
``max_restarts`` (when set) gives up on a crash-looping worker for good.
Every attempt increments the ``cluster.restarts`` counter and emits
``cluster.restart`` / ``cluster.restart_failed`` events.

Run it as a background daemon thread (:meth:`start`/:meth:`stop`) or drive
it deterministically from tests with :meth:`check_once` and injected
``clock``/``sleep``.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable

from ..obs.events import emit_event
from ..obs.metrics import MetricsRegistry, get_default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .router import Router

__all__ = ["Supervisor"]


class Supervisor:
    """Auto-restarts crashed workers through the router's worker factory.

    Parameters
    ----------
    router:
        The cluster router to supervise (must have a worker factory — the
        :meth:`~repro.cluster.router.Router.local`/``spawn`` constructors
        install one).
    interval:
        Seconds between background checks when :meth:`start` is used.
    backoff_base / backoff_cap:
        Exponential-backoff schedule between restarts of one worker id:
        ``min(cap, base * 2^(attempts-1))`` seconds after each revival.
    max_restarts:
        Give up on a worker id after this many revivals (``None`` = never).
    clock:
        Monotonic seconds source (injected by deterministic tests).
    """

    def __init__(
        self,
        router: "Router",
        *,
        interval: float = 1.0,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        max_restarts: int | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.router = router
        self.interval = interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_restarts = max_restarts
        self._clock = clock
        self._metrics = metrics or get_default_registry()
        self._m_given_up = self._metrics.counter("cluster.restarts_given_up")
        #: Revivals attempted per worker id (drives the backoff exponent).
        self._attempts: dict[str, int] = {}
        #: Monotonic time before which a worker id must not be revived.
        self._not_before: dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ policy
    def backoff(self, attempts: int) -> float:
        """Delay before the next revival after ``attempts`` restarts."""
        if attempts <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempts - 1)))

    def crashed_workers(self) -> list[str]:
        """Registered workers off the ring without draining (the crashed)."""
        live = self.router.live_workers
        draining = self.router.draining_workers
        return [
            worker_id
            for worker_id in list(self.router.workers)
            if worker_id not in live and worker_id not in draining
        ]

    # ------------------------------------------------------------------ checks
    def check_once(self) -> list[str]:
        """One supervision pass; returns the worker ids revived.

        Sweeps health first (so crashes the router has not noticed yet are
        discovered), then revives every crashed worker whose backoff window
        has elapsed.
        """
        self.router.check_health()
        revived: list[str] = []
        now = self._clock()
        for worker_id in self.crashed_workers():
            attempts = self._attempts.get(worker_id, 0)
            if self.max_restarts is not None and attempts >= self.max_restarts:
                continue
            if now < self._not_before.get(worker_id, 0.0):
                continue
            self._attempts[worker_id] = attempts + 1
            self._not_before[worker_id] = now + self.backoff(attempts + 1)
            try:
                self.router.revive_worker(worker_id)
            except Exception as exc:
                emit_event(
                    "cluster.restart_failed",
                    worker=worker_id,
                    attempt=attempts + 1,
                    error=str(exc),
                )
                if (
                    self.max_restarts is not None
                    and self._attempts[worker_id] >= self.max_restarts
                ):
                    self._m_given_up.inc()
                continue
            revived.append(worker_id)
        return revived

    def reset(self, worker_id: str) -> None:
        """Forget a worker's backoff history (it has proven stable)."""
        self._attempts.pop(worker_id, None)
        self._not_before.pop(worker_id, None)

    # --------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Run :meth:`check_once` on a daemon thread every ``interval`` s."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.check_once()
                except Exception:  # pragma: no cover - defensive
                    # Supervision must outlive transient errors: a failed
                    # pass is retried next interval, never fatal.
                    continue

        self._thread = threading.Thread(
            target=run, daemon=True, name="repro-supervisor"
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
