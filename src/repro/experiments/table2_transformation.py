"""Table 2 — data transformation accuracy on StackOverflow and Bing-QueryLogs.

Compares the search-based TDE baseline, the FM prompting baseline and UniDM.
"""

from __future__ import annotations

from ..baselines import TDETransformer
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_fm, make_unidm, result_row

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "stackoverflow": {"TDE": 63.0, "FM": 65.3, "UniDM": 67.4},
    "bing_querylogs": {"TDE": 32.0, "FM": 54.0, "UniDM": 56.0},
}

DATASETS = ("stackoverflow", "bing_querylogs")


def methods_for(dataset, seed: int):
    return [
        ("TDE", TDETransformer(seed=seed)),
        ("FM", make_fm(dataset, "manual", seed=seed + 1, name="FM")),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        for method_name, method in methods_for(dataset, seed):
            result = evaluate(method, dataset, max_tasks=max_tasks)
            rows.append(
                result_row(
                    result,
                    method=method_name,
                    paper=PAPER_RESULTS[dataset_name].get(method_name, float("nan")),
                )
            )
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["dataset", "method", "score", "paper"],
        title="Table 2 — Data transformation accuracy (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
