"""Property: pipeline execution == sequential per-row ``run_task`` execution.

For every flow operator, executing a (possibly partitioned) pipeline through
the flow executor — with its cross-stage deduplication, wave fusion and
batched submission — must produce exactly the table a naive per-row loop
produces: compile each stage over each partition, run every work item's task
one at a time through ``Client.run_task``, write the answers back.

Identity is only well-defined when execution is a pure function of each
task, so the backing stack is deterministic by construction:

* the LLM is a pure function of the prompt (no noise stream), and
* retrieval sampling is disabled (``n_meta_attributes=0`` /
  ``top_k_instances=0``): the shared pipeline rng is never consumed, which
  is exactly what makes skipping a duplicate task (dedup) invisible to the
  tasks after it.  (With sampling enabled the *sequence* of rng draws — not
  any answer — would differ between the two execution strategies; that
  nondeterminism across execution modes is a documented property of the
  serving engine, not of the flow layer.)
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Client
from repro.core import UniDMConfig
from repro.datalake import Table
from repro.flow import (
    Ask,
    DetectErrors,
    Extract,
    Filter,
    FlowExecutor,
    Impute,
    Join,
    Partition,
    Pipeline,
    Resolve,
    Select,
    Transform,
)
from repro.flow.executor import _chunks, _segments
from repro.llm.base import LanguageModel

SETTINGS = settings(max_examples=20, deadline=None)


class PromptPureLLM(LanguageModel):
    """Deterministic backend: the completion depends only on the prompt."""

    name = "prompt-pure"

    def _complete_text(self, prompt: str) -> str:
        if "Yes or No" in prompt:
            return "Yes" if len(prompt) % 2 else "No"
        return f"w{sum(ord(c) for c in prompt) % 89}"


@pytest.fixture(scope="module")
def client():
    config = UniDMConfig(n_meta_attributes=0, top_k_instances=0)
    with Client.local(llm=PromptPureLLM(), config=config, batch_size=4, workers=4) as c:
        yield c


def run_rowwise(pipeline: Pipeline, table: Table, client: Client):
    """Reference semantics: per partition, per stage, one ``run_task`` per item."""
    answers = {}
    current = table
    for kind, size, stages in _segments(pipeline):
        if kind == "barrier":
            current = _rowwise_stages(current, [stages], client, answers)
            continue
        parts = [
            _rowwise_stages(part, stages, client, answers)
            for part in _chunks(current, size)
        ]
        if parts:
            current = Table.concat(parts, name=current.name)
    return current, answers


def _rowwise_stages(part, stages, client, answers):
    for _, operator in stages:
        if not operator.needs_llm:
            part = operator.transform(part)
            continue
        items = operator.compile(part)
        results = [
            (item, client.run_task(item.spec.to_task()).value) for item in items
        ]
        part = operator.apply(part, results, answers)
    return part


def assert_flow_matches_rowwise(pipeline, table, client):
    expected_table, expected_answers = run_rowwise(pipeline, table, client)
    result = FlowExecutor(client.submit_many, batch_size=3).run(pipeline, table)
    assert result.table.to_dicts() == expected_table.to_dicts()
    assert result.table.schema.names == expected_table.schema.names
    assert result.answers == expected_answers


# ----------------------------------------------------------------- strategies
COLS = ["name", "city", "phone"]
values = st.one_of(
    st.none(), st.sampled_from(["rome", "pisa", "bari", "x y", "06-1", "06-2"])
)
words = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5)


@st.composite
def tables(draw):
    n_rows = draw(st.integers(1, 5))
    rows = []
    for _ in range(n_rows):
        rows.append({"name": draw(words), "city": draw(values), "phone": draw(values)})
    if draw(st.booleans()) and rows:
        rows.append(dict(rows[0]))  # force a duplicate row: dedup fodder
    return Table.from_dicts("t", rows)


partition_sizes = st.sampled_from([None, 1, 2, 3])

example_pairs = st.lists(
    st.tuples(words, words).map(list), min_size=1, max_size=2
)

reference_rows = st.lists(
    st.fixed_dictionaries(
        {"rid": st.sampled_from(["r1", "r2", "r3"]), "name": words}
    ),
    min_size=1,
    max_size=3,
)


@st.composite
def single_operator_pipelines(draw):
    operator = draw(
        st.one_of(
            st.builds(Impute, column=st.sampled_from(COLS)),
            st.builds(DetectErrors, column=st.sampled_from(COLS)),
            st.builds(
                Transform,
                column=st.sampled_from(COLS),
                examples=example_pairs,
                output_column=st.sampled_from(["", "out"]),
            ),
            st.builds(
                Extract,
                document_column=st.just("name"),
                attribute=st.sampled_from(["team", "year"]),
            ),
            st.builds(
                Resolve,
                against=reference_rows,
                key=st.just("rid"),
                attributes=st.one_of(st.none(), st.just(("name",))),
                max_candidates=st.sampled_from([0, 1, 2]),
            ),
            st.builds(
                Join,
                other=st.lists(
                    st.fixed_dictionaries(
                        {"town": st.sampled_from(["rome", "pisa"]), "region": words}
                    ),
                    min_size=1,
                    max_size=2,
                ),
                on=st.just("city"),
                other_on=st.just("town"),
            ),
            st.builds(Ask, question=words, name=st.just("q")),
            st.builds(
                Filter,
                column=st.sampled_from(COLS),
                mode=st.sampled_from(["missing", "not_missing", "equals"]),
                value=st.one_of(st.none(), st.just("rome")),
            ),
            st.builds(Select, columns=st.just(("city", "name"))),
        )
    )
    return Pipeline([operator], partition_size=draw(partition_sizes))


@SETTINGS
@given(data=st.data())
def test_every_operator_is_identical_to_rowwise_execution(data, client):
    pipeline = data.draw(single_operator_pipelines())
    table = data.draw(tables())
    assert_flow_matches_rowwise(pipeline, table, client)


@SETTINGS
@given(data=st.data())
def test_multi_stage_pipelines_are_identical_to_rowwise_execution(data, client):
    table = data.draw(tables())
    pipeline = Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Partition(data.draw(st.integers(1, 3))),
            Transform("phone", examples=[["06-1", "+39 06 1"]], output_column="intl"),
            Filter("city", "not_missing"),
            Select(["name", "city", "intl"]),
        ],
        partition_size=data.draw(partition_sizes),
    )
    assert_flow_matches_rowwise(pipeline, table, client)
