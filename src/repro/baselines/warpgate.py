"""WarpGate baseline (Cong et al. 2022) — embedding-based join discovery.

WarpGate embeds columns and flags pairs whose embeddings are close as joinable.
The reproduction embeds each column as the mean hashed character-n-gram vector
of its values and scores a pair by cosine similarity.  Exact-value overlap
joins score high; *semantic* joins (country name vs. ISO code) have little
surface overlap and score low — the weakness that gives UniDM its margin in
Figure 5.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.tasks.join_discovery import JoinDiscoveryTask
from ..core.types import TaskType
from ..datalake.table import Table, is_missing
from ..datalake.text import embed_values
from ..datasets.base import BenchmarkDataset
from .base import Baseline


class WarpGateJoinDiscovery(Baseline):
    """Cosine similarity of column embeddings, thresholded."""

    name = "WarpGate"

    def __init__(self, seed: int = 0, threshold: float = 0.6):
        super().__init__(seed)
        self.threshold = threshold
        self._column_cache: dict[tuple[str, str], np.ndarray] = {}

    def column_embedding(self, table: Table, column: str) -> np.ndarray:
        key = (table.name, column)
        if key not in self._column_cache:
            values = [str(v) for v in table.column(column) if not is_missing(v)]
            if not values:
                self._column_cache[key] = np.zeros(256)
            else:
                self._column_cache[key] = embed_values(values).mean(axis=0)
        return self._column_cache[key]

    def score(self, task: JoinDiscoveryTask) -> float:
        a = self.column_embedding(task.table_a, task.column_a)
        b = self.column_embedding(task.table_b, task.column_b)
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(a @ b / (na * nb))

    def score_dataset(self, dataset: BenchmarkDataset) -> list[float]:
        """Raw joinability scores (used for the threshold sweep of Figure 5)."""
        self._check_task_type(dataset, TaskType.JOIN_DISCOVERY)
        scores = []
        for task in dataset.tasks:
            if not isinstance(task, JoinDiscoveryTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            scores.append(self.score(task))
        return scores

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        return [score >= self.threshold for score in self.score_dataset(dataset)]
