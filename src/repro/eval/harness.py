"""Evaluation harness: run a method over a benchmark and score it.

Two kinds of methods are supported:

* **per-task methods** expose ``solve(task) -> value`` (the UniDM pipeline and
  the FM baseline, which answer one query at a time);
* **dataset-level methods** expose ``predict_dataset(dataset) -> list`` (the
  traditional baselines — HoloClean, CMI, TDE, Ditto, ... — which fit on the
  whole table and emit all predictions at once).

The harness picks whichever interface a method provides, applies the metric
appropriate to the task type (accuracy, F1 or text F1) and records per-query
token consumption when the method owns an LLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..core.types import TaskType
from ..datasets.base import BenchmarkDataset
from .metrics import accuracy, confusion, f1_score, mean_text_f1


@runtime_checkable
class PerTaskMethod(Protocol):
    name: str

    def solve(self, task) -> Any: ...


@runtime_checkable
class DatasetMethod(Protocol):
    name: str

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]: ...


MethodLike = PerTaskMethod | DatasetMethod

#: Engine configuration applied by :func:`evaluate` when the caller passes no
#: explicit ``batch_size``/``workers`` (set via :func:`set_default_engine`,
#: e.g. by the CLI's ``--engine`` flag).  ``None`` means per-task execution.
_DEFAULT_ENGINE_CONFIG = None


def set_default_engine(config) -> None:
    """Install an :class:`~repro.serving.engine.EngineConfig` (or ``None``)
    used by every subsequent :func:`evaluate` call that doesn't pass engine
    options itself.  Lets ``python -m repro run-experiment --engine`` switch a
    whole experiment to batched execution without threading flags through
    every experiment module."""
    global _DEFAULT_ENGINE_CONFIG
    _DEFAULT_ENGINE_CONFIG = config


@dataclass
class EvaluationResult:
    """One (method, dataset) evaluation."""

    method: str
    dataset: str
    task_type: TaskType
    metric_name: str
    score: float
    n_tasks: int
    predictions: list[Any] = field(default_factory=list)
    ground_truth: list[Any] = field(default_factory=list)
    total_tokens: int = 0
    llm_calls: int = 0
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def score_percent(self) -> float:
        return 100.0 * self.score

    @property
    def tokens_per_query(self) -> float:
        return self.total_tokens / self.n_tasks if self.n_tasks else 0.0

    def summary(self) -> str:
        return (
            f"{self.method:<28s} {self.dataset:<18s} "
            f"{self.metric_name}={self.score_percent:5.1f}%  n={self.n_tasks}"
        )


def metric_for(task_type: TaskType) -> tuple[str, Callable[[Sequence, Sequence], float]]:
    """The (name, function) of the paper's metric for a task type."""
    if task_type in (TaskType.ERROR_DETECTION, TaskType.ENTITY_RESOLUTION, TaskType.JOIN_DISCOVERY):
        return "f1", f1_score
    if task_type is TaskType.INFORMATION_EXTRACTION:
        return "text_f1", mean_text_f1
    return "accuracy", accuracy


def evaluate(
    method: MethodLike,
    dataset: BenchmarkDataset,
    max_tasks: int | None = None,
    subset_seed: int = 0,
    batch_size: int | None = None,
    workers: int | None = None,
) -> EvaluationResult:
    """Run ``method`` over ``dataset`` and compute the paper's metric.

    ``batch_size``/``workers`` route a pipeline-backed per-task method through
    the serving :class:`~repro.serving.engine.ExecutionEngine` (wrapped in a
    local :class:`repro.api.Client`) instead of a sequential loop,
    micro-batching its LLM calls across tasks.
    """
    bench = dataset if max_tasks is None else dataset.subset(max_tasks, seed=subset_seed)
    metric_name, metric_fn = metric_for(bench.task_type)

    tokens_before, calls_before = _usage_of(method)
    if hasattr(method, "predict_dataset"):
        predictions = list(method.predict_dataset(bench))
        if len(predictions) != len(bench.tasks):
            raise ValueError(
                f"{method.name}: predict_dataset returned {len(predictions)} "
                f"predictions for {len(bench.tasks)} tasks"
            )
    else:
        engine = _engine_for(batch_size, workers)
        pipeline = _pipeline_of(method) if engine is not None else None
        if pipeline is not None:
            from ..api import Client

            client = Client.local(pipeline=pipeline, engine=engine)
            predictions = [result.value for result in client.run_tasks(bench.tasks)]
        else:
            predictions = [method.solve(task) for task in bench.tasks]
    tokens_after, calls_after = _usage_of(method)

    score = metric_fn(predictions, bench.ground_truth)
    extras: dict[str, Any] = {}
    if metric_name == "f1":
        matrix = confusion([bool(p) for p in predictions], [bool(t) for t in bench.ground_truth])
        extras.update(
            precision=matrix.precision, recall=matrix.recall, accuracy=matrix.accuracy
        )
    return EvaluationResult(
        method=getattr(method, "name", type(method).__name__),
        dataset=bench.name,
        task_type=bench.task_type,
        metric_name=metric_name,
        score=score,
        n_tasks=len(bench.tasks),
        predictions=predictions,
        ground_truth=list(bench.ground_truth),
        total_tokens=tokens_after - tokens_before,
        llm_calls=calls_after - calls_before,
        extras=extras,
    )


def evaluate_many(
    methods: Sequence[MethodLike],
    dataset: BenchmarkDataset,
    max_tasks: int | None = None,
) -> list[EvaluationResult]:
    """Evaluate several methods on the same benchmark."""
    return [evaluate(method, dataset, max_tasks=max_tasks) for method in methods]


def _engine_for(batch_size: int | None, workers: int | None):
    """Build the engine implied by evaluate()'s options (or the global default)."""
    from ..serving.engine import EngineConfig, ExecutionEngine

    if batch_size is None and workers is None:
        if _DEFAULT_ENGINE_CONFIG is None:
            return None
        return ExecutionEngine(_DEFAULT_ENGINE_CONFIG)
    return ExecutionEngine(
        EngineConfig(max_batch_size=batch_size or 8, workers=workers or 8)
    )


def _pipeline_of(method: Any):
    """The engine-capable pipeline behind ``method``, if it has one."""
    pipeline = getattr(method, "pipeline", None)
    if pipeline is None and hasattr(method, "plan_retrieval"):
        pipeline = method  # a bare UniDM passed directly
    if pipeline is not None and hasattr(pipeline, "run_many"):
        return pipeline
    return None


def _usage_of(method: Any) -> tuple[int, int]:
    """Total (tokens, calls) of the method's LLM, if it exposes one."""
    llm = getattr(method, "llm", None)
    usage = getattr(llm, "usage", None)
    if usage is None:
        return 0, 0
    return usage.total_tokens, usage.calls
