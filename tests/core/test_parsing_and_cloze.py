"""Unit tests for context parsing and target prompt construction."""

from repro.core import ImputationTask, UniDMConfig
from repro.core.cloze import TargetPromptBuilder
from repro.core.parsing import ContextParser
from repro.core.types import PromptTrace
from repro.llm import EchoLLM
from repro.prompting import CLOZE_BLANK


def test_parser_serializes_and_parses(city_table, city_llm):
    parser = ContextParser(city_llm, UniDMConfig.full())
    trace = PromptTrace()
    parsed = parser.parse_records(city_table.records[:2], ["city", "country"], trace)
    assert parsed.was_parsed
    assert "Florence is a city in the country Italy." in parsed.text
    assert "city: Florence" in parsed.serialized
    assert trace.data_parsing is not None


def test_parser_disabled_returns_serialized(city_table, city_llm):
    parser = ContextParser(city_llm, UniDMConfig.full(use_context_parsing=False))
    parsed = parser.parse_records(city_table.records[:2], ["city", "country"])
    assert not parsed.was_parsed
    assert parsed.text == parsed.serialized


def test_parser_empty_context(city_llm):
    parser = ContextParser(city_llm, UniDMConfig.full())
    parsed = parser.parse_records([], ["city"])
    assert parsed.is_empty


def test_parser_raw_text_passthrough(city_llm):
    parser = ContextParser(city_llm, UniDMConfig.full())
    parsed = parser.parse_raw_text("A document about a player.")
    assert parsed.text == "A document about a player."
    assert not parsed.was_parsed


def test_parser_blank_llm_reply_falls_back(city_table):
    parser = ContextParser(EchoLLM(reply="   "), UniDMConfig.full())
    parsed = parser.parse_rows([[("city", "Florence"), ("country", "Italy")]])
    assert not parsed.was_parsed
    assert "city: Florence" in parsed.text


def test_cloze_builder_produces_cloze(city_table, city_llm):
    task = ImputationTask(city_table, city_table[5], "timezone")
    builder = TargetPromptBuilder(city_llm, UniDMConfig.full())
    trace = PromptTrace()
    target = builder.build(task, "Florence is a city in the country Italy.", trace)
    assert target.is_cloze
    assert CLOZE_BLANK in target.text
    assert "Copenhagen" in target.text
    assert trace.cloze_construction is not None
    assert trace.target_prompt == target.text


def test_cloze_builder_disabled_uses_direct_prompt(city_table, city_llm):
    task = ImputationTask(city_table, city_table[5], "timezone")
    builder = TargetPromptBuilder(city_llm, UniDMConfig.full(use_cloze_prompt=False))
    target = builder.build(task, "some context")
    assert not target.is_cloze
    assert target.text.startswith("The task is [")
    assert target.text.endswith("Answer:")


def test_cloze_builder_empty_reply_falls_back(city_table):
    task = ImputationTask(city_table, city_table[5], "timezone")
    builder = TargetPromptBuilder(EchoLLM(reply=""), UniDMConfig.full())
    target = builder.build(task, "ctx")
    assert not target.is_cloze
    assert target.text.endswith("Answer:")
