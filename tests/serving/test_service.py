"""Tests for the JSON service front-end (request building, streams, TCP)."""

import asyncio
import io
import json

import pytest

from repro.core import (
    ImputationTask,
    InformationExtractionTask,
    TableQATask,
    TransformationTask,
)
from repro.serving import build_service
from repro.serving.service import build_task


# ------------------------------------------------------------- request parsing
def test_build_imputation_task():
    task = build_task(
        {
            "type": "imputation",
            "rows": [
                {"city": "Florence", "country": "Italy"},
                {"city": "Madrid", "country": "Spain"},
            ],
            "target": {"city": "Milan"},
            "attribute": "country",
        }
    )
    assert isinstance(task, ImputationTask)
    assert task.query() == "Milan, country"


def test_build_transformation_task():
    task = build_task(
        {"type": "transformation", "value": "a", "examples": [["x", "y"]]}
    )
    assert isinstance(task, TransformationTask)


def test_build_extraction_and_table_qa_tasks():
    assert isinstance(
        build_task({"type": "extraction", "document": "doc", "attribute": "name"}),
        InformationExtractionTask,
    )
    assert isinstance(
        build_task(
            {
                "type": "table_qa",
                "rows": [{"player": "Jordan", "team": "Bulls"}],
                "question": "which team?",
            }
        ),
        TableQATask,
    )


@pytest.mark.parametrize(
    "request_obj",
    [
        {"type": "unknown"},
        {"type": "imputation", "rows": [], "target": {}, "attribute": "x"},
        {"type": "imputation", "rows": [{"a": 1}], "target": "no", "attribute": "a"},
        {"type": "imputation", "rows": [{"a": 1}], "target": {"a": 1}},
        {"type": "imputation", "rows": [{"a": 1}], "target": {}, "attribute": "a", "primary_key": "z"},
        {"type": "transformation", "value": "a", "examples": []},
    ],
)
def test_build_task_rejects_malformed_requests(request_obj):
    with pytest.raises((ValueError, KeyError)):
        build_task(request_obj)


# ------------------------------------------------------------------- batches
@pytest.fixture
def service(tmp_path):
    return build_service(seed=0, cache_dir=str(tmp_path / "cache"), batch_size=4, workers=4)


def test_handle_batch_mixes_good_and_bad_requests(service):
    responses = service.handle_batch(
        [
            {
                "id": "t1",
                "type": "transformation",
                "value": "19990415",
                "examples": [["20000101", "2000-01-01"], ["20101231", "2010-12-31"]],
            },
            {"id": "bad", "type": "nope"},
            {"id": "t2", "type": "extraction", "document": "Kevin Durant plays basketball.", "attribute": "player"},
        ]
    )
    assert [r["id"] for r in responses] == ["t1", "bad", "t2"]
    assert responses[0]["ok"] and responses[0]["answer"] == "1999-04-15"
    assert responses[0]["tokens"] > 0 and responses[0]["calls"] > 0
    assert not responses[1]["ok"] and "nope" in responses[1]["error"]
    assert responses[2]["ok"]
    assert service.requests_served == 3


def test_underscore_keys_in_requests_are_harmless(service):
    # Client payloads may carry arbitrary extra keys; the bad-JSON marker is
    # out-of-band and must not collide with them.
    response = service.handle_request(
        {
            "id": 9,
            "type": "transformation",
            "value": "x",
            "examples": [["a", "A"]],
            "_invalid": "just a client field",
        }
    )
    assert response["ok"]


def test_concurrent_batches_are_serialized(service):
    from concurrent.futures import ThreadPoolExecutor

    request = {"type": "transformation", "value": "x", "examples": [["a", "A"]]}
    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(service.handle_batch, [[request]] * 8))
    assert all(batch[0]["ok"] for batch in outcomes)
    assert service.requests_served == 8


def test_handle_request_single(service):
    response = service.handle_request(
        {"type": "transformation", "value": "abc", "examples": [["a", "A"], ["b", "B"]]}
    )
    assert response["ok"]


def test_serve_stream_flushes_on_blank_line_and_eof(service):
    lines = [
        json.dumps({"id": 1, "type": "transformation", "value": "1", "examples": [["1", "one"]]}),
        "",
        "not json at all {",
        json.dumps({"id": 2, "type": "extraction", "document": "d", "attribute": "a"}),
    ]
    out = io.StringIO()
    served = service.serve_stream(io.StringIO("\n".join(lines) + "\n"), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 3
    assert [r.get("id") for r in responses] == [1, None, 2]
    assert responses[0]["ok"]
    assert not responses[1]["ok"] and "bad JSON" in responses[1]["error"]
    assert responses[2]["ok"]


def test_serve_stream_reuses_cache_across_batches(service):
    request = json.dumps(
        {"id": 1, "type": "transformation", "value": "x", "examples": [["a", "A"]]}
    )
    stream = "\n".join([request, "", request]) + "\n"
    out = io.StringIO()
    service.serve_stream(io.StringIO(stream), out)
    assert service.pipeline.llm.hits > 0  # second batch served from cache


# ----------------------------------------------------------------------- tcp
def test_tcp_round_trip(service):
    async def scenario():
        server = await service.start_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = [
                json.dumps({"id": 1, "type": "transformation", "value": "7", "examples": [["1", "one"]]}),
                json.dumps({"id": 2, "type": "bogus"}),
                "",  # flush the batch
            ]
            writer.write(("\n".join(payload) + "\n").encode())
            await writer.drain()
            first = json.loads(await asyncio.wait_for(reader.readline(), 30))
            second = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            return first, second

    first, second = asyncio.run(scenario())
    assert first["id"] == 1 and first["ok"]
    assert second["id"] == 2 and not second["ok"]
