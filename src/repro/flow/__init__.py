"""Declarative table-level dataflow pipelines over the unified task API.

The modules under :mod:`repro.core` solve one task instance; :mod:`repro.api`
submits one typed request; this package composes *whole-table* workloads out
of them.  A :class:`Pipeline` of declarative operators (``DetectErrors`` →
``Impute`` → ``Transform`` → ...) compiles into deduplicated batches of
:class:`~repro.api.specs.TaskSpec` requests (:mod:`repro.flow.planner`) and
streams them partition-at-a-time through a local or remote
:class:`~repro.api.Client` (:mod:`repro.flow.executor`) — turning the seven
isolated task reproductions into one composable system.

Quickstart::

    from repro.api import Client
    from repro.flow import Impute, Pipeline, Transform

    flow = Pipeline([
        Impute("city"),
        Transform("phone", examples=[["212-555-0199", "(212) 555 0199"]]),
    ])
    result = flow.run(table, client=Client.local(seed=0))
    print(result.table.to_dicts(), result.report.dedup_factor)
"""

from .executor import FlowExecutor, FlowReport, FlowResult, StageMetrics
from .operators import (
    FILTER_MODES,
    OP_TYPES,
    Ask,
    DetectErrors,
    Extract,
    Filter,
    FlowError,
    Impute,
    Join,
    Operator,
    Partition,
    Resolve,
    Select,
    Transform,
    WorkItem,
    operator_from_payload,
    register_op,
)
from .pipeline import Pipeline
from .planner import Planner, StagePlan, WavePlan, independent_waves, spec_key

__all__ = [
    "Ask",
    "DetectErrors",
    "Extract",
    "FILTER_MODES",
    "Filter",
    "FlowError",
    "FlowExecutor",
    "FlowReport",
    "FlowResult",
    "Impute",
    "Join",
    "OP_TYPES",
    "Operator",
    "Partition",
    "Pipeline",
    "Planner",
    "Resolve",
    "Select",
    "StageMetrics",
    "StagePlan",
    "Transform",
    "WavePlan",
    "WorkItem",
    "independent_waves",
    "operator_from_payload",
    "register_op",
    "spec_key",
]
