"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_cli_list_datasets(capsys):
    assert main(["list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "restaurant" in out and "nextiajd" in out


def test_cli_list_experiments(capsys):
    assert main(["list-experiments"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure5" in out


def test_cli_run_experiment_unknown(capsys):
    assert main(["run-experiment", "nope"]) == 2


def test_cli_run_experiment_small(capsys):
    assert main(["run-experiment", "table11", "--max-tasks", "4"]) == 0
    out = capsys.readouterr().out
    assert "Evaporate" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "target prompt:" in out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
