"""A small, deterministic tokenizer used for token accounting.

The paper reports per-query token consumption (Table 7) to quantify the cost
of UniDM's extra LLM calls relative to the FM baseline.  We do not need a
byte-pair-encoding vocabulary for that comparison — only a stable, roughly
proportional token count — so the tokenizer splits on words and punctuation
and additionally breaks long words into sub-word chunks, which tracks GPT-style
tokenizers to within a few percent on English prompt text.
"""

from __future__ import annotations

import re
from typing import Iterable

_WORD_RE = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]")

#: Maximum characters per sub-word chunk; long words are split into pieces of
#: this size, mimicking BPE splitting of rare words.
_SUBWORD_LEN = 4


class SimpleTokenizer:
    """Whitespace/punctuation tokenizer with sub-word splitting of long words."""

    def __init__(self, subword_length: int = _SUBWORD_LEN):
        if subword_length < 1:
            raise ValueError("subword_length must be positive")
        self.subword_length = subword_length

    def tokenize(self, text: str) -> list[str]:
        """Return the token strings of ``text``."""
        tokens: list[str] = []
        for piece in _WORD_RE.findall(str(text)):
            if piece.isalpha() and len(piece) > self.subword_length:
                tokens.extend(
                    piece[i : i + self.subword_length]
                    for i in range(0, len(piece), self.subword_length)
                )
            else:
                tokens.append(piece)
        return tokens

    def count(self, text: str) -> int:
        """Number of tokens in ``text``."""
        return len(self.tokenize(text))

    def count_many(self, texts: Iterable[str]) -> int:
        return sum(self.count(t) for t in texts)


#: Shared default tokenizer instance.
DEFAULT_TOKENIZER = SimpleTokenizer()


def count_tokens(text: str) -> int:
    """Count tokens with the library-wide default tokenizer."""
    return DEFAULT_TOKENIZER.count(text)
