"""HoloDetect baseline (Heidari et al. 2019) — few-shot learned error detection.

HoloDetect learns an error classifier from a small set of labelled examples
plus data augmentation.  The reproduction featurises every cell with the same
families of signals the original uses (value frequency, distance to the
attribute's other values, character-class composition) and fits a tiny
logistic-regression head on a few labelled cells per attribute, augmenting the
positive class with synthetically corrupted copies of clean values.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.tasks.error_detection import ErrorDetectionTask
from ..core.types import TaskType
from ..datalake.table import Table, is_missing
from ..datalake.text import string_similarity
from ..datasets.base import BenchmarkDataset
from ..datasets.corruption import corrupt_value
from .base import Baseline


def _cell_features(value: str, column_values: list[str], frequency: int) -> np.ndarray:
    """Feature vector of one cell (frequency, similarity-to-domain, char classes)."""
    value = str(value)
    others = [v for v in column_values if v != value]
    nearest = max((string_similarity(value, v) for v in others), default=0.0)
    letters = sum(c.isalpha() for c in value)
    digits = sum(c.isdigit() for c in value)
    unusual = sum(value.lower().count(c) for c in "xqz")
    length = len(value)
    return np.array(
        [
            1.0,
            min(frequency, 10) / 10.0,
            nearest,
            unusual / max(letters, 1),
            digits / max(length, 1),
            min(length, 40) / 40.0,
        ]
    )


class HoloDetectDetector(Baseline):
    """Few-shot logistic-regression error detector with augmentation."""

    name = "HoloDetect"

    def __init__(
        self,
        seed: int = 0,
        n_labeled_per_attribute: int = 12,
        n_augmented_errors: int = 20,
        learning_rate: float = 0.5,
        epochs: int = 300,
    ):
        super().__init__(seed)
        self.n_labeled_per_attribute = n_labeled_per_attribute
        self.n_augmented_errors = n_augmented_errors
        self.learning_rate = learning_rate
        self.epochs = epochs

    # ----------------------------------------------------------------- interface
    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.ERROR_DETECTION)
        tasks = dataset.tasks
        labels = dataset.ground_truth

        # Group cells by (table, attribute) so each attribute gets its own model.
        groups: dict[tuple[str, str], list[int]] = {}
        for index, task in enumerate(tasks):
            if not isinstance(task, ErrorDetectionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            groups.setdefault((task.table().name, task.attribute), []).append(index)

        predictions: list[bool] = [False] * len(tasks)
        for (_, attribute), indices in groups.items():
            table = tasks[indices[0]].table()
            weights = self._train_attribute_model(table, attribute, tasks, labels, indices)
            column_values = [str(v) for v in table.column(attribute)]
            frequency = {v: column_values.count(v) for v in set(column_values)}
            for index in indices:
                value = str(tasks[index].record[tasks[index].attribute])
                features = _cell_features(value, column_values, frequency.get(value, 0))
                predictions[index] = bool(_sigmoid(features @ weights) >= 0.5)
        return predictions

    # ------------------------------------------------------------------ training
    def _train_attribute_model(
        self,
        table: Table,
        attribute: str,
        tasks,
        labels,
        indices: list[int],
    ) -> np.ndarray:
        column_values = [str(v) for v in table.column(attribute) if not is_missing(v)]
        frequency = {v: column_values.count(v) for v in set(column_values)}

        # Few labelled cells (the "few-shot" supervision HoloDetect assumes).
        labeled = self.sample_indices(indices, self.n_labeled_per_attribute)
        features: list[np.ndarray] = []
        targets: list[float] = []
        for index in labeled:
            value = str(tasks[index].record[attribute])
            features.append(_cell_features(value, column_values, frequency.get(value, 0)))
            targets.append(1.0 if labels[index] else 0.0)

        # Data augmentation: corrupt clean values to synthesise extra positives,
        # and add clean values as extra negatives.
        clean_pool = [v for v in column_values if frequency.get(v, 0) >= 1]
        for _ in range(self.n_augmented_errors):
            source = clean_pool[int(self.rng.integers(len(clean_pool)))]
            corrupted = corrupt_value(source, self.rng)
            features.append(
                _cell_features(corrupted, column_values, frequency.get(corrupted, 0))
            )
            targets.append(1.0)
            features.append(_cell_features(source, column_values, frequency.get(source, 0)))
            targets.append(0.0)

        X = np.vstack(features)
        y = np.array(targets)
        return self._logistic_regression(X, y)

    def sample_indices(self, indices: list[int], k: int) -> list[int]:
        k = min(k, len(indices))
        chosen = self.rng.choice(len(indices), size=k, replace=False)
        return [indices[int(i)] for i in np.atleast_1d(chosen)]

    def _logistic_regression(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        weights = np.zeros(X.shape[1])
        for _ in range(self.epochs):
            predictions = _sigmoid(X @ weights)
            gradient = X.T @ (predictions - y) / len(y)
            weights -= self.learning_rate * gradient
        return weights


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
