"""Operational CLI helpers behind ``python -m repro``.

:mod:`repro.__main__` owns argument parsing and command registration; the
heavier command bodies that are worth testing (and sharing) on their own
live here:

* :mod:`repro.cli.fetch` — one snapshot-fetching path for every stats
  consumer (``repro stats``, ``repro top``, ``repro doctor``): main-port
  :class:`~repro.api.stats_spec.StatsSpec` requests, ``--stats-port``
  side-channel reads (legacy JSON line and HTTP), and probe/doctor GETs —
  all failing with a :class:`~repro.cli.fetch.StatsUnreachable` that the
  commands turn into a clear message and a non-zero exit instead of a raw
  traceback.
* :mod:`repro.cli.top` — the ``repro top`` live table (per-tenant QPS,
  windowed p99, shed rate, error-budget headroom, SLO state) and the
  shared watch loop ``repro stats --watch`` reuses.
"""

from .fetch import StatsUnreachable, fetch_probe, fetch_snapshot
from .top import render_top, watch_loop

__all__ = [
    "StatsUnreachable",
    "fetch_probe",
    "fetch_snapshot",
    "render_top",
    "watch_loop",
]
