"""Sharded multi-worker serving with cache affinity.

``repro.cluster`` scales the single-process serving tier horizontally: a
:class:`Router` consistent-hashes task specs across N workers — in-process
:class:`ThreadWorker` shards or spawned :class:`SubprocessWorker` processes
speaking the v2 TCP protocol — so each worker owns a disjoint persistent
cache shard and repeated work always lands where its cache is.

Entry points:

* :meth:`repro.api.Client.cluster` — the facade constructor most code uses;
* :meth:`Router.local` / :meth:`Router.spawn` — direct router assembly;
* ``python -m repro serve --cluster --workers 4`` — the sharded service CLI.

See ``docs/architecture.md`` for where the cluster tier sits in the stack.
"""

from .hashing import HashRing, spec_key
from .router import Router
from .stats import ClusterStats, WorkerStats
from .workers import (
    ClusterError,
    SubprocessWorker,
    ThreadWorker,
    Worker,
    WorkerDeadError,
)

__all__ = [
    "ClusterError",
    "ClusterStats",
    "HashRing",
    "Router",
    "SubprocessWorker",
    "ThreadWorker",
    "Worker",
    "WorkerDeadError",
    "WorkerStats",
    "spec_key",
]
