"""LLM substrate: interfaces, simulated models, knowledge, profiles, fine-tuning."""

from .base import Completion, EchoLLM, LanguageModel, UsageDelta, UsageTracker
from .cache import CacheBackend, CachedLLM
from .finetune import FineTuneReport, FineTuner, LabeledPair
from .knowledge import Fact, WorldKnowledge
from .profiles import DEFAULT_MODEL, MODEL_REGISTRY, ModelProfile, get_profile, list_models
from .simulated import SimulatedLLM
from .tokenizer import DEFAULT_TOKENIZER, SimpleTokenizer, count_tokens

__all__ = [
    "CacheBackend",
    "CachedLLM",
    "Completion",
    "DEFAULT_MODEL",
    "DEFAULT_TOKENIZER",
    "EchoLLM",
    "Fact",
    "FineTuneReport",
    "FineTuner",
    "LabeledPair",
    "LanguageModel",
    "MODEL_REGISTRY",
    "ModelProfile",
    "SimpleTokenizer",
    "SimulatedLLM",
    "UsageDelta",
    "UsageTracker",
    "WorldKnowledge",
    "count_tokens",
    "get_profile",
    "list_models",
]
