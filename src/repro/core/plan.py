"""Sans-IO LLM call plans.

Algorithm 1 interleaves pure computation (sampling, parsing completions,
assembling prompts) with LLM calls.  To let the exact same logic run both
synchronously (one task at a time) and inside the async serving engine (many
tasks with micro-batched LLM calls), each pipeline component expresses its
work as a *plan*: a generator that yields :class:`LLMRequest` objects and
receives the completion text back via ``send()``.  The component stays free of
I/O concerns; a driver decides how requests are actually executed:

* :func:`drive` executes a plan against a :class:`~repro.llm.base.LanguageModel`
  synchronously (the classic ``UniDM.run`` path);
* :func:`repro.serving.stages.drive_async` awaits each request through the
  micro-batcher, which coalesces same-kind requests across in-flight tasks.

Because both drivers walk the identical generator code, the serving engine is
equivalent to the sequential pipeline by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..llm.base import LanguageModel

#: A plan yields LLMRequests, receives completion texts, and returns its result.
Plan = Generator["LLMRequest", str, Any]


@dataclass(frozen=True)
class LLMRequest:
    """One LLM call a plan wants executed.

    ``kind`` is the accounting label (``p_rm``, ``p_ri``, ``p_dp``, ``p_cq``,
    ``answer``) — the micro-batcher also uses it to coalesce only same-kind
    prompts into one batched call.
    """

    prompt: str
    kind: str = "other"


def drive(plan: Plan, llm: LanguageModel) -> Any:
    """Run ``plan`` to completion against a synchronous language model."""
    try:
        request = next(plan)
        while True:
            completion = llm.complete(request.prompt, kind=request.kind)
            request = plan.send(completion.text)
    except StopIteration as stop:
        return stop.value


__all__ = ["LLMRequest", "Plan", "drive"]
