"""The stats wire type: a metrics snapshot as one request.

:class:`StatsSpec` registers under the wire type ``"stats"`` next to the
seven task specs and the plan-level ``pipeline`` type, so any client of the
line protocol can ask a running service (or cluster router) for its
observability snapshot::

    {"v": 2, "id": 1, "task": {"type": "stats"}}

The response's ``result.answer`` is the snapshot object: the
:class:`~repro.obs.MetricsRegistry` contents (counters, gauges, histogram
percentiles) plus a front-end section (service totals, or the aggregated
:class:`~repro.cluster.ClusterStats` for a cluster).  :meth:`repro.api.Client.stats`
and ``python -m repro stats`` are thin wrappers over this request.

A stats request is answered *before* admission control and outside the
batch lock — observability stays available exactly when the service is
overloaded.  Like the ``pipeline`` type it is not a single pipeline task,
so ``to_task()`` refuses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from .errors import InvalidRequestError
from .specs import TaskSpec, register_spec


@register_spec
@dataclass(frozen=True)
class StatsSpec(TaskSpec):
    """Ask the serving front-end for its metrics snapshot."""

    type: ClassVar[str] = "stats"

    #: Restrict the snapshot to metric names under this dotted prefix.
    prefix: str = ""

    #: Zero every metric (in place) after taking the snapshot, so the next
    #: snapshot describes only what happened since — benchmark isolation.
    reset: bool = False

    #: Restrict the snapshot to one tenant: the ``metrics`` section narrows
    #: to ``tenant.<resolved>.*`` and the ``tenancy`` section reports only
    #: that tenant's runtime state.  Empty means every tenant.
    tenant: str = ""

    def validate(self) -> None:
        if not isinstance(self.prefix, str):
            raise InvalidRequestError(
                "'prefix' must be a string of a dotted metric-name prefix",
                field="prefix",
            )
        if not isinstance(self.reset, bool):
            raise InvalidRequestError(
                "'reset' must be a boolean",
                field="reset",
            )
        if not isinstance(self.tenant, str):
            raise InvalidRequestError(
                "'tenant' must be a string naming the tenant",
                field="tenant",
            )

    def to_task(self):
        raise InvalidRequestError(
            "a stats request is answered by the serving front-end, not the "
            "pipeline; submit it through a Client (or Client.stats())",
            field="type",
        )


__all__ = ["StatsSpec"]
