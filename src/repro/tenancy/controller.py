"""Runtime tenant enforcement: buckets, inflight caps, per-tenant metrics.

:class:`TenancyController` is the piece a front door (the serving service or
the cluster router) holds when a :class:`~repro.tenancy.TenantRegistry` is
configured.  Per resolved tenant it lazily creates the runtime state — a
:class:`~repro.tenancy.TokenBucket`, an inflight count, and the metric
handles — and answers one question at admission time: :meth:`admit` returns
``None`` (admitted; call :meth:`release` when the work finishes) or a
structured ``rate_limited`` :class:`~repro.api.errors.ErrorInfo` carrying a
``retry_after`` hint and the per-tenant details at shed time.

Metric names are prefixed per tenant in the shared registry::

    tenant.<name>.admitted       counter — requests past the tenant's limits
    tenant.<name>.rate_limited   counter — requests shed by bucket or cap
    tenant.<name>.inflight       gauge   — admitted-but-unfinished requests
    tenant.<name>.latency        histogram — request latency inside the
                                 front door (queueing included; the chaos
                                 tests assert isolation on its p99)

Because :meth:`TenantRegistry.resolve` collapses unknown names onto
``default``, metric cardinality is bounded by the configured tenant set no
matter what names clients claim.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..api.errors import ErrorInfo
from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, get_default_registry
from .bucket import TokenBucket
from .registry import TenantConfig, TenantRegistry


class _TenantState:
    """Runtime state of one resolved tenant (bucket, inflight, metrics)."""

    __slots__ = (
        "config",
        "bucket",
        "inflight",
        "m_admitted",
        "m_rate_limited",
        "m_inflight",
        "m_latency",
    )

    def __init__(
        self,
        config: TenantConfig,
        clock: Callable[[], float],
        metrics: MetricsRegistry,
    ):
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst, clock=clock)
        self.inflight = 0
        prefix = f"tenant.{config.name}"
        self.m_admitted: Counter = metrics.counter(f"{prefix}.admitted")
        self.m_rate_limited: Counter = metrics.counter(f"{prefix}.rate_limited")
        self.m_inflight: Gauge = metrics.gauge(f"{prefix}.inflight")
        self.m_latency: Histogram = metrics.histogram(f"{prefix}.latency")


class TenancyController:
    """Enforces one registry's buckets and caps at a front door.

    Parameters
    ----------
    tenants:
        The tenant configuration; ``None`` builds a permissive
        default-only registry.
    retry_after:
        Back-off hint (seconds) for inflight-cap rejections, where the
        bucket's refill math offers no natural deadline.
    clock:
        Monotonic seconds source shared by every bucket (injectable for
        deterministic tests).
    """

    def __init__(
        self,
        tenants: TenantRegistry | None = None,
        *,
        retry_after: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ):
        if retry_after < 0:
            raise ValueError("retry_after must be non-negative")
        self.tenants = tenants if tenants is not None else TenantRegistry()
        self.retry_after = retry_after
        self._clock = clock
        self._metrics = metrics or get_default_registry()
        self._states: dict[str, _TenantState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ lookup
    def resolve(self, tenant: str | None) -> str:
        """The resolved tenant name state and metrics key on."""
        return self.tenants.resolve(tenant).name

    def weight(self, tenant: str | None) -> float:
        """The resolved tenant's scheduling weight (for fair dequeue)."""
        return self.tenants.resolve(tenant).weight

    def _state(self, tenant: str | None) -> _TenantState:
        config = self.tenants.resolve(tenant)
        state = self._states.get(config.name)
        if state is None:
            state = self._states[config.name] = _TenantState(
                config, self._clock, self._metrics
            )
        return state

    # --------------------------------------------------------------- admission
    def admit(self, tenant: str | None, n: int = 1) -> ErrorInfo | None:
        """Charge ``n`` requests against the tenant's limits.

        Returns ``None`` when admitted (the tenant's inflight count now
        includes the ``n`` requests — pair with :meth:`release`), or a
        ``rate_limited`` :class:`ErrorInfo` when the token bucket or the
        ``max_inflight`` cap rejected the work.  Like the global
        :class:`~repro.obs.AdmissionController`, a batch larger than the
        whole cap is admitted while the tenant is idle, so it cannot starve.
        """
        with self._lock:
            state = self._state(tenant)
            config = state.config
            if (
                config.max_inflight is not None
                and state.inflight > 0
                and state.inflight + n > config.max_inflight
            ):
                error = self._rejection(
                    state,
                    n,
                    reason="inflight",
                    retry_after=self.retry_after,
                    message=(
                        f"tenant {config.name!r} is at its inflight cap: "
                        f"{state.inflight} of {config.max_inflight} in flight; "
                        f"retry after {self.retry_after:g}s"
                    ),
                )
            elif not state.bucket.try_acquire(n):
                hint = max(state.bucket.retry_after(n), self.retry_after)
                error = self._rejection(
                    state,
                    n,
                    reason="rate",
                    retry_after=hint,
                    message=(
                        f"tenant {config.name!r} exceeded its rate limit "
                        f"({config.rate:g}/s, burst {state.bucket.burst:g}); "
                        f"retry after {hint:g}s"
                    ),
                )
            else:
                state.inflight += n
                error = None
        if error is None:
            state.m_admitted.inc(n)
            state.m_inflight.inc(n)
        else:
            state.m_rate_limited.inc(n)
        return error

    def release(self, tenant: str | None, n: int = 1) -> None:
        """Return ``n`` admitted requests once they finished."""
        with self._lock:
            state = self._state(tenant)
            state.inflight = max(0, state.inflight - n)
        state.m_inflight.dec(n)

    def observe_latency(self, tenant: str | None, seconds: float, n: int = 1) -> None:
        """Record the front-door latency each of ``n`` requests experienced."""
        state = self._state(tenant)
        for _ in range(n):
            state.m_latency.observe(seconds)

    def _rejection(
        self,
        state: _TenantState,
        n: int,
        *,
        reason: str,
        retry_after: float,
        message: str,
    ) -> ErrorInfo:
        config = state.config
        return ErrorInfo(
            code="rate_limited",
            message=message,
            retry_after=retry_after,
            details={
                "tenant": config.name,
                "reason": reason,
                "requests": n,
                "rate": config.rate,
                "burst": state.bucket.burst,
                "max_inflight": config.max_inflight,
                "inflight": state.inflight,
            },
        )

    # ------------------------------------------------------------------- stats
    def snapshot(self, tenant: str | None = None) -> dict[str, Any]:
        """Per-tenant runtime state for stats responses.

        With ``tenant`` the snapshot is restricted to that (resolved)
        tenant; otherwise every tenant that has runtime state — plus the
        configured-but-idle ones — is reported.
        """
        with self._lock:
            if tenant:
                names = [self.resolve(tenant)]
            else:
                names = sorted(set(self.tenants.names()) | set(self._states))
            rows = {}
            for name in names:
                state = self._states.get(name)
                config = state.config if state is not None else self.tenants.resolve(name)
                row: dict[str, Any] = {
                    "config": config.to_payload(),
                    "inflight": state.inflight if state is not None else 0,
                    "admitted": int(state.m_admitted.value) if state is not None else 0,
                    "rate_limited": (
                        int(state.m_rate_limited.value) if state is not None else 0
                    ),
                }
                if state is not None and state.bucket.rate is not None:
                    row["tokens"] = round(state.bucket.tokens, 6)
                rows[name] = row
        return {"tenants": rows}


__all__ = ["TenancyController"]
