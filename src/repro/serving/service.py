"""JSON service front-end over the execution engine.

Speaks newline-delimited JSON: one request object per line, one response
object per line, in request order.  A blank line (or EOF) closes the current
batch and executes it through the engine, so piping a file of requests gets
full micro-batching while an interactive session can flush at will:

.. code-block:: console

   $ printf '%s\n' \
       '{"id": 1, "type": "transformation", "value": "19990415",
         "examples": [["20000101", "2000-01-01"]]}' \
     | python -m repro serve

Request schema (``type`` selects the task):

* ``imputation`` — ``rows`` (list of flat objects), ``target`` (object),
  ``attribute``; optional ``table_name``, ``primary_key`` (defaults to the
  first column).
* ``transformation`` — ``value``, ``examples`` (list of ``[input, output]``).
* ``extraction`` — ``document``, ``attribute``.
* ``table_qa`` — ``rows``, ``question``; optional ``table_name``,
  ``primary_key``.

Responses carry ``{"id", "ok", "answer", "raw", "tokens", "calls"}`` on
success and ``{"id", "ok": false, "error"}`` on a malformed request; a bad
request never aborts the batch.

``serve_tcp`` exposes the same line protocol on a socket; each connection's
batches run on a worker thread so the accept loop stays responsive.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from dataclasses import dataclass
from typing import Any, IO, Iterable

from ..core.config import UniDMConfig
from ..core.pipeline import UniDM
from ..core.tasks.base import Task
from ..core.tasks.imputation import ImputationTask
from ..core.tasks.information_extraction import InformationExtractionTask
from ..core.tasks.table_qa import TableQATask
from ..core.tasks.transformation import TransformationTask
from ..datalake.schema import Attribute
from ..datalake.table import Record, Table
from ..llm.base import LanguageModel
from ..llm.cache import CachedLLM
from ..llm.simulated import SimulatedLLM
from .cache import PersistentCache
from .engine import EngineConfig, ExecutionEngine


@dataclass(frozen=True)
class InvalidRequest:
    """Out-of-band marker for a line that never parsed into a request object.

    Kept separate from request dicts so client payloads can carry any keys
    they like without colliding with the error channel.
    """

    error: str


def _build_table(request: dict, default_name: str) -> Table:
    rows = request.get("rows")
    if not isinstance(rows, list) or not rows or not isinstance(rows[0], dict):
        raise ValueError("'rows' must be a non-empty list of objects")
    names = list(rows[0].keys())
    primary_key = request.get("primary_key", names[0])
    if primary_key not in names:
        raise ValueError(f"primary_key {primary_key!r} not among columns {names}")
    schema = [Attribute(name, primary_key=(name == primary_key)) for name in names]
    return Table(str(request.get("table_name", default_name)), schema, rows)


def build_task(request: dict) -> Task:
    """Translate one JSON request object into a pipeline task."""
    task_type = request.get("type")
    if task_type == "imputation":
        table = _build_table(request, "request")
        target = request.get("target")
        if not isinstance(target, dict):
            raise ValueError("'target' must be an object of known attribute values")
        attribute = request.get("attribute")
        if not attribute:
            raise ValueError("'attribute' is required")
        record = Record(table.schema, {k: v for k, v in target.items() if k in table.schema})
        return ImputationTask(table, record, str(attribute))
    if task_type == "transformation":
        examples = request.get("examples")
        if not isinstance(examples, list) or not examples:
            raise ValueError("'examples' must be a non-empty list of [input, output] pairs")
        pairs = [(str(pair[0]), str(pair[1])) for pair in examples]
        return TransformationTask(str(request.get("value", "")), pairs)
    if task_type == "extraction":
        return InformationExtractionTask(
            str(request.get("document", "")), str(request.get("attribute", ""))
        )
    if task_type == "table_qa":
        table = _build_table(request, "request")
        return TableQATask(table, str(request.get("question", "")))
    raise ValueError(
        f"unknown task type {task_type!r}; expected one of "
        "imputation, transformation, extraction, table_qa"
    )


class ServingService:
    """Answers JSON task requests through the execution engine."""

    def __init__(self, pipeline: UniDM, engine: ExecutionEngine | None = None):
        self.pipeline = pipeline
        self.engine = engine or ExecutionEngine()
        self.requests_served = 0
        # One batch at a time: the pipeline's rng and the engine's report are
        # shared state, so concurrent TCP connections take turns here (their
        # requests still micro-batch *within* each flush).
        self._batch_lock = threading.Lock()

    def handle_batch(self, requests: Iterable[dict]) -> list[dict]:
        """Execute a batch of request objects; responses keep request order."""
        with self._batch_lock:
            return self._handle_batch_locked(list(requests))

    def _handle_batch_locked(self, requests: list) -> list[dict]:
        tasks: list[Task] = []
        slots: list[tuple[int, Any]] = []  # (request position, request id)
        responses: list[dict | None] = [None] * len(requests)
        for position, request in enumerate(requests):
            request_id = request.get("id") if isinstance(request, dict) else None
            try:
                if isinstance(request, InvalidRequest):
                    raise ValueError(request.error)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
                tasks.append(build_task(request))
                slots.append((position, request_id))
            except (ValueError, KeyError, TypeError, IndexError) as exc:
                responses[position] = {"id": request_id, "ok": False, "error": str(exc)}
        if tasks:
            results = self.pipeline.run_many(tasks, engine=self.engine)
            for (position, request_id), result in zip(slots, results):
                responses[position] = {
                    "id": request_id,
                    "ok": True,
                    "answer": result.value,
                    "raw": result.raw_answer,
                    "tokens": result.total_tokens,
                    "calls": result.usage.calls if result.usage else 0,
                }
        self.requests_served += len(requests)
        return [response for response in responses if response is not None]

    def handle_request(self, request: dict) -> dict:
        return self.handle_batch([request])[0]

    # ----------------------------------------------------------------- fronts
    def serve_stream(self, in_stream: IO[str], out_stream: IO[str]) -> int:
        """Blocking request loop over text streams (stdin/stdout by default).

        Blank lines flush the accumulated batch through the engine; EOF
        flushes and returns the number of requests served.
        """
        batch: list[dict] = []

        def flush() -> None:
            if not batch:
                return
            for response in self.handle_batch(batch):
                out_stream.write(json.dumps(response, ensure_ascii=False) + "\n")
            out_stream.flush()
            batch.clear()

        for line in in_stream:
            line = line.strip()
            if not line:
                flush()
                continue
            try:
                batch.append(json.loads(line))
            except json.JSONDecodeError as exc:
                batch.append(InvalidRequest(f"bad JSON: {exc}"))
        flush()
        return self.requests_served

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 8765) -> None:
        """Socket server speaking the same line protocol, one batch per blank line."""
        server = await self.start_tcp(host, port)
        async with server:
            await server.serve_forever()

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Bind the socket server and return it without blocking (for embedding)."""
        loop = asyncio.get_running_loop()

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
            batch: list[dict] = []

            async def flush() -> None:
                if not batch:
                    return
                # handle_batch spins its own event loop (engine.run), so it
                # must not run on this loop's thread.
                responses = await loop.run_in_executor(None, self.handle_batch, list(batch))
                batch.clear()
                for response in responses:
                    writer.write((json.dumps(response, ensure_ascii=False) + "\n").encode())
                await writer.drain()

            try:
                while True:
                    line = await reader.readline()
                    if not line:
                        break
                    text = line.decode().strip()
                    if not text:
                        await flush()
                        continue
                    try:
                        batch.append(json.loads(text))
                    except json.JSONDecodeError as exc:
                        batch.append(InvalidRequest(f"bad JSON: {exc}"))
                await flush()
            finally:
                writer.close()

        return await asyncio.start_server(handle, host, port)


def build_service(
    model: str | None = None,
    seed: int = 0,
    cache_dir: str | None = None,
    batch_size: int = 8,
    workers: int = 8,
    knowledge=None,
    llm: LanguageModel | None = None,
) -> ServingService:
    """Assemble the default serving stack: simulated LLM → cache → engine."""
    if llm is None:
        llm = SimulatedLLM(**({"profile": model} if model else {}), knowledge=knowledge, seed=seed)
    persistent = PersistentCache(cache_dir) if cache_dir else None
    cached = CachedLLM(llm, persistent=persistent)
    pipeline = UniDM(cached, UniDMConfig.full(seed=seed))
    engine = ExecutionEngine(EngineConfig(max_batch_size=batch_size, workers=workers))
    return ServingService(pipeline, engine)


def main_stdin(service: ServingService) -> int:  # pragma: no cover - thin wrapper
    service.serve_stream(sys.stdin, sys.stdout)
    return 0
