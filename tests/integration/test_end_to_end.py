"""End-to-end integration tests: the pipeline beats baselines on real benchmarks.

These run on reduced benchmark sizes so the whole suite stays fast, but they
exercise the complete stack — dataset generation, retrieval prompts, parsing,
cloze construction, simulated answering and metric computation.
"""

from repro.core import UniDMConfig
from repro.eval import evaluate
from repro.experiments.common import make_fm, make_unidm


def test_unidm_beats_random_context_on_restaurant(restaurant_dataset):
    full = evaluate(make_unidm(restaurant_dataset, seed=2), restaurant_dataset)
    random_ctx = evaluate(
        make_unidm(
            restaurant_dataset, UniDMConfig.baseline_prompting(seed=2), seed=2,
            name="UniDM (all off)",
        ),
        restaurant_dataset,
    )
    assert full.score >= random_ctx.score
    assert full.score >= 0.75


def test_unidm_competitive_with_fm_on_imputation(restaurant_dataset):
    unidm = evaluate(make_unidm(restaurant_dataset, seed=2), restaurant_dataset)
    fm = evaluate(make_fm(restaurant_dataset, "random", seed=1), restaurant_dataset)
    assert unidm.score >= fm.score - 0.05


def test_unidm_error_detection_f1_is_high(hospital_dataset):
    result = evaluate(make_unidm(hospital_dataset, seed=2), hospital_dataset, max_tasks=60)
    assert result.metric_name == "f1"
    assert result.score >= 0.7


def test_unidm_solves_transformation_benchmarks(stackoverflow_dataset):
    result = evaluate(make_unidm(stackoverflow_dataset, seed=2), stackoverflow_dataset)
    assert result.score >= 0.5


def test_unidm_entity_resolution_reasonable(beer_dataset):
    result = evaluate(make_unidm(beer_dataset, seed=2), beer_dataset, max_tasks=40)
    assert result.score >= 0.6


def test_model_capability_affects_accuracy(restaurant_dataset):
    strong = evaluate(
        make_unidm(restaurant_dataset, model="gpt-4-turbo", seed=2), restaurant_dataset
    )
    weak = evaluate(
        make_unidm(restaurant_dataset, model="gpt-j-6b", seed=2), restaurant_dataset
    )
    assert strong.score > weak.score


def test_results_reproducible_for_fixed_seed(buy_dataset):
    first = evaluate(make_unidm(buy_dataset, seed=5), buy_dataset, max_tasks=8)
    second = evaluate(make_unidm(buy_dataset, seed=5), buy_dataset, max_tasks=8)
    assert first.predictions == second.predictions
