"""Error detection task adapter.

``F_T`` predicts whether ``record[attribute]`` is a valid value (Section 3).
The target query takes the form ``"attribute: value?"`` (Section 4.5), and the
retrieved context supplies examples of how the attribute's domain normally
looks, which is what lets the LLM judge distributional outliers.
"""

from __future__ import annotations

from ...datalake.table import Record, Table
from ..types import TaskType
from .base import Task, parse_yes_no


class ErrorDetectionTask(Task):
    """Decide whether ``record[attribute]`` contains an error (True = error)."""

    task_type = TaskType.ERROR_DETECTION

    def __init__(self, table: Table, record: Record, attribute: str):
        if attribute not in table.schema:
            raise KeyError(f"attribute {attribute!r} not in table {table.name!r}")
        self._table = table
        self._record = record
        self._attribute = attribute

    @property
    def record(self) -> Record:
        return self._record

    @property
    def attribute(self) -> str:
        return self._attribute

    @property
    def value(self) -> str:
        return str(self._record[self._attribute])

    def table(self) -> Table:
        return self._table

    def target_records(self) -> list[Record]:
        return [self._record]

    def target_attributes(self) -> list[str]:
        return [self._attribute]

    def query(self) -> str:
        return f"{self._attribute}: {self.value}?"

    def parse_answer(self, text: str) -> bool:
        """True when the LLM judges the value erroneous."""
        return parse_yes_no(text)
