"""Exploring a data lake: join discovery, TableQA and document extraction.

The appendix tasks show that the same unified pipeline generalises beyond
cell-level cleaning: it decides which columns of a lake join (Figure 4),
answers aggregate questions over a table (Figure 3), and populates a
structured view from semi-structured documents (Figure 6).  This script runs
one worked example of each, all three driven through the same
:class:`repro.api.Client` facade — one entry point, three task types.

Run with::

    python examples/lake_exploration.py
"""

from __future__ import annotations

from repro.api import Client
from repro.core import UniDMConfig
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.experiments.common import make_llm


def join_discovery() -> None:
    dataset = load_dataset("nextiajd", seed=0, n_pairs=12)
    client = Client.local(llm=make_llm(dataset, seed=2), config=UniDMConfig.full(seed=0))
    rows = []
    for task, truth in list(zip(dataset.tasks, dataset.ground_truth))[:8]:
        result = client.run_task(task)
        rows.append(
            {
                "candidate pair": task.query(),
                "predicted": "joinable" if result.value else "not joinable",
                "label": "joinable" if truth else "not joinable",
            }
        )
    print(format_table(rows, title="Join discovery over the lake's column pairs"))


def table_question_answering() -> None:
    dataset = load_dataset("wiki_table_questions", seed=0, n_tables=2)
    client = Client.local(
        llm=make_llm(dataset, seed=2),
        config=UniDMConfig.full(seed=0, candidate_sample_size=10),
    )
    rows = []
    for task, truth in list(zip(dataset.tasks, dataset.ground_truth))[:4]:
        result = client.run_task(task)
        rows.append({"question": task.question, "answer": result.value, "expected": truth})
    print(format_table(rows, title="Table question answering"))


def information_extraction() -> None:
    dataset = load_dataset("nba_players", seed=0, n_documents=6)
    client = Client.local(llm=make_llm(dataset, seed=2), config=UniDMConfig.full(seed=0))
    rows = []
    for task, truth in list(zip(dataset.tasks, dataset.ground_truth))[:8]:
        result = client.run_task(task)
        rows.append({"attribute": task.attribute, "extracted": result.value, "expected": truth})
    print(format_table(rows, title="Closed information extraction from player pages"))


def main() -> None:
    join_discovery()
    print()
    table_question_answering()
    print()
    information_extraction()


if __name__ == "__main__":
    main()
