"""Task adapters for every data manipulation task subsumed by the framework."""

from .base import Task, first_line, parse_yes_no, restrict_attributes
from .entity_resolution import EntityResolutionTask
from .error_detection import ErrorDetectionTask
from .imputation import ImputationTask
from .information_extraction import InformationExtractionTask, strip_markup
from .join_discovery import JoinDiscoveryTask
from .table_qa import TableQATask
from .transformation import SOURCE_ATTR, TRANSFORMED_ATTR, TransformationTask

__all__ = [
    "EntityResolutionTask",
    "ErrorDetectionTask",
    "ImputationTask",
    "InformationExtractionTask",
    "JoinDiscoveryTask",
    "SOURCE_ATTR",
    "TRANSFORMED_ATTR",
    "TableQATask",
    "Task",
    "TransformationTask",
    "first_line",
    "parse_yes_no",
    "restrict_attributes",
    "strip_markup",
]
