"""Unit tests for the serialize() helpers."""

from repro.core import (
    numbered_instances,
    record_pairs,
    serialize_record,
    serialize_records,
    serialize_rows,
)


def test_record_pairs_put_primary_key_first(city_table):
    pairs = record_pairs(city_table[0], ["country", "city"])
    assert pairs[0][0] == "city"


def test_record_pairs_skip_missing_by_default(city_table):
    copenhagen = city_table[5]
    names = [attr for attr, _ in record_pairs(copenhagen)]
    assert "timezone" not in names
    with_missing = record_pairs(copenhagen, include_missing=True)
    assert ("timezone", "?") in with_missing


def test_serialize_record_format(city_table):
    text = serialize_record(city_table[0], ["city", "country"])
    assert text == "city: Florence, country: Italy"


def test_serialize_records_one_line_per_record(city_table):
    text = serialize_records(city_table.records[:3], ["city", "country"])
    assert len(text.splitlines()) == 3


def test_serialize_rows():
    rows = [[("a", "1"), ("b", "2")], [], [("c", "3")]]
    text = serialize_rows(rows)
    assert text.splitlines() == ["a: 1, b: 2", "c: 3"]


def test_numbered_instances_start_at_one(city_table):
    text = numbered_instances(city_table.records[:2], ["city"])
    assert text.splitlines()[0].startswith("1) ")
    assert text.splitlines()[1].startswith("2) ")
