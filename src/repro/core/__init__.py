"""UniDM core: the unified framework, pipeline steps and task adapters."""

from .cloze import TargetPrompt, TargetPromptBuilder
from .config import UniDMConfig
from .parsing import ContextParser, ParsedContext
from .pipeline import UniDM, solve
from .plan import LLMRequest, Plan, drive
from .retrieval import ContextRetriever, RetrievedContext
from .serialization import (
    numbered_instances,
    record_pairs,
    serialize_record,
    serialize_records,
    serialize_rows,
)
from .tasks import (
    EntityResolutionTask,
    ErrorDetectionTask,
    ImputationTask,
    InformationExtractionTask,
    JoinDiscoveryTask,
    TableQATask,
    Task,
    TransformationTask,
)
from .types import ManipulationResult, PromptTrace, TaskType, TASK_DESCRIPTIONS

__all__ = [
    "ContextParser",
    "ContextRetriever",
    "EntityResolutionTask",
    "ErrorDetectionTask",
    "ImputationTask",
    "InformationExtractionTask",
    "JoinDiscoveryTask",
    "LLMRequest",
    "ManipulationResult",
    "Plan",
    "drive",
    "ParsedContext",
    "PromptTrace",
    "RetrievedContext",
    "TASK_DESCRIPTIONS",
    "TableQATask",
    "TargetPrompt",
    "TargetPromptBuilder",
    "Task",
    "TaskType",
    "TransformationTask",
    "UniDM",
    "UniDMConfig",
    "numbered_instances",
    "record_pairs",
    "serialize_record",
    "serialize_records",
    "serialize_rows",
    "solve",
]
