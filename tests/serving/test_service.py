"""Tests for the JSON service front-end (request building, streams, TCP)."""

import asyncio
import io
import json

import pytest

from repro.core import (
    EntityResolutionTask,
    ErrorDetectionTask,
    ImputationTask,
    InformationExtractionTask,
    JoinDiscoveryTask,
    TableQATask,
    TransformationTask,
)
from repro.api import spec_from_request
from repro.serving import build_service


def from_request(request):
    """The registry path that replaced the deprecated ``build_task`` shim."""
    return spec_from_request(request).to_task()


# ------------------------------------------------------------- request parsing
def test_build_transformation_task():
    task = from_request(
        {"type": "transformation", "value": "a", "examples": [["x", "y"]]}
    )
    assert isinstance(task, TransformationTask)


def test_build_imputation_task():
    task = from_request(
        {
            "type": "imputation",
            "rows": [
                {"city": "Florence", "country": "Italy"},
                {"city": "Madrid", "country": "Spain"},
            ],
            "target": {"city": "Milan"},
            "attribute": "country",
        }
    )
    assert isinstance(task, ImputationTask)
    assert task.query() == "Milan, country"


def test_build_transformation_task():
    task = from_request(
        {"type": "transformation", "value": "a", "examples": [["x", "y"]]}
    )
    assert isinstance(task, TransformationTask)


def test_build_extraction_and_table_qa_tasks():
    assert isinstance(
        from_request({"type": "extraction", "document": "doc", "attribute": "name"}),
        InformationExtractionTask,
    )
    assert isinstance(
        from_request(
            {
                "type": "table_qa",
                "rows": [{"player": "Jordan", "team": "Bulls"}],
                "question": "which team?",
            }
        ),
        TableQATask,
    )


def test_build_entity_resolution_error_detection_and_join_tasks():
    # The three task types the PR 1 service rejected as "unknown".
    assert isinstance(
        from_request(
            {"type": "entity_resolution", "record_a": {"name": "a"}, "record_b": {"name": "b"}}
        ),
        EntityResolutionTask,
    )
    assert isinstance(
        from_request(
            {
                "type": "error_detection",
                "rows": [{"city": "Rome", "zip": "00100"}],
                "target": {"city": "Rome", "zip": "xx"},
                "attribute": "zip",
            }
        ),
        ErrorDetectionTask,
    )
    assert isinstance(
        from_request(
            {
                "type": "join_discovery",
                "table_a": {"name": "rank", "rows": [{"abrv": "GER"}]},
                "column_a": "abrv",
                "table_b": {"name": "geo", "rows": [{"iso": "GER"}]},
                "column_b": "iso",
            }
        ),
        JoinDiscoveryTask,
    )


@pytest.mark.parametrize(
    "request_obj",
    [
        {"type": "unknown"},
        {"type": "imputation", "rows": [], "target": {}, "attribute": "x"},
        {"type": "imputation", "rows": [{"a": 1}], "target": "no", "attribute": "a"},
        {"type": "imputation", "rows": [{"a": 1}], "target": {"a": 1}},
        {"type": "imputation", "rows": [{"a": 1}], "target": {}, "attribute": "a", "primary_key": "z"},
        {"type": "transformation", "value": "a", "examples": []},
        # Short/ragged example pairs used to escape as IndexError mid-build.
        {"type": "transformation", "value": "a", "examples": [["x"]]},
        {"type": "entity_resolution", "record_a": {}, "record_b": {"a": 1}},
        {"type": "error_detection", "rows": [{"a": 1}], "target": {}, "attribute": "a"},
        {"type": "join_discovery", "table_a": {"rows": []}, "column_a": "a",
         "table_b": {"rows": [{"b": 1}]}, "column_b": "b"},
    ],
)
def test_build_task_rejects_malformed_requests(request_obj):
    with pytest.raises((ValueError, KeyError)):
        from_request(request_obj)


def test_pipeline_spec_refuses_to_build_a_single_task():
    # A pipeline is a plan of tasks; the service routes it to the flow
    # executor instead of the per-task path.
    with pytest.raises(ValueError):
        from_request(
            {
                "type": "pipeline",
                "rows": [{"city": "Rome", "country": None}],
                "stages": [{"op": "impute", "column": "country"}],
            }
        )


# ------------------------------------------------------------------- batches
@pytest.fixture
def service(tmp_path):
    return build_service(seed=0, cache_dir=str(tmp_path / "cache"), batch_size=4, workers=4)


def test_handle_batch_mixes_good_and_bad_requests(service):
    responses = service.handle_batch(
        [
            {
                "id": "t1",
                "type": "transformation",
                "value": "19990415",
                "examples": [["20000101", "2000-01-01"], ["20101231", "2010-12-31"]],
            },
            {"id": "bad", "type": "nope"},
            {"id": "t2", "type": "extraction", "document": "Kevin Durant plays basketball.", "attribute": "player"},
        ]
    )
    assert [r["id"] for r in responses] == ["t1", "bad", "t2"]
    assert responses[0]["ok"] and responses[0]["answer"] == "1999-04-15"
    assert responses[0]["tokens"] > 0 and responses[0]["calls"] > 0
    assert not responses[1]["ok"] and "nope" in responses[1]["error"]
    assert responses[2]["ok"]
    assert service.requests_served == 3


def test_underscore_keys_in_requests_are_harmless(service):
    # Client payloads may carry arbitrary extra keys; the bad-JSON marker is
    # out-of-band and must not collide with them.
    response = service.handle_request(
        {
            "id": 9,
            "type": "transformation",
            "value": "x",
            "examples": [["a", "A"]],
            "_invalid": "just a client field",
        }
    )
    assert response["ok"]


def test_concurrent_batches_are_serialized(service):
    from concurrent.futures import ThreadPoolExecutor

    request = {"type": "transformation", "value": "x", "examples": [["a", "A"]]}
    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(service.handle_batch, [[request]] * 8))
    assert all(batch[0]["ok"] for batch in outcomes)
    assert service.requests_served == 8


def test_handle_request_single(service):
    response = service.handle_request(
        {"type": "transformation", "value": "abc", "examples": [["a", "A"], ["b", "B"]]}
    )
    assert response["ok"]


def test_serve_stream_flushes_on_blank_line_and_eof(service):
    lines = [
        json.dumps({"id": 1, "type": "transformation", "value": "1", "examples": [["1", "one"]]}),
        "",
        "not json at all {",
        json.dumps({"id": 2, "type": "extraction", "document": "d", "attribute": "a"}),
    ]
    out = io.StringIO()
    served = service.serve_stream(io.StringIO("\n".join(lines) + "\n"), out)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert served == 3
    assert [r.get("id") for r in responses] == [1, None, 2]
    assert responses[0]["ok"]
    assert not responses[1]["ok"] and "bad JSON" in responses[1]["error"]
    assert responses[2]["ok"]


def test_serve_stream_reuses_cache_across_batches(service):
    request = json.dumps(
        {"id": 1, "type": "transformation", "value": "x", "examples": [["a", "A"]]}
    )
    stream = "\n".join([request, "", request]) + "\n"
    out = io.StringIO()
    service.serve_stream(io.StringIO(stream), out)
    assert service.pipeline.llm.hits > 0  # second batch served from cache


# ----------------------------------------------------------------------- tcp
def test_tcp_round_trip(service):
    async def scenario():
        server = await service.start_tcp("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payload = [
                json.dumps({"id": 1, "type": "transformation", "value": "7", "examples": [["1", "one"]]}),
                json.dumps({"id": 2, "type": "bogus"}),
                "",  # flush the batch
            ]
            writer.write(("\n".join(payload) + "\n").encode())
            await writer.drain()
            first = json.loads(await asyncio.wait_for(reader.readline(), 30))
            second = json.loads(await asyncio.wait_for(reader.readline(), 30))
            writer.close()
            await writer.wait_closed()
            return first, second

    first, second = asyncio.run(scenario())
    assert first["id"] == 1 and first["ok"]
    assert second["id"] == 2 and not second["ok"]


# ------------------------------------------------------- protocol v2 / coverage
def test_all_seven_task_types_served_over_the_wire(service):
    requests = [
        {"id": "imp", "type": "imputation",
         "rows": [{"city": "Florence", "country": "Italy"}],
         "target": {"city": "Milan"}, "attribute": "country"},
        {"id": "tra", "type": "transformation", "value": "a", "examples": [["x", "X"]]},
        {"id": "ext", "type": "extraction", "document": "doc", "attribute": "name"},
        {"id": "tqa", "type": "table_qa", "rows": [{"p": "Jordan", "t": "Bulls"}],
         "question": "which team?"},
        {"id": "er", "type": "entity_resolution",
         "record_a": {"name": "iphone"}, "record_b": {"name": "iPhone"}},
        {"id": "ed", "type": "error_detection", "rows": [{"a": "1", "b": "2"}],
         "target": {"a": "1", "b": "zz"}, "attribute": "b"},
        {"id": "jd", "type": "join_discovery",
         "table_a": {"name": "t1", "rows": [{"abrv": "GER"}]}, "column_a": "abrv",
         "table_b": {"name": "t2", "rows": [{"iso": "GER"}]}, "column_b": "iso"},
    ]
    responses = service.handle_batch(requests)
    assert [r["id"] for r in responses] == ["imp", "tra", "ext", "tqa", "er", "ed", "jd"]
    assert all(r["ok"] for r in responses), responses


def test_v2_envelope_success_and_error_shapes(service):
    ok, bad = service.handle_batch(
        [
            {"v": 2, "id": 1,
             "task": {"type": "transformation", "value": "a", "examples": [["x", "X"]]}},
            {"v": 2, "id": 2, "task": {"type": "transformation", "value": "a",
                                       "examples": [["x"]]}},
        ]
    )
    assert ok["v"] == 2 and ok["ok"] and ok["id"] == 1
    assert set(ok["result"]) == {"answer", "raw", "task_type", "tokens", "calls"}
    assert ok["result"]["task_type"] == "data transformation"
    assert bad["v"] == 2 and not bad["ok"]
    assert bad["error"]["code"] == "invalid_request"
    assert bad["error"]["field"] == "examples"


def test_v2_requires_task_object_and_known_version(service):
    missing_task, bad_version = service.handle_batch(
        [{"v": 2, "id": 1}, {"v": 3, "id": 2, "task": {"type": "extraction"}}]
    )
    assert not missing_task["ok"] and missing_task["error"]["code"] == "protocol_error"
    assert not bad_version["ok"] and bad_version["error"]["code"] == "protocol_error"
    assert "version" in bad_version["error"]["message"]


def test_v1_and_v2_responses_mirror_their_request_generation(service):
    v1, v2 = service.handle_batch(
        [
            {"id": "old", "type": "transformation", "value": "a", "examples": [["x", "X"]]},
            {"v": 2, "id": "new",
             "task": {"type": "transformation", "value": "a", "examples": [["x", "X"]]}},
        ]
    )
    assert set(v1) == {"id", "ok", "answer", "raw", "tokens", "calls"}
    assert set(v2) == {"v", "id", "ok", "result"}
    assert v1["answer"] == v2["result"]["answer"]


def test_v1_error_stays_a_bare_string(service):
    response = service.handle_request({"id": 1, "type": "transformation",
                                       "value": "a", "examples": [["x"]]})
    assert response["ok"] is False
    assert isinstance(response["error"], str)
    assert "examples" in response["error"]
