"""The batched async execution engine.

``ExecutionEngine.run(pipeline, tasks)`` executes many task instances
concurrently: each task becomes a coroutine walking the pipeline's plan stages
(meta-retrieval → instance-retrieval → parsing → answer, see
:mod:`repro.serving.stages`), a worker semaphore bounds how many are in flight
(backpressure), and every LLM call funnels through the
:class:`~repro.serving.batcher.MicroBatcher`, which coalesces same-kind
prompts across tasks into batched calls.

Determinism contract: with ``ordered_retrieval`` (the default), the engine
issues exactly the same prompts as a sequential ``run_many`` for the same
pipeline seed, so running against a warmed (persistent) cache yields
bit-identical results at any batch size / worker count.  A *cold* simulated
model is itself order-sensitive (its noise stream advances per call), so cold
concurrent runs may differ from cold sequential runs — warm the cache first
when reproducibility across execution modes matters.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterable

from ..obs.export import get_default_exemplars
from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.span import span
from ..obs.trace import Trace
from .batcher import ROUTE_KEY, BatcherStats, MicroBatcher
from .stages import OrderedGate, execute_task

if TYPE_CHECKING:  # pragma: no cover
    from ..core.pipeline import UniDM
    from ..core.tasks.base import Task
    from ..core.types import ManipulationResult


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine."""

    #: Maximum number of same-kind prompts coalesced into one LLM call.
    max_batch_size: int = 8
    #: Upper bound (seconds) a pending prompt waits for batch-mates.
    max_wait: float = 0.002
    #: Maximum number of tasks in flight at once (backpressure).
    workers: int = 8
    #: Threads executing batched LLM calls (towards the backend).
    llm_threads: int = 1
    #: Serialize the rng-consuming retrieval stage in task order so results
    #: match sequential execution bit-for-bit (see module docstring).
    ordered_retrieval: bool = True

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.llm_threads < 1:
            raise ValueError("llm_threads must be positive")

    def with_updates(self, **changes) -> "EngineConfig":
        return replace(self, **changes)


@dataclass
class EngineReport:
    """What happened during one ``run``: timing plus batching statistics."""

    n_tasks: int = 0
    elapsed: float = 0.0
    stats: BatcherStats | None = None

    @property
    def tasks_per_second(self) -> float:
        return self.n_tasks / self.elapsed if self.elapsed else 0.0


class ExecutionEngine:
    """Executes iterables of tasks through a UniDM pipeline, micro-batched."""

    def __init__(
        self,
        config: EngineConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config or EngineConfig()
        self.last_report = EngineReport()
        self._metrics = metrics or get_default_registry()

    @classmethod
    def sequential(cls) -> "ExecutionEngine":
        """An engine equivalent to running ``pipeline.run`` in a loop.

        One worker and batch size 1 reproduce the sequential call order
        exactly, which is what ``UniDM.run_many`` uses by default.
        """
        return cls(EngineConfig(max_batch_size=1, workers=1))

    @classmethod
    def concurrent(
        cls, batch_size: int = 8, workers: int = 8, **overrides
    ) -> "ExecutionEngine":
        return cls(EngineConfig(max_batch_size=batch_size, workers=workers, **overrides))

    # ------------------------------------------------------------------ running
    def run(
        self, pipeline: "UniDM", tasks: Iterable["Task"]
    ) -> "list[ManipulationResult]":
        """Execute ``tasks`` and return their results in input order."""
        task_list = list(tasks)
        if not task_list:
            self.last_report = EngineReport()
            return []
        started = time.perf_counter()
        # asyncio.run copies the current context into the main task, so the
        # engine.run span (and any wire-carried trace above it) parents every
        # per-task span inside the loop.
        with span("engine.run", tasks=len(task_list)):
            results = asyncio.run(self._run_async(pipeline, task_list))
        self.last_report.elapsed = time.perf_counter() - started
        self.last_report.n_tasks = len(task_list)
        return results

    async def _run_async(
        self, pipeline: "UniDM", tasks: "list[Task]"
    ) -> "list[ManipulationResult]":
        config = self.config
        executor = ThreadPoolExecutor(
            max_workers=config.llm_threads, thread_name_prefix="repro-llm"
        )
        batcher = MicroBatcher(
            pipeline.llm,
            max_batch_size=config.max_batch_size,
            max_wait=config.max_wait,
            executor=executor,
            metrics=self._metrics,
        )
        gate = OrderedGate() if config.ordered_retrieval else _OpenGate()
        semaphore = asyncio.Semaphore(config.workers)
        inflight = self._metrics.gauge("engine.inflight")
        per_kind: dict[str, tuple] = {}  # kind -> (tasks counter, latency hist)

        def kind_metrics(kind: str) -> tuple:
            handles = per_kind.get(kind)
            if handles is None:
                handles = (
                    self._metrics.counter(f"engine.tasks.{kind}"),
                    self._metrics.histogram(f"engine.task_latency.{kind}"),
                )
                per_kind[kind] = handles
            return handles

        async def bounded(index: int, task: "Task") -> "ManipulationResult":
            async with semaphore:
                kind = task.task_type.name.lower()
                tasks_counter, latency = kind_metrics(kind)
                inflight.inc()
                # Each asyncio task runs in its own context copy, so setting
                # the route key here scopes it to this task's prompts only —
                # the batcher reads it per submit() to build the route index
                # shard migration depends on.
                ROUTE_KEY.set(getattr(task, "route_key", None))
                started = time.perf_counter()
                try:
                    with span("engine.task", kind=kind, index=index):
                        return await execute_task(pipeline, task, index, batcher, gate)
                finally:
                    inflight.dec()
                    tasks_counter.inc()
                    latency.observe(time.perf_counter() - started)
                    get_default_exemplars().note(
                        f"engine.task_latency.{kind}", Trace.current_id()
                    )

        try:
            results = await asyncio.gather(
                *(bounded(index, task) for index, task in enumerate(tasks))
            )
        finally:
            executor.shutdown(wait=False)
            self.last_report = EngineReport(stats=batcher.stats)
        return list(results)


class _OpenGate:
    """No-op gate used when ordered retrieval is disabled."""

    async def acquire(self, index: int) -> None:
        return None

    def release(self, index: int) -> None:
        return None
