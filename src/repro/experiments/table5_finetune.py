"""Table 5 — lightweight fine-tuning on the Walmart-Amazon ER task.

Raw small models (GPT-J-6B, LLaMA2-7B) perform poorly zero-shot; after
simulated fine-tuning on the labelled training split they approach the 175B
model, with UniDM keeping a small edge over FM on the fine-tuned models.
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..eval import evaluate, format_table
from ..llm.finetune import FineTuner
from ..llm.profiles import get_profile
from .common import UniDMMethod, make_fm, make_unidm
from ..baselines.fm import FMMethod
from ..core.config import UniDMConfig

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "GPT-J-6B": {"FM": 17.6, "UniDM": 17.8},
    "GPT-J-6B (fine-tune)": {"FM": 84.2, "UniDM": 86.6},
    "LLaMA2-7B": {"UniDM": 40.6},
    "LLaMA2-7B (fine-tune)": {"UniDM": 89.4},
    "GPT-3-175B": {"FM": 87.0, "UniDM": 88.2},
}

#: (display label, model registry key, fine-tuned?, evaluate FM too?)
MODEL_ROWS = (
    ("GPT-J-6B", "gpt-j-6b", False, True),
    ("GPT-J-6B (fine-tune)", "gpt-j-6b", True, True),
    ("LLaMA2-7B", "llama2-7b", False, False),
    ("LLaMA2-7B (fine-tune)", "llama2-7b", True, False),
    ("GPT-3-175B", "gpt-3-175b", False, True),
)

DATASET = "walmart_amazon"


def _finetuned_llm(dataset, model: str, seed: int):
    tuner = FineTuner()
    llm, report = tuner.fit(
        get_profile(model),
        dataset.train_pairs,
        knowledge=dataset.knowledge,
        domain=dataset.extra.get("domain", ""),
        seed=seed,
    )
    return llm, report


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    dataset = load_dataset(DATASET, seed=seed)
    rows: list[dict] = []
    for label, model, finetuned, with_fm in MODEL_ROWS:
        if finetuned:
            llm_unidm, report = _finetuned_llm(dataset, model, seed + 2)
            llm_fm, _ = _finetuned_llm(dataset, model, seed + 1)
            unidm = UniDMMethod(llm=llm_unidm, config=UniDMConfig.full(seed=seed), name="UniDM")
            fm = FMMethod(llm_fm, context_mode="manual", er_examples=dataset.train_pairs, seed=seed)
            extra = {"threshold": report.threshold}
        else:
            unidm = make_unidm(dataset, model=model, seed=seed + 2)
            fm = make_fm(dataset, "manual", model=model, seed=seed + 1)
            extra = {}

        unidm_result = evaluate(unidm, dataset, max_tasks=max_tasks)
        row = {
            "model": label,
            "unidm_f1": unidm_result.score_percent,
            "unidm_paper": PAPER_RESULTS[label].get("UniDM", float("nan")),
        }
        if with_fm:
            fm_result = evaluate(fm, dataset, max_tasks=max_tasks)
            row["fm_f1"] = fm_result.score_percent
            row["fm_paper"] = PAPER_RESULTS[label].get("FM", float("nan"))
        else:
            row["fm_f1"] = float("nan")
            row["fm_paper"] = float("nan")
        row.update(extra)
        rows.append(row)
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["model", "fm_f1", "fm_paper", "unidm_f1", "unidm_paper"],
        title="Table 5 — Fine-tuning on Walmart-Amazon entity resolution (F1 %)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
