"""Unit tests for model profiles and the registry."""

import pytest

from repro.llm import MODEL_REGISTRY, ModelProfile, get_profile, list_models
from repro.llm.profiles import DEFAULT_MODEL


def test_registry_contains_paper_models():
    expected = {
        "gpt-3-175b", "gpt-4-turbo", "claude2", "llama2-7b", "llama2-70b",
        "qwen-7b", "gpt-j-6b",
    }
    assert expected <= set(MODEL_REGISTRY)
    assert DEFAULT_MODEL in MODEL_REGISTRY
    assert list_models() == sorted(MODEL_REGISTRY)


def test_get_profile_case_insensitive_and_unknown():
    assert get_profile("GPT-3-175B").name == "gpt-3-175b"
    with pytest.raises(KeyError):
        get_profile("not-a-model")


def test_capability_ordering_matches_paper():
    # Table 6 ordering: GPT-4 > GPT-3 > Claude2 / LLaMA2-70B > 7B models;
    # GPT-J-6B is the weakest (Table 5).
    caps = {name: profile.capability for name, profile in MODEL_REGISTRY.items()}
    assert caps["gpt-4-turbo"] > caps["gpt-3-175b"] > caps["claude2"]
    assert caps["claude2"] > caps["llama2-7b"]
    assert caps["llama2-70b"] > caps["llama2-7b"]
    assert caps["gpt-j-6b"] < caps["qwen-7b"]


def test_profile_validation():
    with pytest.raises(ValueError):
        ModelProfile(
            name="bad", display_name="bad", parameters_billion=1,
            capability=1.5, knowledge_recall=0.5, context_fidelity=0.5,
            calibration_noise=0.1,
        )
    with pytest.raises(ValueError):
        ModelProfile(
            name="bad", display_name="bad", parameters_billion=1,
            capability=0.5, knowledge_recall=0.5, context_fidelity=0.5,
            calibration_noise=-0.1,
        )


def test_familiarity_hierarchical_fallback():
    profile = get_profile("gpt-3-175b").with_updates(
        domain_familiarity={"products": 0.6}
    )
    assert profile.familiarity("products.software") == pytest.approx(0.6)
    assert profile.familiarity("products") == pytest.approx(0.6)
    assert profile.familiarity("geography") == 1.0
    assert profile.familiarity("") == 1.0


def test_competence_and_with_updates():
    profile = get_profile("gpt-j-6b")
    assert profile.competence("entity_resolution") == 0.0
    tuned = profile.with_updates(task_competence={"entity_resolution": 0.05})
    assert tuned.competence("entity_resolution") == pytest.approx(0.05)
    assert profile.competence("entity_resolution") == 0.0  # original untouched
