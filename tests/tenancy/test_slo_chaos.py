"""Chaos acceptance (PR 8): an abusive tenant pages; its neighbours don't.

Reuses the PR 7 flood harness: one tenant floods at ~20x its configured
rate alongside two well-behaved tenants.  With per-tenant SLOs configured,
the abuser's shed-budget objective must breach within one evaluation
interval of the flood, ``/readyz`` must answer 503 while the page alert
fires (and recover after the load stops), the well-behaved tenant's
objectives must never fire, and a ``/doctor`` bundle pulled mid-breach
must carry the firing alert, the rolling windows and thread stacks.
"""

import pathlib
import sys
import time

from repro.core import UniDM, UniDMConfig
from repro.llm import CachedLLM
from repro.obs import MetricsRegistry, serve_stats_in_thread
from repro.obs.diagnostics import build_bundle
from repro.obs.slo import SLOSpec
from repro.serving.service import ServingService

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from test_isolation import (  # noqa: E402
    ABUSER,
    SlowLLM,
    run_phase,
    tenant_registry,
)
from repro.api.protocol import decode_response, encode_request  # noqa: E402
from repro.cli.fetch import fetch_probe  # noqa: E402

#: Short windows so breach and recovery both happen within test time.
WINDOWS = ("2s",)


def make_service():
    registry = MetricsRegistry()
    pipeline = UniDM(CachedLLM(SlowLLM()), UniDMConfig.full(seed=0))
    slos = [
        SLOSpec(
            name="abuser-shed",
            kind="error_rate",
            tenant=ABUSER,
            budget=0.05,
            windows=WINDOWS,
            severity="page",
        ),
        SLOSpec(
            name="good-a-shed",
            kind="error_rate",
            tenant="good-a",
            budget=0.05,
            windows=WINDOWS,
            severity="page",
        ),
        SLOSpec(
            name="good-a-p99",
            kind="latency",
            tenant="good-a",
            threshold=0.5,
            percentile=0.99,
            windows=WINDOWS,
            severity="page",
        ),
    ]
    return ServingService(
        pipeline,
        metrics=registry,
        tenants=tenant_registry(),
        slos=slos,
        monitor_interval=0.25,
    )


def test_flood_pages_the_abuser_slo_and_flips_readiness():
    service = make_service()
    monitor = service.monitor

    def submit(spec, tenant):
        response = service.handle_request(
            encode_request(spec, request_id=0, tenant=tenant)
        )
        return decode_response(response)

    port = serve_stats_in_thread(
        service.stats_snapshot,
        "127.0.0.1",
        0,
        monitor=monitor,
        doctor_fn=lambda: build_bundle(
            snapshot_fn=service.stats_snapshot,
            monitor=monitor,
            config={"command": "chaos-test"},
        ),
    )
    assert port is not None

    # Baseline sample, then the flood, then one evaluation tick: the
    # abuser's objective must already be firing.
    monitor.tick()
    abuser_results = run_phase(submit, with_abuse=True)
    assert any(r.error is not None for r in abuser_results)
    monitor.tick()

    firing = {alert["slo"] for alert in monitor.engine.alerts()}
    assert "abuser-shed" in firing
    # The well-behaved tenant's objectives never fire.
    assert "good-a-shed" not in firing
    assert "good-a-p99" not in firing

    # Readiness gates on the page alert: 503 with the reason spelled out.
    status, payload = fetch_probe("127.0.0.1", port, "/readyz")
    assert status == 503
    assert any("abuser-shed" in reason for reason in payload["reasons"])

    # A diagnostic bundle pulled mid-breach carries the whole story.
    status, bundle = fetch_probe("127.0.0.1", port, "/doctor")
    assert status == 200
    assert "abuser-shed" in {alert["slo"] for alert in bundle["alerts"]}
    series = bundle["timeseries"]["series"]
    assert f"tenant.{ABUSER}.rate_limited" in series
    assert "Thread" in bundle["thread_stacks"]
    assert bundle["config"] == {"command": "chaos-test"}

    # After the flood stops, quiet ticks age the breach out of the window
    # and readiness recovers.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and monitor.engine.alerts():
        time.sleep(0.25)
        monitor.tick()
    assert monitor.engine.alerts() == []
    status, payload = fetch_probe("127.0.0.1", port, "/readyz")
    assert status == 200
    assert payload["ready"] is True

    # The breach/recovery lifecycle landed in the metrics.
    counters = service.stats_snapshot()["metrics"]["counters"]
    assert counters["slo.breaches"] >= 1
    assert counters["slo.recoveries"] >= 1
