"""Unit tests for the ablation driver."""

from repro.core import UniDMConfig
from repro.eval import (
    IMPUTATION_ABLATION_LADDER,
    TRANSFORMATION_ABLATION_LADDER,
    ablation_rows,
    run_ablation,
)
from repro.experiments.common import make_unidm


def test_ladders_match_paper_row_counts():
    assert len(IMPUTATION_ABLATION_LADDER) == 6
    assert len(TRANSFORMATION_ABLATION_LADDER) == 4
    # First row has everything off, last row is the full pipeline.
    first, last = IMPUTATION_ABLATION_LADDER[0], IMPUTATION_ABLATION_LADDER[-1]
    assert first.config == UniDMConfig.baseline_prompting()
    assert last.config == UniDMConfig.full()


def test_variant_flags_render_checkmarks():
    flags = IMPUTATION_ABLATION_LADDER[-1].flags()
    assert flags == {
        "instance_retrieval": "yes",
        "meta_retrieval": "yes",
        "target_prompt": "yes",
        "context_parsing": "yes",
    }
    assert IMPUTATION_ABLATION_LADDER[0].flags()["target_prompt"] == ""


def test_run_ablation_produces_one_row_per_variant(restaurant_dataset):
    ladder = IMPUTATION_ABLATION_LADDER[:2]
    results = run_ablation(
        restaurant_dataset,
        method_factory=lambda config: make_unidm(restaurant_dataset, config, seed=0),
        variants=ladder,
        max_tasks=4,
    )
    rows = ablation_rows(results)
    assert len(rows) == 2
    assert {"variant", "score", "metric"} <= set(rows[0])
    assert all(0 <= row["score"] <= 100 for row in rows)
