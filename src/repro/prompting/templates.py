"""Prompt templates for every step of the UniDM pipeline.

The paper drives the whole pipeline with five textual prompts (Section 4):

``p_rm``  meta-wise retrieval     — "Which attributes are helpful ...?"
``p_ri``  instance-wise retrieval — "Score the relevance (range from 0 to 3) ..."
``p_dp``  context data parsing    — "convert the items into a textual format ..."
``p_cq``  cloze construction      — "Write the claim as a cloze question."
``p_as``  answer prompt           — the generated cloze question itself.

This module holds the canonical template strings (kept as close as possible to
the paper's wording) plus the FM baseline templates of Narayan et al. that the
paper compares against.  Both the pipeline (which renders prompts) and the
simulated LLM (which parses them back) import from here, so the text format is
defined exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from string import Formatter
from typing import Any


@dataclass(frozen=True)
class PromptTemplate:
    """A named prompt template with ``{placeholder}`` slots.

    ``render`` refuses missing/extra fields so that a template change that
    breaks the pipeline fails loudly instead of producing a silently malformed
    prompt.
    """

    name: str
    template: str

    @property
    def fields(self) -> list[str]:
        return [
            field
            for _, field, _, _ in Formatter().parse(self.template)
            if field is not None
        ]

    def render(self, **values: Any) -> str:
        missing = [f for f in self.fields if f not in values]
        if missing:
            raise KeyError(f"prompt {self.name!r} missing fields: {missing}")
        extra = [k for k in values if k not in self.fields]
        if extra:
            raise KeyError(f"prompt {self.name!r} got unexpected fields: {extra}")
        return self.template.format(**values)


# ---------------------------------------------------------------------------
# UniDM templates (Section 4.2 - 4.4)
# ---------------------------------------------------------------------------

#: Meta-wise retrieval prompt ``p_rm`` — select helpful attributes.
META_RETRIEVAL = PromptTemplate(
    name="p_rm",
    template=(
        "The task is [{task}]. The target query is [{query}]. "
        "The candidate attributes are [{candidates}]. "
        "Which attributes are helpful for the task and the query?"
    ),
)

#: Instance-wise retrieval prompt ``p_ri`` — score candidate records 0-3.
INSTANCE_RETRIEVAL = PromptTemplate(
    name="p_ri",
    template=(
        "The task is [{task}]. The target query is [{query}]. "
        "Score the relevance (range from 0 to 3) of the given instances "
        "based on the task and the query:\n{instances}"
    ),
)

#: Context data parsing prompt ``p_dp`` — serialize pairs -> natural text.
DATA_PARSING = PromptTemplate(
    name="p_dp",
    template=(
        "Given the data, convert the items into a textual format that "
        "encompasses all relevant information in a logical order:\n[{serialized}]"
    ),
)

#: Cloze construction prompt ``p_cq`` — few-shot claim -> cloze question.
CLOZE_CONSTRUCTION = PromptTemplate(
    name="p_cq",
    template=(
        "Write the claim as a cloze question.\n"
        "{demonstrations}\n"
        "Claim: The task is {task_description} "
        "The context is [{context}]. The target query is [{query}].\n"
        "Cloze question:"
    ),
)

#: Marker used for the blank of a cloze question.
CLOZE_BLANK = "__"


@dataclass(frozen=True)
class ClozeDemonstration:
    """A (claim, cloze question) pair used as an in-context example in ``p_cq``."""

    task: str
    claim: str
    cloze: str

    def render(self) -> str:
        return f"Claim: {self.claim}\nCloze question: {self.cloze}\n"


#: Demonstration bank following Appendix A of the paper.  It mixes
#: task-specific examples (imputation, transformation, error detection, entity
#: resolution) with task-agnostic phrasing so that unseen tasks still receive a
#: sensible cloze formulation.
CLOZE_DEMONSTRATIONS: tuple[ClozeDemonstration, ...] = (
    ClozeDemonstration(
        task="data imputation",
        claim=(
            "The task is data imputation which produces the missing data with "
            "some value to retain most of the data. The context is Wenham, "
            "Marysville, and Westmont are cities in the United States, "
            "identified by the ISO3 code USA. The target is city:New Cassel, "
            "iso3:USA, country:?"
        ),
        cloze=(
            "Wenham, Marysville, and Westmont are cities in the United States, "
            "identified by the ISO3 code USA. New Cassel is the name of a city "
            "whose ISO3 country code is USA. New Cassel belongs to the country "
            f"{CLOZE_BLANK}."
        ),
    ),
    ClozeDemonstration(
        task="data transformation",
        claim=(
            "The task is data transformation which is the process of converting "
            "data from one format to another required format within a record. "
            "The context is data before transformation: 20000101 data after "
            "transformation: 2000-01-01. The target is 19990415:?"
        ),
        cloze=(
            "20000101 can be transformed to 2000-01-01, and 19990415 can be "
            f"transformed to {CLOZE_BLANK}."
        ),
    ),
    ClozeDemonstration(
        task="error detection",
        claim=(
            "The task is error detection which detect attribute error within a "
            "record in a data cleaning system. The context is the address of "
            "2505 u s highway 431 north is not an error, the county name of "
            "mxrshxll is an error. The target is whether there is an error in "
            "city:sheffxeld."
        ),
        cloze=(
            'The address "2505 U.S. Highway 431 North" has no error, whereas '
            'the county name "mxrshxll" contains an error. It is required to '
            'identify if there is an error in the city name "sheffxeld". '
            "Is there an error in the city name? Yes or No."
        ),
    ),
    ClozeDemonstration(
        task="entity resolution",
        claim=(
            "The task is entity resolution which is the process of predicting "
            "whether two records are referencing the same real-world thing. "
            "The context is A is the Punch! Home Design Architectural Series "
            "4000 v10, manufactured by Punch! Software, is priced at $199.99. "
            "B is The Punch Software 41100 Punch! Home Design Architectural "
            "Series 18, manufactured by Punch Software, is priced at $18.99. "
            "The target is are A and B the same?"
        ),
        cloze=(
            "Punch! Home Design Architectural Series 4000 v10, manufactured by "
            "Punch! Software, is priced at $199.99, whereas Punch Software "
            "41100 Punch! Home Design Architectural Series 18, also "
            "manufactured by Punch Software, is priced at $18.99. "
            "Are these two products the same? Yes or No."
        ),
    ),
    ClozeDemonstration(
        task="task agnostic",
        claim=(
            "The task is data discovery. The context is A city is a human "
            "settlement of a notable size, a smart city uses data to manage "
            "services. The target query is smart city?"
        ),
        cloze=(
            "The task is to discover data from the context. A city is a human "
            f"settlement of a notable size. A smart city is {CLOZE_BLANK}."
        ),
    ),
)


def render_demonstrations(
    demonstrations: tuple[ClozeDemonstration, ...] = CLOZE_DEMONSTRATIONS,
) -> str:
    """Concatenate the demonstration bank for inclusion in ``p_cq``."""
    return "\n".join(d.render() for d in demonstrations)


# ---------------------------------------------------------------------------
# FM baseline templates (Narayan et al., "Can foundation models wrangle your
# data?") — manual serialization + direct question, no parsing / cloze step.
# ---------------------------------------------------------------------------

#: One serialized demonstration row in FM style: ``attr: value. attr: value.``
FM_ROW_SEPARATOR = ". "

FM_IMPUTATION_QUESTION = PromptTemplate(
    name="fm_imputation",
    template="{serialized_row} What is the {attribute}?",
)

FM_ERROR_DETECTION_QUESTION = PromptTemplate(
    name="fm_error_detection",
    template="Is there an error in {attribute}: {value}? Yes or No.",
)

FM_ENTITY_RESOLUTION_QUESTION = PromptTemplate(
    name="fm_entity_resolution",
    template=(
        "Entity A is {entity_a}. Entity B is {entity_b}. "
        "Are Entity A and Entity B the same? Yes or No."
    ),
)

FM_TRANSFORMATION_QUESTION = PromptTemplate(
    name="fm_transformation",
    template="{examples} {source} to",
)

# ---------------------------------------------------------------------------
# Direct (naive) prompts used when target-prompt construction is disabled in
# ablations: task description + context + query concatenated without cloze.
# ---------------------------------------------------------------------------

DIRECT_ANSWER = PromptTemplate(
    name="direct_answer",
    template=(
        "The task is [{task}]. The context is [{context}]. "
        "The target query is [{query}]. Answer:"
    ),
)
