"""Bounded, thread-safe structured event log (JSONL) with trace sampling.

Completed spans (:mod:`repro.obs.span`) and control-plane incidents
(admission sheds, worker deaths, router requeues, persistent-cache
anomalies) all land here as flat JSON-able dicts.  Two sinks:

* a **ring buffer** (``collections.deque(maxlen=capacity)``) so a process
  can always answer "what just happened" without unbounded memory — old
  events are evicted, never blocked on;
* an optional **JSONL file sink** — one ``O_APPEND`` line per event, so
  several processes (e.g. spawned subprocess workers inheriting
  ``$REPRO_EVENTS_FILE``) can interleave into one file and a cross-process
  trace can be reassembled from it (``repro trace <id>``).

Sampling is **head-based and deterministic by trace id**: the keep/drop
verdict is a pure function of ``(trace_id, sample_rate)``, so every span of
a trace — in every process — gets the same verdict and trees never come
back half-sampled.  Events without a trace id (worker deaths, cache
anomalies) are always recorded; they are rare and load-bearing.

The process-default log is configured from the environment
(``REPRO_EVENTS_FILE`` / ``REPRO_EVENTS_SAMPLE`` / ``REPRO_EVENTS_CAPACITY``)
on first use; :func:`configure_default_event_log` replaces it explicitly and
can export the file path back into ``os.environ`` so spawned workers
inherit the sink.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from collections import deque
from typing import Any, IO, Iterable, Mapping

#: Environment knobs of the process-default event log.
ENV_EVENTS_FILE = "REPRO_EVENTS_FILE"
ENV_EVENTS_SAMPLE = "REPRO_EVENTS_SAMPLE"
ENV_EVENTS_CAPACITY = "REPRO_EVENTS_CAPACITY"
ENV_EVENTS_MAX_BYTES = "REPRO_EVENTS_MAX_BYTES"
ENV_EVENTS_KEEP = "REPRO_EVENTS_KEEP"

#: Default ring-buffer capacity (events kept in memory).
DEFAULT_CAPACITY = 4096

#: Default rotated files kept alongside the live sink (``<path>.1``..``.K``).
DEFAULT_ROTATED_KEEP = 3


def sample_decision(trace_id: str, rate: float) -> bool:
    """Deterministic keep/drop verdict for a trace id at ``rate``.

    Stable across processes and runs (CRC-32 of the id), so every span of a
    trace lands on the same side of the cut wherever it was produced.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    bucket = zlib.crc32(trace_id.encode("utf-8", "replace")) % 10_000
    return bucket < rate * 10_000


class EventLog:
    """Ring buffer + optional JSONL file sink for structured events.

    Parameters
    ----------
    capacity:
        Maximum events kept in memory; older events are evicted (the
        ``dropped`` counter says how many).
    path:
        Optional JSONL file appended to (one line per event); opened
        lazily on first emit.
    sample_rate:
        Fraction of traces whose events are kept (head-based, by trace id).
        Trace-less events are always kept.
    max_bytes:
        Size-based rotation bound for the file sink: once the live file
        reaches this many bytes it is rotated to ``<path>.1`` (older
        rotations shifting to ``.2`` … ``.keep``, the oldest deleted) and a
        fresh file is started — so a long-running ``serve`` never grows the
        event log unboundedly.  ``None`` (default) disables rotation.
    keep:
        Rotated files retained beyond the live one (``0`` = rotate by
        truncation, discarding history).
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: str | os.PathLike | None = None,
        sample_rate: float = 1.0,
        *,
        max_bytes: int | None = None,
        keep: int = DEFAULT_ROTATED_KEEP,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive (or None to disable)")
        if keep < 0:
            raise ValueError("keep must be non-negative")
        self.capacity = capacity
        self.path = os.fspath(path) if path is not None else None
        self.sample_rate = sample_rate
        self.max_bytes = max_bytes
        self.keep = keep
        self.rotations = 0
        self.dropped = 0
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._file: IO[str] | None = None

    # ------------------------------------------------------------------ emit
    def sampled(self, trace_id: str | None) -> bool:
        """Whether events of this trace are recorded (None → always)."""
        if trace_id is None:
            return True
        return sample_decision(trace_id, self.sample_rate)

    def emit(self, kind: str, *, trace: str | None = None, **fields: Any) -> bool:
        """Record one event; returns False when its trace is sampled out."""
        if not self.sampled(trace):
            return False
        event: dict[str, Any] = {"kind": kind}
        if trace is not None:
            event["trace"] = trace
        event.update(fields)
        return self._record(event)

    def emit_span(self, span: Any) -> bool:
        """Record one completed :class:`~repro.obs.span.Span`.

        Builds the event dict in one go (no kwargs round trip through
        :meth:`emit`) — this runs once per span on every instrumented path.
        """
        if not self.sampled(span.trace_id):
            return False
        event: dict[str, Any] = {
            "kind": "span",
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "dur": span.duration,
            "status": span.status,
        }
        if span.attrs:
            event["attrs"] = dict(span.attrs)
        return self._record(event)

    def _record(self, event: dict[str, Any]) -> bool:
        if self.path is None:
            # Ring-only fast path: ``deque.append`` with a maxlen is atomic
            # in CPython, so the always-on configuration takes no lock — a
            # contended acquire between the event-loop thread and executor
            # threads costs a GIL handoff per span otherwise.  The dropped
            # counter's read-modify-write is benignly racy here: it is a
            # health stat, and under concurrent overflow it may undercount.
            ring = self._ring
            if len(ring) == self.capacity:
                self.dropped += 1
            ring.append(event)
            return True
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            if self._file is None:
                self._file = open(self.path, "a", encoding="utf-8")
            self._file.write(json.dumps(event, ensure_ascii=False) + "\n")
            self._file.flush()
            if self.max_bytes is not None and self._file.tell() >= self.max_bytes:
                self._rotate_locked()
        return True

    def _rotate_locked(self) -> None:
        """Shift ``path → path.1 → … → path.keep`` and start a fresh file.

        Rotation is per-process: when several workers share one inherited
        sink each rotates independently, which at worst rotates a little
        early — the bound still holds.  Failures (e.g. a rotated file
        vanishing underneath us) are swallowed: losing a rotation beats
        killing the instrumented request.
        """
        assert self.path is not None
        if self._file is not None:
            self._file.close()
            self._file = None
        try:
            if self.keep == 0:
                os.remove(self.path)
            else:
                for index in range(self.keep - 1, 0, -1):
                    older = f"{self.path}.{index}"
                    if os.path.exists(older):
                        os.replace(older, f"{self.path}.{index + 1}")
                os.replace(self.path, f"{self.path}.1")
            self.rotations += 1
            # Reopen immediately so the live path always exists — readers
            # (``repro trace``, ``tail -f``) never see it vanish.
            self._file = open(self.path, "a", encoding="utf-8")
        except OSError:
            pass

    # ----------------------------------------------------------------- query
    def events(
        self, *, trace: str | None = None, kind: str | None = None
    ) -> list[dict[str, Any]]:
        """A snapshot of buffered events, optionally filtered."""
        with self._lock:
            snapshot = list(self._ring)
        if trace is not None:
            snapshot = [e for e in snapshot if e.get("trace") == trace]
        if kind is not None:
            snapshot = [e for e in snapshot if e.get("kind") == kind]
        return snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # ------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


# ------------------------------------------------------------- default log
_default_lock = threading.Lock()
_default_log: EventLog | None = None


def _log_from_env() -> EventLog:
    capacity = int(os.environ.get(ENV_EVENTS_CAPACITY, DEFAULT_CAPACITY))
    rate = float(os.environ.get(ENV_EVENTS_SAMPLE, 1.0))
    path = os.environ.get(ENV_EVENTS_FILE) or None
    max_bytes_raw = os.environ.get(ENV_EVENTS_MAX_BYTES)
    max_bytes = int(max_bytes_raw) if max_bytes_raw else None
    keep = int(os.environ.get(ENV_EVENTS_KEEP, DEFAULT_ROTATED_KEEP))
    return EventLog(
        capacity=capacity,
        path=path,
        sample_rate=rate,
        max_bytes=max_bytes,
        keep=keep,
    )


def get_default_event_log() -> EventLog:
    """The process-wide event log (built from the environment on first use).

    Double-checked locking: this getter runs at least twice per span (the
    sampling verdict, then the emit), so the common path must not take the
    lock — a plain read of the module global is atomic under the GIL.
    """
    global _default_log
    log = _default_log
    if log is None:
        with _default_lock:
            if _default_log is None:
                _default_log = _log_from_env()
            log = _default_log
    return log


def configure_default_event_log(
    *,
    capacity: int | None = None,
    path: str | os.PathLike | None = None,
    sample_rate: float | None = None,
    max_bytes: int | None = None,
    keep: int | None = None,
    export_env: bool = False,
) -> EventLog:
    """Replace the process-default log (tests, CLI ``serve --events-file``).

    ``max_bytes``/``keep`` default from the environment
    (``REPRO_EVENTS_MAX_BYTES`` / ``REPRO_EVENTS_KEEP``) so a supervisor can
    cap the sink without touching serve flags.  With ``export_env`` the file
    path, sample rate and rotation bound are written back into
    ``os.environ``, so subprocess workers spawned later inherit the same
    sink, sampling verdicts and growth cap.
    """
    global _default_log
    if max_bytes is None:
        max_bytes_raw = os.environ.get(ENV_EVENTS_MAX_BYTES)
        max_bytes = int(max_bytes_raw) if max_bytes_raw else None
    if keep is None:
        keep = int(os.environ.get(ENV_EVENTS_KEEP, DEFAULT_ROTATED_KEEP))
    log = EventLog(
        capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
        path=path,
        sample_rate=sample_rate if sample_rate is not None else 1.0,
        max_bytes=max_bytes,
        keep=keep,
    )
    with _default_lock:
        old, _default_log = _default_log, log
    if old is not None:
        old.close()
    if export_env:
        if log.path is not None:
            os.environ[ENV_EVENTS_FILE] = log.path
        os.environ[ENV_EVENTS_SAMPLE] = repr(log.sample_rate)
        if log.max_bytes is not None:
            os.environ[ENV_EVENTS_MAX_BYTES] = str(log.max_bytes)
            os.environ[ENV_EVENTS_KEEP] = str(log.keep)
    return log


def emit_event(kind: str, *, trace: str | None = None, **fields: Any) -> bool:
    """Record one event on the process-default log."""
    return get_default_event_log().emit(kind, trace=trace, **fields)


def read_events(path: str | os.PathLike) -> list[dict[str, Any]]:
    """Load a JSONL event file, skipping torn/garbage lines."""
    events: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a live writer
            if isinstance(event, dict):
                events.append(event)
    return events


# -------------------------------------------------------------- waterfall
def trace_ids(events: Iterable[Mapping[str, Any]]) -> list[str]:
    """Distinct trace ids appearing in ``events``, in first-seen order."""
    seen: dict[str, None] = {}
    for event in events:
        trace = event.get("trace")
        if isinstance(trace, str):
            seen.setdefault(trace, None)
    return list(seen)


def render_waterfall(
    events: Iterable[Mapping[str, Any]], trace_id: str
) -> str:
    """Pretty-print the span tree of one trace as an indented waterfall.

    Spans are keyed into a tree by parent id (orphans — e.g. a parent whose
    process was not writing to this log — become extra roots), offsets are
    relative to the earliest span start, and the chain ending at the latest
    finish is marked ``*`` (the critical path).  Cross-process offsets are
    meaningful on platforms where ``time.monotonic`` is system-wide (Linux
    ``CLOCK_MONOTONIC``).
    """
    spans = [
        e
        for e in events
        if e.get("kind") == "span" and e.get("trace") == trace_id
    ]
    if not spans:
        return f"no spans recorded for trace {trace_id}"
    by_id = {e["span"]: e for e in spans if "span" in e}
    children: dict[str | None, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for event in spans:
        parent = event.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(event)
        else:
            roots.append(event)
    for group in children.values():
        group.sort(key=lambda e: e.get("start", 0.0))
    roots.sort(key=lambda e: e.get("start", 0.0))

    t0 = min(e.get("start", 0.0) for e in spans)
    t_end = max(e.get("start", 0.0) + e.get("dur", 0.0) for e in spans)

    # Critical path: follow, from each root, the child chain that ends last.
    critical: set[str] = set()

    def _latest_end(event: dict[str, Any]) -> float:
        own = event.get("start", 0.0) + event.get("dur", 0.0)
        return max(
            [own]
            + [_latest_end(child) for child in children.get(event.get("span"), [])]
        )

    node = max(roots, key=_latest_end)
    while node is not None:
        span_id = node.get("span")
        if span_id is not None:
            critical.add(span_id)
        kids = children.get(span_id, [])
        node = max(kids, key=_latest_end) if kids else None

    lines = [
        f"trace {trace_id} — {len(spans)} spans, "
        f"{(t_end - t0) * 1000:.2f} ms total (* = critical path)",
        f"{'offset':>10}  {'duration':>10}  span",
    ]

    def _render(event: dict[str, Any], depth: int) -> None:
        offset = (event.get("start", 0.0) - t0) * 1000
        duration = event.get("dur", 0.0) * 1000
        mark = "*" if event.get("span") in critical else " "
        attrs = event.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in attrs.items())
        status = "" if event.get("status", "ok") == "ok" else " [ERROR]"
        lines.append(
            f"{offset:>8.2f}ms  {duration:>8.2f}ms  "
            f"{'  ' * depth}{mark}{event.get('name', '?')}"
            f"{' ' + detail if detail else ''}{status}"
        )
        for child in children.get(event.get("span"), []):
            _render(child, depth + 1)

    for root in roots:
        _render(root, 0)
    return "\n".join(lines)


__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_ROTATED_KEEP",
    "ENV_EVENTS_CAPACITY",
    "ENV_EVENTS_FILE",
    "ENV_EVENTS_KEEP",
    "ENV_EVENTS_MAX_BYTES",
    "ENV_EVENTS_SAMPLE",
    "EventLog",
    "configure_default_event_log",
    "emit_event",
    "get_default_event_log",
    "read_events",
    "render_waterfall",
    "sample_decision",
    "trace_ids",
]
