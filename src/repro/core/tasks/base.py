"""Task adapters: how each concrete data manipulation task plugs into UniDM.

Section 3 of the paper formalises a task as ``Y = F_T(R, S, D)``; Section 4.5
explains that moving between tasks only requires adapting the target query
``Q``, the candidate attribute set ``S'`` and the way modules are combined.
Those adaptation points are exactly the methods of :class:`Task` below; the
pipeline itself (Algorithm 1) is task-agnostic.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

from ...datalake.table import Record, Table
from ..types import TASK_DESCRIPTIONS, TaskType


class Task(abc.ABC):
    """One concrete unit of work, e.g. "impute the city of this record"."""

    task_type: TaskType

    # -- prompt ingredients ------------------------------------------------------
    @property
    def description(self) -> str:
        """The full task description ``T`` placed inside prompts."""
        return TASK_DESCRIPTIONS[self.task_type]

    @property
    def short_name(self) -> str:
        """The short task name ("data imputation") used in retrieval prompts."""
        return self.task_type.value

    @abc.abstractmethod
    def query(self) -> str:
        """The target query ``Q`` (Section 4.5 gives the per-task form)."""

    # -- retrieval inputs ---------------------------------------------------------
    @property
    def needs_retrieval(self) -> bool:
        """Whether automatic context retrieval applies to this task."""
        return True

    def table(self) -> Table | None:
        """The table ``D_i`` that context is retrieved from (if any)."""
        return None

    def target_records(self) -> list[Record]:
        """The record subset ``R`` the task operates on."""
        return []

    def target_attributes(self) -> list[str]:
        """The attribute subset ``S`` the task operates on."""
        return []

    def candidate_attributes(self) -> list[str]:
        """The candidate set ``S'`` offered to meta-wise retrieval."""
        table = self.table()
        if table is None:
            return []
        exclude = set(self.target_attributes())
        return [name for name in table.schema.names if name not in exclude]

    # -- pre-supplied context -------------------------------------------------------
    def context_rows(self) -> list[list[tuple[str, str]]] | None:
        """Context rows supplied by the task itself (bypasses retrieval).

        Data transformation, for example, carries its input/output examples in
        the task specification rather than in the lake.
        """
        return None

    def context_text(self) -> str | None:
        """Raw textual context supplied by the task itself (e.g. a document)."""
        return None

    # -- answer handling ---------------------------------------------------------------
    @abc.abstractmethod
    def parse_answer(self, text: str) -> Any:
        """Convert the LLM's raw answer text into the task's typed result."""

    # -- cosmetics ----------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(query={self.query()!r})"


def parse_yes_no(text: str) -> bool:
    """Interpret a yes/no completion; defaults to False on ambiguity."""
    lowered = text.strip().lower()
    if lowered.startswith("yes") or " yes" in lowered[:16]:
        return True
    return False


def first_line(text: str) -> str:
    """The first non-empty line of a completion, stripped of punctuation."""
    for line in str(text).splitlines():
        cleaned = line.strip().strip(".").strip()
        if cleaned:
            return cleaned
    return str(text).strip()


def restrict_attributes(names: Sequence[str], valid: Sequence[str]) -> list[str]:
    """Keep only names that exist in ``valid`` (case-insensitive), in order."""
    valid_map = {v.lower(): v for v in valid}
    out = []
    for name in names:
        key = name.strip().lower()
        if key in valid_map and valid_map[key] not in out:
            out.append(valid_map[key])
    return out
