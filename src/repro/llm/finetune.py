"""Simulated lightweight fine-tuning (Table 5 of the paper).

The paper freezes most pre-trained parameters, adds a small trainable head and
fine-tunes GPT-J-6B / LLaMA2-7B on the Walmart-Amazon training split, showing
that a fine-tuned 6-7B model roughly matches the 175B model on entity
resolution.  Offline we cannot run gradient descent on transformer weights, so
fine-tuning is simulated by what such a head actually learns for a matching
task: a *calibrated decision rule* on the model's own similarity statistic,
plus increased familiarity with the training domain.

Concretely, :class:`FineTuner`:

1. computes :func:`~repro.llm.answering.entity_match_score` on every labelled
   training pair (the same statistic the answer engine thresholds at inference);
2. picks the threshold that maximises F1 on the training split;
3. returns a new :class:`~repro.llm.simulated.SimulatedLLM` whose profile has
   that threshold, no yes/no bias, reduced calibration noise and full
   familiarity with the training domain.

This reproduces the Table 5 crossover mechanistically: a raw small model has a
mis-calibrated, noisy decision rule (very low F1); the fine-tuned model's rule
is fitted to data, so its F1 approaches the large model's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .answering import entity_match_score
from .knowledge import WorldKnowledge
from .profiles import ModelProfile
from .simulated import SimulatedLLM


@dataclass(frozen=True)
class LabeledPair:
    """One training example for match-style fine-tuning."""

    left: str
    right: str
    label: bool


@dataclass
class FineTuneReport:
    """What the (simulated) fine-tuning run learned."""

    threshold: float
    train_f1: float
    n_examples: int
    epochs: int
    domain: str


def _f1_at_threshold(scores: np.ndarray, labels: np.ndarray, threshold: float) -> float:
    predictions = scores >= threshold
    tp = int(np.sum(predictions & labels))
    fp = int(np.sum(predictions & ~labels))
    fn = int(np.sum(~predictions & labels))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


class FineTuner:
    """Fits a calibrated matching head for a simulated model."""

    def __init__(
        self,
        epochs: int = 30,
        noise_floor: float = 0.06,
        competence_boost: float = 0.04,
    ):
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.epochs = epochs
        self.noise_floor = noise_floor
        self.competence_boost = competence_boost

    def fit(
        self,
        profile: ModelProfile,
        pairs: Sequence[LabeledPair],
        knowledge: WorldKnowledge | None = None,
        domain: str = "",
        seed: int = 0,
    ) -> tuple[SimulatedLLM, FineTuneReport]:
        """Fine-tune ``profile`` on labelled pairs; returns (model, report)."""
        if not pairs:
            raise ValueError("fine-tuning requires at least one labelled pair")
        scores = np.array([entity_match_score(p.left, p.right) for p in pairs])
        labels = np.array([bool(p.label) for p in pairs])

        candidate_thresholds = np.unique(
            np.concatenate([scores, np.linspace(0.05, 0.95, 37)])
        )
        f1s = np.array(
            [_f1_at_threshold(scores, labels, t) for t in candidate_thresholds]
        )
        best_index = int(np.argmax(f1s))
        best_threshold = float(candidate_thresholds[best_index])
        best_f1 = float(f1s[best_index])

        # The amount of improvement grows with training size, saturating the
        # way the paper's 6144-tuple split saturates a small head.
        data_factor = min(1.0, len(pairs) / 2000.0)
        tuned_noise = max(
            self.noise_floor,
            profile.calibration_noise * (1.0 - 0.8 * data_factor),
        )
        familiarity = dict(profile.domain_familiarity)
        if domain:
            familiarity[domain] = 1.0
        competence = dict(profile.task_competence)
        competence["entity_resolution"] = (
            competence.get("entity_resolution", 0.0)
            + self.competence_boost * data_factor
        )

        tuned_profile = profile.with_updates(
            name=f"{profile.name}-finetuned",
            display_name=f"{profile.display_name} (fine-tune)",
            match_threshold=best_threshold,
            yes_bias=0.0,
            calibration_noise=tuned_noise,
            domain_familiarity=familiarity,
            task_competence=competence,
        )
        model = SimulatedLLM(
            profile=tuned_profile,
            knowledge=knowledge if knowledge is not None else WorldKnowledge(),
            seed=seed,
        )
        report = FineTuneReport(
            threshold=best_threshold,
            train_f1=best_f1,
            n_examples=len(pairs),
            epochs=self.epochs,
            domain=domain,
        )
        return model, report
