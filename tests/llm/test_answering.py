"""Unit tests for the answer engine."""

import numpy as np
import pytest

from repro.llm.answering import (
    AnswerEngine,
    entity_match_score,
    _looks_corrupted,
    _perturb_string,
)
from repro.llm.profiles import get_profile
from repro.llm.prompt_parser import parse_answer


@pytest.fixture
def engine(city_knowledge):
    return AnswerEngine(get_profile("gpt-3-175b"), city_knowledge, np.random.default_rng(0))


def answer_distribution(engine, prompt, n=60):
    parsed = parse_answer(prompt)
    answers = [engine.answer(parsed) for _ in range(n)]
    return answers


def test_imputation_uses_knowledge(engine):
    prompt = "The timezone of Copenhagen is __."
    answers = answer_distribution(engine, prompt)
    correct = sum(a == "Central European Time" for a in answers)
    assert correct > len(answers) * 0.6


def test_imputation_copies_value_present_in_context(engine):
    prompt = (
        "Copenhagen is a city in the country Denmark. "
        "Copenhagen is in the timezone Central European Time. "
        "The timezone of Copenhagen is __."
    )
    answers = answer_distribution(engine, prompt)
    assert sum(a == "Central European Time" for a in answers) > len(answers) * 0.85


def test_imputation_unknown_entity_falls_back_to_context(engine):
    prompt = (
        "Florence is in the timezone Central European Time. "
        "The timezone of Atlantis is __."
    )
    parsed = parse_answer(prompt)
    answer = engine.answer(parsed)
    assert answer in ("Central European Time", "unknown")


def test_context_extraction_reads_natural_and_pairs(engine):
    parsed = parse_answer(
        "Florence is a city in the country Italy. "
        "city: Alicante, country: Spain, timezone: Central European Time. "
        "The timezone of Copenhagen is __."
    )
    items = engine.extract_context_items(parsed)
    subjects = {item.subject for item in items}
    assert "Florence" in subjects or "Alicante" in subjects


def test_error_detection_clean_and_corrupted(engine):
    clean = parse_answer(
        'It is required to identify if there is an error in the country "Italy". '
        "Is there an error in the country? Yes or No."
    )
    corrupted = parse_answer(
        'It is required to identify if there is an error in the country "Itxly". '
        "Is there an error in the country? Yes or No."
    )
    clean_answers = [engine.answer(clean) for _ in range(40)]
    corrupted_answers = [engine.answer(corrupted) for _ in range(40)]
    assert clean_answers.count("No") > 35
    assert corrupted_answers.count("Yes") > 35


def test_entity_resolution_matches_and_rejects(engine):
    same = parse_answer(
        "Entity A is title: sony bravia lcd tv x100, price: 499.0, whereas "
        "Entity B is title: sony bravia lcd tv x100 black, price: 498.0. "
        "Are these two entities the same? Yes or No."
    )
    different = parse_answer(
        "Entity A is title: sony bravia lcd tv x100, price: 499.0, whereas "
        "Entity B is title: canon pixma printer z9, price: 89.0. "
        "Are these two entities the same? Yes or No."
    )
    same_answers = [engine.answer(same) for _ in range(30)]
    different_answers = [engine.answer(different) for _ in range(30)]
    assert same_answers.count("Yes") > 20
    assert different_answers.count("No") > 25


def test_transformation_uses_program_search(engine):
    parsed = parse_answer(
        "20000101 can be transformed to 2000-01-01. "
        "20101231 can be transformed to 2010-12-31. "
        "19990415 can be transformed to __."
    )
    answers = [engine.answer(parsed) for _ in range(30)]
    assert answers.count("1999-04-15") > 20


def test_transformation_semantic_lookup(city_knowledge):
    city_knowledge.add_fact("germany", "transformation", "DEU", 0.9, "geography")
    engine = AnswerEngine(get_profile("gpt-3-175b"), city_knowledge, np.random.default_rng(1))
    parsed = parse_answer(
        "france can be transformed to FRA. germany can be transformed to __."
    )
    answers = [engine.answer(parsed) for _ in range(30)]
    assert answers.count("DEU") > 18


def test_table_qa_sums_mentioned_entities(engine):
    prompt = (
        "Australia (AUS) won 2 gold medals. Switzerland (SUI) won 0 gold medals. "
        "Italy (ITA) won 3 gold medals. "
        "Question: how many gold medals did Australia (AUS) and Switzerland (SUI) total? "
        "The answer is __."
    )
    parsed = parse_answer(prompt)
    answers = [engine.answer(parsed) for _ in range(30)]
    assert answers.count("2") > 15


def test_join_discovery_equivalence_evidence(city_knowledge):
    city_knowledge.add_equivalence("Germany", "GER")
    city_knowledge.add_equivalence("Italy", "ITA")
    engine = AnswerEngine(get_profile("gpt-3-175b"), city_knowledge, np.random.default_rng(2))
    joinable = parse_answer(
        'Column "fifa.country_abrv" contains GER and ITA. '
        'Column "countries.name" contains Germany and Italy. '
        "Are the two columns joinable? Yes or No."
    )
    unrelated = parse_answer(
        'Column "fifa.country_abrv" contains GER and ITA. '
        'Column "palette.color" contains red and blue. '
        "Are the two columns joinable? Yes or No."
    )
    yes = [engine.answer(joinable) for _ in range(30)].count("Yes")
    no = [engine.answer(unrelated) for _ in range(30)].count("No")
    assert yes > 20
    assert no > 20


def test_extraction_finds_domain_value(city_knowledge):
    city_knowledge.add_domain_values("position", ["point guard", "small forward"])
    engine = AnswerEngine(get_profile("gpt-4-turbo"), city_knowledge, np.random.default_rng(3))
    parsed = parse_answer(
        "Kevin Durant is an American basketball player who plays small forward. "
        "The position is __."
    )
    answers = [engine.answer(parsed) for _ in range(40)]
    assert answers.count("small forward") > 15


def test_generic_fallback_returns_context_value(engine):
    parsed = parse_answer("Florence is a city in the country Italy. Please continue __.")
    assert isinstance(engine.answer(parsed), str)


def test_entity_match_score_symmetry_and_range():
    a = "title: sony camera x, price: 100"
    b = "title: sony camera x, price: 100"
    c = "title: lawn mower, price: 5"
    assert entity_match_score(a, b) > entity_match_score(a, c)
    assert entity_match_score(a, b) == pytest.approx(entity_match_score(b, a))


def test_looks_corrupted_heuristics():
    assert _looks_corrupted("mxrshxll")
    assert _looks_corrupted("")
    assert _looks_corrupted("heeeello" + "l" * 4)
    assert not _looks_corrupted("birmingham")


def test_perturb_string_changes_value():
    rng = np.random.default_rng(0)
    assert _perturb_string("12345", rng) != "12345"
    assert _perturb_string("hello", rng) != "hello"
    assert _perturb_string("", rng) == "unknown"
