"""Chaos acceptance: a flooding tenant must not degrade its neighbours' p99.

One tenant submits at ~20x its configured rate while two well-behaved
tenants run their steady workload.  The front door (single service, then a
2-worker cluster) must (a) shed the abuser with structured ``rate_limited``
errors carrying ``retry_after`` and (b) keep the well-behaved tenants'
front-door p99 latency within 2x of the no-abuse baseline — the per-tenant
``tenant.<name>.latency`` histogram is the measured signal.
"""

import itertools
import threading
import time

import pytest

from repro.api import TransformationSpec
from repro.api.protocol import decode_response, encode_request
from repro.core import UniDM, UniDMConfig
from repro.llm import CachedLLM, LanguageModel, SimulatedLLM
from repro.obs import MetricsRegistry
from repro.cluster.router import Router
from repro.serving.service import ServingService
from repro.tenancy import TenantConfig, TenantRegistry

GOOD_TENANTS = ("good-a", "good-b")
ABUSER = "abuser"
#: Requests each well-behaved tenant submits per phase.
GOOD_REQUESTS = 25
#: Absolute grace on the 2x bound: scheduler jitter on a busy CI box can
#: dominate when the baseline p99 itself is a few milliseconds.
GRACE_SECONDS = 0.015

_fresh = itertools.count()


def tenant_registry():
    return TenantRegistry(
        [
            TenantConfig("good-a", weight=4.0, rate=200.0, burst=50.0),
            TenantConfig("good-b", weight=4.0, rate=200.0, burst=50.0),
            TenantConfig(ABUSER, weight=1.0, rate=10.0, burst=2.0, max_inflight=4),
        ]
    )


class SlowLLM(LanguageModel):
    """Fixed per-call delay so requests genuinely contend for the engine."""

    def __init__(self, delay=0.002, seed=0):
        inner = SimulatedLLM(seed=seed)
        super().__init__(tokenizer=inner.tokenizer)
        self.inner = inner
        self.delay = delay
        self.name = f"slow({inner.name})"

    def _complete_text(self, prompt: str) -> str:
        time.sleep(self.delay)
        return self.inner._complete_text(prompt)


def fresh_spec():
    """A never-seen spec: keeps the completion cache out of the timing."""
    return TransformationSpec(
        value=f"2024{next(_fresh):08d}", examples=[["20000101", "2000-01-01"]]
    )


def run_phase(submit, with_abuse):
    """Run the good tenants' workload; optionally flood alongside it.

    Returns the abuser's collected results (empty without abuse).
    """
    good_done = threading.Event()
    abuser_results = []
    errors = []

    def good_worker(tenant):
        try:
            for _ in range(GOOD_REQUESTS):
                result = submit(fresh_spec(), tenant)
                assert result.error is None, f"{tenant} shed: {result.error}"
        except BaseException as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    def abuse_worker():
        # Two threads at one attempt per 10ms ≈ 200/s: a 20x flood of the
        # abuser's 10/s budget (paced, so the measured degradation is
        # queueing interference rather than GIL burn from a spin loop).
        while not good_done.is_set():
            abuser_results.append(submit(fresh_spec(), ABUSER))
            time.sleep(0.01)

    threads = [
        threading.Thread(target=good_worker, args=(tenant,))
        for tenant in GOOD_TENANTS
    ]
    abusers = (
        [threading.Thread(target=abuse_worker) for _ in range(2)] if with_abuse else []
    )
    for thread in threads + abusers:
        thread.start()
    for thread in threads:
        thread.join()
    good_done.set()
    for thread in abusers:
        thread.join()
    if errors:
        raise errors[0]
    return abuser_results


def measure(submit, snapshot):
    """One session: baseline phase, reset, abuse phase.  Leaves stats reset."""

    def p99(tenant):
        histograms = snapshot()["metrics"]["histograms"]
        return histograms[f"tenant.{tenant}.latency"]["p99"]

    run_phase(submit, with_abuse=False)
    baseline = {tenant: p99(tenant) for tenant in GOOD_TENANTS}
    snapshot(reset=True)

    abuser_results = run_phase(submit, with_abuse=True)
    abused = {tenant: p99(tenant) for tenant in GOOD_TENANTS}
    snapshot(reset=True)
    return baseline, abused, abuser_results


def assert_isolated(submit, snapshot):
    """The shared scenario, with one re-measure to absorb a noise burst on a
    loaded machine — genuine unfairness fails both sessions."""
    for attempt in (1, 2):
        baseline, abused, abuser_results = measure(submit, snapshot)

        shed = [r for r in abuser_results if r.error is not None]
        assert shed, "flooding at 20x the configured rate must be rate-limited"
        assert all(r.error.code == "rate_limited" for r in shed)
        assert all(r.error.retry_after > 0 for r in shed)
        assert all((r.error.details or {}).get("tenant") == ABUSER for r in shed)

        bounds = {
            tenant: 2.0 * baseline[tenant] + GRACE_SECONDS
            for tenant in GOOD_TENANTS
        }
        if all(abused[tenant] <= bounds[tenant] for tenant in GOOD_TENANTS):
            return
        if attempt == 2:
            worst = max(
                GOOD_TENANTS, key=lambda t: abused[t] - bounds[t]
            )
            pytest.fail(
                f"{worst} p99 degraded beyond isolation bound twice: baseline "
                f"{baseline[worst]:.4f}s, under abuse {abused[worst]:.4f}s "
                f"(bound {bounds[worst]:.4f}s)"
            )


def test_service_isolates_well_behaved_tenants_from_a_flood():
    registry = MetricsRegistry()
    pipeline = UniDM(CachedLLM(SlowLLM()), UniDMConfig.full(seed=0))
    service = ServingService(pipeline, metrics=registry, tenants=tenant_registry())

    def submit(spec, tenant):
        response = service.handle_request(
            encode_request(spec, request_id=0, tenant=tenant)
        )
        return decode_response(response)

    def snapshot(reset=False):
        return service.stats_snapshot(reset=reset)

    assert_isolated(submit, snapshot)


def test_cluster_isolates_well_behaved_tenants_from_a_flood():
    with Router.local(
        2,
        seed=0,
        llm_factory=lambda index: SlowLLM(seed=index),
        tenants=tenant_registry(),
    ) as router:

        def submit(spec, tenant):
            return router.submit_specs([spec], tenant=tenant)[0]

        def snapshot(reset=False):
            return router.stats_snapshot(reset=reset)

        assert_isolated(submit, snapshot)
