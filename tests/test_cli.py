"""Tests for the ``python -m repro`` command-line interface."""

import io
import json
import sys

import pytest

from repro.__main__ import main


def test_cli_list_datasets(capsys):
    assert main(["list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "restaurant" in out and "nextiajd" in out


def test_cli_list_experiments(capsys):
    assert main(["list-experiments"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure5" in out


def test_cli_run_experiment_unknown(capsys):
    assert main(["run-experiment", "nope"]) == 2


def test_cli_run_experiment_small(capsys):
    assert main(["run-experiment", "table11", "--max-tasks", "4"]) == 0
    out = capsys.readouterr().out
    assert "Evaporate" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "target prompt:" in out


def test_cli_demo_engine(capsys, tmp_path):
    assert main(["demo", "--engine", "--batch-size", "4", "--workers", "4",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "target prompt:" in out
    assert "engine       :" in out and "tasks/s" in out
    assert "batching     :" in out
    assert "cache        :" in out


def test_cli_run_experiment_engine(capsys):
    assert main(["run-experiment", "table11", "--max-tasks", "4", "--engine"]) == 0
    out = capsys.readouterr().out
    assert "Evaporate" in out
    # The global default engine must not leak past the command.
    from repro.eval import harness

    assert harness._DEFAULT_ENGINE_CONFIG is None


def test_cli_serve_stdin(capsys, monkeypatch):
    requests = [
        {"id": 1, "type": "transformation", "value": "19990415",
         "examples": [["20000101", "2000-01-01"], ["20101231", "2010-12-31"]]},
        {"id": 2, "type": "nope"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    monkeypatch.setattr(sys, "stdin", stdin)
    assert main(["serve", "--batch-size", "4", "--workers", "2"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["id"] for r in responses] == [1, 2]
    assert responses[0]["ok"] and responses[0]["answer"] == "1999-04-15"
    assert not responses[1]["ok"]
    assert "served 2 requests" in captured.err


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


# ---------------------------------------------------------- top / doctor / slo
@pytest.fixture()
def live_stats_port():
    """A stats side channel backed by a real service with SLOs configured."""
    from repro.obs import serve_stats_in_thread
    from repro.obs.diagnostics import build_bundle
    from repro.obs.slo import SLOSpec
    from repro.serving import build_service
    from repro.tenancy import TenantConfig, TenantRegistry

    service = build_service(
        seed=0,
        tenants=TenantRegistry([TenantConfig("acme", rate=100.0, burst=10.0)]),
        slos=[
            SLOSpec(
                name="acme-shed", kind="error_rate", tenant="acme",
                budget=0.1, windows=("10s",),
            )
        ],
    )
    port = serve_stats_in_thread(
        service.stats_snapshot,
        "127.0.0.1",
        0,
        monitor=service.monitor,
        doctor_fn=lambda: build_bundle(
            snapshot_fn=service.stats_snapshot,
            monitor=service.monitor,
            config={"command": "test"},
        ),
    )
    assert port is not None
    return port


def test_cli_top_once(capsys, live_stats_port):
    assert main(["top", "--once", "--stats-port", str(live_stats_port)]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "TENANT" in out and "P99_MS" in out and "BUDGET" in out
    assert "(service)" in out
    assert "acme" in out  # tenant named by the SLO shows up even when idle


def test_cli_top_unreachable_fails_cleanly(capsys):
    assert main(["top", "--once", "--stats-port", "1", "--timeout", "0.2"]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_cli_stats_watch_shares_the_top_renderer(capsys, live_stats_port):
    import threading
    import repro.cli.top as top_module

    # One frame then interrupt: patch sleep to raise like a real Ctrl-C.
    def fake_sleep(seconds):
        raise KeyboardInterrupt

    original = top_module.time.sleep
    top_module.time.sleep = fake_sleep
    try:
        assert main(
            ["stats", "--stats-port", str(live_stats_port), "--watch", "5"]
        ) == 0
    finally:
        top_module.time.sleep = original
    assert "repro top" in capsys.readouterr().out


def test_cli_stats_non_dict_side_channel_fails_cleanly(capsys):
    import socket
    import threading

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def answer():
        conn, _ = listener.accept()
        conn.sendall(b"[1, 2, 3]\n")
        conn.close()

    thread = threading.Thread(target=answer, daemon=True)
    thread.start()
    try:
        assert main(["stats", "--stats-port", str(port)]) == 1
        assert "expected a JSON object" in capsys.readouterr().err
    finally:
        listener.close()
        thread.join(5)


def test_cli_doctor_writes_bundle(tmp_path, capsys, live_stats_port):
    output = tmp_path / "bundle.json"
    assert main(
        ["doctor", "--stats-port", str(live_stats_port), "--output", str(output)]
    ) == 0
    bundle = json.loads(output.read_text())
    assert bundle["bundle"] == "repro-doctor"
    assert bundle["config"] == {"command": "test"}
    assert "captured_at" in bundle and "target" in bundle
    assert "thread_stacks" in bundle


def test_cli_doctor_stdout(capsys, live_stats_port):
    assert main(["doctor", "--stats-port", str(live_stats_port), "--output", "-"]) == 0
    bundle = json.loads(capsys.readouterr().out)
    assert bundle["bundle"] == "repro-doctor"


def test_cli_doctor_requires_stats_port(capsys):
    assert main(["doctor"]) == 2
    assert "--stats-port" in capsys.readouterr().err


def test_cli_serve_rejects_bad_slo(capsys, monkeypatch):
    monkeypatch.setattr(sys, "stdin", io.StringIO(""))
    assert main(["serve", "--slo", "broken,kind=nope"]) == 2
    assert "bad SLO configuration" in capsys.readouterr().err


def test_cli_serve_with_slos_reports_them(capsys, monkeypatch, tmp_path):
    slos_file = tmp_path / "slos.json"
    slos_file.write_text(json.dumps({
        "svc-p99": {"kind": "latency", "metric": "service.batch_latency",
                    "threshold": 0.5, "windows": "10s"},
    }))
    request = {"id": 1, "type": "transformation", "value": "19990415",
               "examples": [["20000101", "2000-01-01"]]}
    monkeypatch.setattr(sys, "stdin", io.StringIO(json.dumps(request) + "\n"))
    assert main(["serve", "--slos-file", str(slos_file)]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out.splitlines()[0])["ok"]
