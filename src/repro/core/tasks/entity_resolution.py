"""Entity resolution task adapter.

``R = {r1, r2}`` holds two records and ``F_T`` outputs whether they refer to
the same real-world entity (Section 3).  The target query is
``"Entity A is <r1>, Entity B is <r2>"`` (Section 4.5).
"""

from __future__ import annotations

from typing import Sequence

from ...datalake.table import Record, Table
from ..serialization import serialize_record
from ..types import TaskType
from .base import Task, parse_yes_no


class EntityResolutionTask(Task):
    """Decide whether two records are the same entity (True = match)."""

    task_type = TaskType.ENTITY_RESOLUTION

    def __init__(
        self,
        record_a: Record,
        record_b: Record,
        attributes: Sequence[str] | None = None,
        table: Table | None = None,
    ):
        self._record_a = record_a
        self._record_b = record_b
        self._attributes = list(attributes) if attributes else None
        self._table = table

    @property
    def record_a(self) -> Record:
        return self._record_a

    @property
    def record_b(self) -> Record:
        return self._record_b

    def table(self) -> Table | None:
        return self._table

    def target_records(self) -> list[Record]:
        return [self._record_a, self._record_b]

    def target_attributes(self) -> list[str]:
        if self._attributes is not None:
            return list(self._attributes)
        return list(self._record_a.schema.names)

    @property
    def needs_retrieval(self) -> bool:
        # Context retrieval over the source table is only possible when the
        # task was constructed with a backing table.
        return self._table is not None

    def describe_a(self) -> str:
        return serialize_record(self._record_a, self._attributes)

    def describe_b(self) -> str:
        return serialize_record(self._record_b, self._attributes)

    def query(self) -> str:
        return f"Entity A is {self.describe_a()}, Entity B is {self.describe_b()}"

    def parse_answer(self, text: str) -> bool:
        """True when the LLM judges the two records to be the same entity."""
        return parse_yes_no(text)
