"""Unit tests for the dataset registry and BenchmarkDataset container."""

import pytest

from repro.core.types import TaskType
from repro.datasets import DATASET_REGISTRY, BenchmarkDataset, list_datasets, load_dataset


def test_registry_lists_all_paper_benchmarks():
    expected = {
        "restaurant", "buy", "stackoverflow", "bing_querylogs", "hospital",
        "adult", "beer", "amazon_google", "itunes_amazon", "walmart_amazon",
        "wiki_table_questions", "nextiajd", "nba_players",
    }
    assert expected == set(list_datasets())
    assert set(DATASET_REGISTRY) == expected


def test_load_dataset_unknown_name():
    with pytest.raises(KeyError):
        load_dataset("not-a-dataset")


def test_load_dataset_passes_builder_kwargs():
    dataset = load_dataset("restaurant", seed=1, n_records=40, n_tasks=5)
    assert len(dataset) == 5
    assert len(dataset.table) == 40


def test_dataset_alignment_enforced(restaurant_dataset):
    with pytest.raises(ValueError):
        BenchmarkDataset(
            name="broken",
            task_type=TaskType.DATA_IMPUTATION,
            tables={},
            knowledge=restaurant_dataset.knowledge,
            tasks=list(restaurant_dataset.tasks),
            ground_truth=[],
        )


def test_dataset_subset(restaurant_dataset):
    subset = restaurant_dataset.subset(5, seed=1)
    assert len(subset) == 5
    assert len(subset.tasks) == len(subset.ground_truth)
    assert restaurant_dataset.subset(10_000) is restaurant_dataset


def test_dataset_table_property_and_lake(restaurant_dataset, beer_dataset):
    assert restaurant_dataset.table.name == "restaurant"
    with pytest.raises(ValueError):
        _ = beer_dataset.table  # two tables -> ambiguous
    lake = beer_dataset.as_lake()
    assert len(lake) == 2


def test_builders_are_deterministic_per_seed():
    a = load_dataset("buy", seed=3, n_records=30, n_tasks=5)
    b = load_dataset("buy", seed=3, n_records=30, n_tasks=5)
    assert [t.query() for t in a.tasks] == [t.query() for t in b.tasks]
    assert a.ground_truth == b.ground_truth
    c = load_dataset("buy", seed=4, n_records=30, n_tasks=5)
    assert [t.query() for t in a.tasks] != [t.query() for t in c.tasks]
