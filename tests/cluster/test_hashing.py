"""Unit tests for the consistent-hash ring and the spec routing key."""

import pytest

from repro.api import TransformationSpec
from repro.cluster import HashRing, spec_key


def test_ring_is_deterministic_across_instances():
    keys = [f"key-{i}" for i in range(200)]
    ring_a = HashRing(["w0", "w1", "w2"])
    ring_b = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
    assert [ring_a.node_for(k) for k in keys] == [ring_b.node_for(k) for k in keys]


def test_every_node_owns_some_keys():
    ring = HashRing([f"w{i}" for i in range(4)], replicas=64)
    counts = ring.distribution(f"key-{i}" for i in range(400))
    assert set(counts) == {"w0", "w1", "w2", "w3"}
    assert all(count > 0 for count in counts.values())


def test_removal_moves_only_the_dead_nodes_keys():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    keys = [f"key-{i}" for i in range(300)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("w2")
    for key in keys:
        after = ring.node_for(key)
        if before[key] != "w2":
            assert after == before[key], "a surviving node's key moved"
        else:
            assert after != "w2"


def test_add_is_idempotent_and_remove_unknown_is_noop():
    ring = HashRing(["w0"])
    ring.add("w0")
    ring.remove("ghost")
    assert ring.nodes == {"w0"}
    assert len(ring) == 1


def test_empty_ring_raises_lookup_error():
    ring = HashRing(["w0"])
    ring.remove("w0")
    with pytest.raises(LookupError):
        ring.node_for("anything")


def test_replicas_must_be_positive():
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_spec_key_is_stable_and_content_addressed():
    spec = TransformationSpec(value="19990415", examples=[["a", "b"]])
    same = TransformationSpec(value="19990415", examples=[["a", "b"]])
    other = TransformationSpec(value="20230101", examples=[["a", "b"]])
    assert spec_key(spec) == spec_key(same)
    assert spec_key(spec) != spec_key(other)
