"""Benchmark: regenerate Table 2 (data transformation accuracy)."""

from conftest import run_once, scores_by_method

from repro.experiments import table2_transformation


def test_table2_transformation(benchmark):
    rows = run_once(benchmark, table2_transformation.run, seed=0, max_tasks=40)
    assert len(rows) == 6
    for dataset in ("stackoverflow", "bing_querylogs"):
        scores = scores_by_method(rows, dataset=f"{dataset}[40]") or scores_by_method(rows, dataset=dataset)
        # Paper shape: UniDM >= FM >= TDE (LLM-based methods solve the
        # semantic cases that defeat pure program search).
        assert scores["UniDM"] + 8 >= scores["FM"]
        assert scores["UniDM"] > scores["TDE"]
    # Bing-QueryLogs is the harder split for every method.
    so = scores_by_method(rows, dataset="stackoverflow[40]") or scores_by_method(rows, dataset="stackoverflow")
    bing = scores_by_method(rows, dataset="bing_querylogs[40]") or scores_by_method(rows, dataset="bing_querylogs")
    assert bing["TDE"] < so["TDE"]
