"""Cluster workers — the execution shards behind the router.

A worker is anything that answers v2 wire-protocol request batches in order
(:meth:`Worker.submit`), can say whether it is alive (:meth:`Worker.ping`)
and can report a :class:`~repro.cluster.stats.WorkerStats` row.  Two
implementations ship:

* :class:`ThreadWorker` — a full serving stack
  (:class:`~repro.serving.service.ServingService` with its own pipeline,
  engine and :class:`~repro.serving.cache.PersistentCache` shard) behind a
  **bounded** work queue drained by one thread.  ``submit`` blocks while the
  queue is full, so a slow shard exerts backpressure on the router instead
  of buffering unboundedly.
* :class:`SubprocessWorker` — a spawned ``python -m repro serve --port``
  process spoken to over the existing v2 TCP line protocol; the process owns
  its cache shard directory, so shards stay disjoint across process
  boundaries too.

Both raise :class:`WorkerDeadError` from ``submit`` once they are closed,
killed or crashed — the router's requeue-on-death path keys off it.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from ..obs.metrics import MetricsRegistry, get_default_registry
from ..tenancy import DEFAULT_TENANT, FairBlockingQueue
from .stats import WorkerStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..serving.service import ServingService

__all__ = [
    "ClusterError",
    "SubprocessWorker",
    "ThreadWorker",
    "Worker",
    "WorkerDeadError",
]


class ClusterError(RuntimeError):
    """Base class of cluster-layer failures."""


class WorkerDeadError(ClusterError):
    """The worker cannot take work any more (closed, killed or crashed)."""


class _StartupExit(ClusterError):
    """Internal: a spawned worker exited before its socket came up."""


#: Queue sentinel telling a thread worker's loop to exit.
_STOP = object()


class Worker:
    """Contract every shard implements: ordered batches in, responses out."""

    worker_id: str

    def submit(
        self,
        requests: "list[dict]",
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> "list[dict]":
        """Answer one wire-request batch in order.

        ``priority`` (higher first) is honored at dequeue when batches
        contend for the worker; ``tenant``/``weight`` let the router's
        weighted-fair scheduling extend to per-worker queues.
        Implementations may ignore all three.

        Raises
        ------
        WorkerDeadError
            When the worker is no longer able to process batches; the
            router reacts by removing it from the ring and re-routing.
        """
        raise NotImplementedError

    def ping(self) -> bool:
        """Cheap liveness check (no request is executed)."""
        raise NotImplementedError

    def stats(self) -> WorkerStats:
        """A point-in-time stats row for :class:`ClusterStats`."""
        return WorkerStats(worker_id=self.worker_id, alive=self.ping())

    def close(self) -> None:
        """Release the worker's resources; later ``submit`` calls raise."""

    def kill(self) -> None:
        """Simulate/force an ungraceful death (used by failover paths/tests)."""
        self.close()

    def shard(self) -> "object | None":
        """The live :class:`~repro.serving.cache.PersistentCache` shard.

        ``None`` when the shard is not reachable in this process (no
        persistent cache configured, or the worker runs elsewhere — see
        :meth:`shard_path` for the on-disk handle).
        """
        return None

    def shard_path(self) -> "Path | None":
        """The shard directory on disk, when one exists (else ``None``)."""
        shard = self.shard()
        return getattr(shard, "path", None)


class ThreadWorker(Worker):
    """An in-process serving stack behind a bounded work queue.

    Parameters
    ----------
    worker_id:
        Ring identity; also names the cache shard directory.
    service:
        The worker-owned :class:`~repro.serving.service.ServingService`
        (its pipeline, engine and persistent cache belong to this shard
        only).
    queue_depth:
        Maximum batches waiting in the worker's queue.  ``submit`` blocks
        when the queue is full — this is the cluster's backpressure bound.
    """

    def __init__(
        self,
        worker_id: str,
        service: "ServingService",
        *,
        queue_depth: int = 32,
        metrics: MetricsRegistry | None = None,
    ):
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.worker_id = worker_id
        self.service = service
        self.queue_depth = queue_depth
        metrics = metrics or get_default_registry()
        self._m_depth = metrics.gauge(f"worker.queue_depth.{worker_id}")
        # Weighted-fair queue: waiting batches dequeue fair-share across
        # tenants; within one tenant the order is (-priority, arrival) —
        # with all traffic on the default tenant that is exactly the old
        # PriorityQueue order.  The stop sentinel drains after all work.
        self._queue: "FairBlockingQueue" = FairBlockingQueue(maxsize=queue_depth)
        self._closed = False
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-cluster-{worker_id}", daemon=True
        )
        self._thread.start()

    # ----------------------------------------------------------------- running
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            self._m_depth.set(self._queue.qsize())
            if item is _STOP:
                return
            requests, future = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(self.service.handle_batch(requests))
            except BaseException as exc:  # surfaced to the submitting thread
                future.set_exception(exc)

    def submit(
        self,
        requests: "list[dict]",
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> "list[dict]":
        if self._closed or not self._thread.is_alive():
            raise WorkerDeadError(f"worker {self.worker_id} is not accepting work")
        future: "Future[list[dict]]" = Future()
        # Blocks while queue_depth batches are already waiting: backpressure.
        self._queue.put(
            (requests, future),
            tenant=tenant,
            weight=weight,
            priority=priority,
            cost=float(max(len(requests), 1)),
        )
        self._m_depth.set(self._queue.qsize())
        if self._closed:
            # close() raced the enqueue; the loop may never drain the item.
            future.cancel()
            raise WorkerDeadError(f"worker {self.worker_id} shut down mid-submit")
        return future.result()

    # ------------------------------------------------------------------ health
    def ping(self) -> bool:
        return not self._closed and self._thread.is_alive()

    def stats(self) -> WorkerStats:
        row = WorkerStats(worker_id=self.worker_id, alive=self.ping())
        row.requests_served = self.service.requests_served
        llm = self.service.pipeline.llm
        row.cache_hits = getattr(llm, "hits", 0)
        row.cache_misses = getattr(llm, "misses", 0)
        row.persistent_hits = getattr(llm, "persistent_hits", 0)
        persistent = getattr(llm, "persistent", None)
        if persistent is not None:
            row.cache_entries = len(persistent)
        return row

    def shard(self) -> "object | None":
        return getattr(self.service.pipeline.llm, "persistent", None)

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Served after every admitted batch: pending work drains first.
        self._queue.put_final(_STOP)
        self._thread.join(timeout=5.0)


class SubprocessWorker(Worker):
    """A spawned ``python -m repro serve --port`` process as a shard.

    The child speaks the negotiated v2 wire transport of
    :mod:`repro.serving.transport` — a pooled keep-alive connection with
    binary framing and pipelined batches, exactly like
    :meth:`repro.api.Client.remote`.  Its persistent-cache shard lives in
    the directory passed at spawn time, so worker caches stay disjoint
    across processes and survive restarts.
    """

    #: Seconds to wait for the child's socket to accept connections.
    STARTUP_TIMEOUT = 15.0

    def __init__(
        self,
        worker_id: str,
        *,
        host: str = "127.0.0.1",
        seed: int = 0,
        model: str | None = None,
        cache_dir: str | os.PathLike | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        timeout: float = 60.0,
    ):
        self.worker_id = worker_id
        self.host = host
        self.timeout = timeout
        #: Shard directory the child owns (migration reads/writes it from
        #: the router side; the child warms lazily — see docs).
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        #: Lazily-built pooled transport to the child (keep-alive, binary
        #: framing negotiated) — worker hops ride the same codepath as
        #: ``Client.remote`` instead of paying a connection per batch.
        self._backend = None
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        # The free-port probe is racy (the port is released before the child
        # binds it); a child that dies during startup — the symptom of losing
        # that race — gets a fresh port and another try.
        for attempt in range(3):
            self.port = _free_port(host)
            command = [
                sys.executable,
                "-m",
                "repro",
                "--seed",
                str(seed),
                "serve",
                "--host",
                host,
                "--port",
                str(self.port),
                "--batch-size",
                str(batch_size),
                "--workers",
                str(engine_workers),
            ]
            if model is not None:
                command += ["--model", model]
            if cache_dir is not None:
                command += ["--cache-dir", str(cache_dir)]
            self._process = subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                self._wait_ready()
                return
            except _StartupExit:
                if attempt == 2:
                    raise ClusterError(
                        f"worker {self.worker_id} exited with "
                        f"{self._process.returncode} during startup "
                        f"(3 attempts)"
                    )

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.STARTUP_TIMEOUT
        while time.monotonic() < deadline:
            if self._process.poll() is not None:
                raise _StartupExit()
            try:
                with socket.create_connection((self.host, self.port), timeout=0.25):
                    return
            except OSError:
                time.sleep(0.05)
        self.close()
        raise ClusterError(f"worker {self.worker_id} never became reachable")

    # ----------------------------------------------------------------- running
    def submit(
        self,
        requests: "list[dict]",
        priority: int = 0,
        *,
        tenant: str = DEFAULT_TENANT,
        weight: float = 1.0,
    ) -> "list[dict]":
        # ``priority`` and ``tenant`` already travel inside each request
        # envelope; the child's own fair batch lock honors them at dequeue.
        from ..api.errors import TransportError

        if not self.ping():
            raise WorkerDeadError(f"worker {self.worker_id} process is gone")
        try:
            return self._transport().send(requests)
        except TransportError as exc:
            raise WorkerDeadError(
                f"worker {self.worker_id} dropped a batch: {exc}"
            ) from exc

    def _transport(self):
        if self._backend is None:
            from ..api.client import _RemoteBackend

            self._backend = _RemoteBackend(self.host, self.port, self.timeout)
        return self._backend

    # ------------------------------------------------------------------ health
    def ping(self) -> bool:
        if self._process.poll() is not None:
            return False
        try:
            with socket.create_connection((self.host, self.port), timeout=0.5):
                return True
        except OSError:
            return False

    # --------------------------------------------------------------- lifecycle
    def _drop_transport(self) -> None:
        backend, self._backend = self._backend, None
        if backend is not None:
            backend.close()

    def close(self) -> None:
        self._drop_transport()
        if self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                self._process.kill()
                self._process.wait(timeout=5.0)

    def kill(self) -> None:
        """Hard-kill the child (the crash the router must survive)."""
        self._drop_transport()
        if self._process.poll() is None:
            self._process.kill()
            self._process.wait(timeout=5.0)

    def shard_path(self) -> "Path | None":
        return self.cache_dir


def _free_port(host: str) -> int:
    """Ask the OS for an unused TCP port.

    The probe is inherently racy — the port is free only until something
    else grabs it; :class:`SubprocessWorker` retries with a fresh port when
    its child loses that race and dies during startup.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


#: Signature of the factory Router.local uses to build one shard's service.
ServiceFactory = Callable[[int], "ServingService"]
