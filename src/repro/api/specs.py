"""Typed task specifications — the request side of the unified client API.

Each of the paper's seven data-manipulation tasks gets a ``*Spec`` dataclass
holding plain JSON-able data (rows as lists of dicts, examples as value
pairs).  A spec knows how to

* validate itself (:meth:`TaskSpec.validate`, raising
  :class:`~repro.api.errors.InvalidRequestError` with the offending field),
* serialize to a wire payload (:meth:`TaskSpec.to_request`) and back
  (:meth:`TaskSpec.from_request`), round-tripping losslessly, and
* materialise the pipeline-side :class:`~repro.core.tasks.base.Task`
  (:meth:`TaskSpec.to_task`).

The module-level registry maps wire ``type`` strings to spec classes; it is
the single source of truth that the serving front-end, the client facade and
the CLI all consult — replacing the if/elif ladder the PR 1 service used
(which only understood four of the seven task types).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, ClassVar, Mapping, Sequence

from ..core.tasks.base import Task
from ..core.tasks.entity_resolution import EntityResolutionTask
from ..core.tasks.error_detection import ErrorDetectionTask
from ..core.tasks.imputation import ImputationTask
from ..core.tasks.information_extraction import InformationExtractionTask
from ..core.tasks.join_discovery import JoinDiscoveryTask
from ..core.tasks.table_qa import TableQATask
from ..core.tasks.transformation import TransformationTask
from ..datalake.schema import Attribute, Schema
from ..datalake.table import Record, Table
from .errors import InvalidRequestError, UnknownTaskTypeError

#: Wire ``type`` string → spec class.  Populated by :func:`register_spec`.
SPEC_TYPES: dict[str, type["TaskSpec"]] = {}


def register_spec(cls: type["TaskSpec"]) -> type["TaskSpec"]:
    """Class decorator adding a spec to the wire-type registry."""
    if not cls.type:
        raise ValueError(f"{cls.__name__} must define a non-empty wire type")
    if cls.type in SPEC_TYPES:
        raise ValueError(f"duplicate spec registration for type {cls.type!r}")
    SPEC_TYPES[cls.type] = cls
    return cls


def task_types() -> list[str]:
    """The registered wire task types, in registration order."""
    return list(SPEC_TYPES)


def spec_from_request(payload: Mapping[str, Any]) -> "TaskSpec":
    """Build (and validate) the spec named by ``payload['type']``.

    This is the single dispatch point for every entry surface: the JSON
    service and the client facade.
    """
    if not isinstance(payload, Mapping):
        raise InvalidRequestError("request must be a JSON object")
    task_type = payload.get("type")
    spec_cls = SPEC_TYPES.get(task_type) if isinstance(task_type, str) else None
    if spec_cls is None:
        raise UnknownTaskTypeError(
            f"unknown task type {task_type!r}; expected one of {', '.join(SPEC_TYPES)}",
            field="type",
        )
    return spec_cls.from_request(payload)


# --------------------------------------------------------------------- helpers
def _require(condition: bool, message: str, field_name: str) -> None:
    if not condition:
        raise InvalidRequestError(message, field=field_name)


def _check_rows(rows: Any, field_name: str = "rows") -> tuple[list[dict], list[str]]:
    """Validate wire rows and return ``(rows, column names)``.

    The first row defines the columns (the PR 1 contract); later rows may
    omit columns (missing cells become ``None``) but must not introduce new
    ones.  Key order is irrelevant.
    """
    _require(
        isinstance(rows, Sequence) and not isinstance(rows, (str, bytes)) and len(rows) > 0,
        f"'{field_name}' must be a non-empty list of objects",
        field_name,
    )
    out = []
    for row in rows:
        _require(
            isinstance(row, Mapping),
            f"'{field_name}' must be a non-empty list of objects",
            field_name,
        )
        out.append(dict(row))
    names = list(out[0])
    known = set(names)
    for row in out[1:]:
        unknown = set(row) - known
        _require(
            not unknown,
            f"row has attributes {sorted(map(str, unknown))} outside the "
            f"first row's columns {names}",
            field_name,
        )
    return out, names


def _check_table_fields(
    rows: Any,
    table_name: Any,
    primary_key: str | None,
    field_name: str = "rows",
) -> list[str]:
    """Shared validation of a (rows, table_name, primary_key) triple."""
    _, names = _check_rows(rows, field_name)
    _require(bool(str(table_name)), "'table_name' must be non-empty", "table_name")
    key = primary_key if primary_key is not None else names[0]
    _require(
        key in names,
        f"primary_key {key!r} not among columns {names}",
        "primary_key",
    )
    return names


def _table_from_rows(
    rows: Sequence[Mapping[str, Any]],
    table_name: str,
    primary_key: str | None,
) -> Table:
    """Build a :class:`Table` from pre-validated wire rows."""
    rows = [dict(row) for row in rows]
    names = list(rows[0])
    key = primary_key if primary_key is not None else names[0]
    schema = Schema([Attribute(name, primary_key=(name == key)) for name in names])
    return Table(str(table_name), schema, rows)


def _record_for(table: Table, values: Any, field_name: str) -> Record:
    _require(
        isinstance(values, Mapping),
        f"'{field_name}' must be an object of known attribute values",
        field_name,
    )
    return Record(table.schema, {k: v for k, v in values.items() if k in table.schema})


# ------------------------------------------------------------------ base class
@dataclass(frozen=True)
class TaskSpec:
    """Common behaviour of the seven typed task specifications."""

    #: Wire discriminator; set by each concrete subclass.
    type: ClassVar[str] = ""

    def __post_init__(self) -> None:
        self.validate()

    # -- contract ------------------------------------------------------------
    def validate(self) -> None:
        """Check the spec's fields; runs automatically on construction.

        Raises:
            InvalidRequestError: When any field is malformed; ``field``
                on the error names the offending key.
        """

    def to_task(self) -> Task:
        """Materialise the pipeline task this spec describes.

        Returns:
            The :class:`~repro.core.tasks.base.Task` the execution engine
            runs for this spec.
        """
        raise NotImplementedError

    # -- wire form -----------------------------------------------------------
    def to_request(self) -> dict[str, Any]:
        """Serialize to the flat wire payload.

        Returns:
            ``{"type": ..., **fields}`` with default-valued fields omitted;
            feeding it back through :func:`spec_from_request` round-trips
            losslessly.  This canonical form is also what the flow planner
            dedups on and the cluster router hashes for placement.
        """
        payload: dict[str, Any] = {"type": self.type}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                payload[spec_field.name] = value
        return payload

    @classmethod
    def from_request(cls, payload: Mapping[str, Any]) -> "TaskSpec":
        """Build the spec from a payload, ignoring envelope/unknown keys.

        Args:
            payload: The flat wire form (``type`` plus task fields).

        Returns:
            A validated spec instance.

        Raises:
            InvalidRequestError: When a required field is missing or any
                present field fails validation.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        missing = [
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            and f.name not in kwargs
        ]
        if missing:
            raise InvalidRequestError(
                f"'{missing[0]}' is required for {cls.type} requests", field=missing[0]
            )
        return cls(**kwargs)


# ------------------------------------------------------------- concrete specs
@register_spec
@dataclass(frozen=True)
class ImputationSpec(TaskSpec):
    """Impute ``target[attribute]`` using ``rows`` as the evidence table."""

    type: ClassVar[str] = "imputation"

    rows: Sequence[Mapping[str, Any]]
    target: Mapping[str, Any]
    attribute: str
    table_name: str = "request"
    primary_key: str | None = None

    def validate(self) -> None:
        names = _check_table_fields(self.rows, self.table_name, self.primary_key)
        _require(isinstance(self.target, Mapping), "'target' must be an object of known attribute values", "target")
        _require(bool(self.attribute), "'attribute' is required", "attribute")
        _require(
            str(self.attribute) in names,
            f"attribute {self.attribute!r} not among columns {names}",
            "attribute",
        )

    def to_task(self) -> ImputationTask:
        table = _table_from_rows(self.rows, self.table_name, self.primary_key)
        record = _record_for(table, self.target, "target")
        return ImputationTask(table, record, str(self.attribute))


@register_spec
@dataclass(frozen=True)
class TransformationSpec(TaskSpec):
    """Transform ``value`` following the pattern of the example pairs."""

    type: ClassVar[str] = "transformation"

    #: ``value`` was optional (defaulting to "") in the v1 protocol; keep it so.
    value: str = ""
    examples: Sequence[Sequence[str]] = ()
    name: str = ""

    def validate(self) -> None:
        _require(
            isinstance(self.examples, Sequence)
            and not isinstance(self.examples, (str, bytes))
            and len(self.examples) > 0,
            "'examples' must be a non-empty list of [input, output] pairs",
            "examples",
        )
        for pair in self.examples:
            _require(
                isinstance(pair, Sequence)
                and not isinstance(pair, (str, bytes))
                and len(pair) == 2,
                "each entry of 'examples' must be an [input, output] pair",
                "examples",
            )

    def to_task(self) -> TransformationTask:
        pairs = [(str(src), str(dst)) for src, dst in self.examples]
        return TransformationTask(str(self.value), pairs, name=self.name)


@register_spec
@dataclass(frozen=True)
class ExtractionSpec(TaskSpec):
    """Extract ``attribute`` from one semi-structured ``document``."""

    type: ClassVar[str] = "extraction"

    #: ``document`` was optional (defaulting to "") in the v1 protocol.
    document: str = ""
    attribute: str = ""
    max_chunk_chars: int = 2000

    def validate(self) -> None:
        _require(
            bool(str(self.attribute).strip()), "'attribute' must be non-empty", "attribute"
        )
        _require(
            isinstance(self.max_chunk_chars, int) and self.max_chunk_chars > 0,
            "'max_chunk_chars' must be a positive integer",
            "max_chunk_chars",
        )

    def to_task(self) -> InformationExtractionTask:
        return InformationExtractionTask(
            str(self.document), str(self.attribute), max_chunk_chars=self.max_chunk_chars
        )


@register_spec
@dataclass(frozen=True)
class TableQASpec(TaskSpec):
    """Answer a free-form ``question`` over the table given by ``rows``."""

    type: ClassVar[str] = "table_qa"

    rows: Sequence[Mapping[str, Any]]
    question: str
    table_name: str = "request"
    primary_key: str | None = None

    def validate(self) -> None:
        _check_table_fields(self.rows, self.table_name, self.primary_key)
        _require(bool(str(self.question).strip()), "'question' must be non-empty", "question")

    def to_task(self) -> TableQATask:
        table = _table_from_rows(self.rows, self.table_name, self.primary_key)
        return TableQATask(table, str(self.question))


@register_spec
@dataclass(frozen=True)
class EntityResolutionSpec(TaskSpec):
    """Decide whether ``record_a`` and ``record_b`` name the same entity."""

    type: ClassVar[str] = "entity_resolution"

    record_a: Mapping[str, Any]
    record_b: Mapping[str, Any]
    attributes: Sequence[str] | None = None

    def validate(self) -> None:
        for field_name, record in (("record_a", self.record_a), ("record_b", self.record_b)):
            _require(
                isinstance(record, Mapping) and len(record) > 0,
                f"'{field_name}' must be a non-empty object of attribute values",
                field_name,
            )
        if self.attributes is not None:
            _require(
                isinstance(self.attributes, Sequence)
                and not isinstance(self.attributes, (str, bytes)),
                "'attributes' must be a list of attribute names",
                "attributes",
            )
            for name in self.attributes:
                _require(
                    name in self.record_a and name in self.record_b,
                    f"attribute {name!r} missing from one of the records",
                    "attributes",
                )

    def to_task(self) -> EntityResolutionTask:
        record_a = Record(Schema(list(self.record_a)), dict(self.record_a))
        record_b = Record(Schema(list(self.record_b)), dict(self.record_b))
        attributes = list(self.attributes) if self.attributes is not None else None
        return EntityResolutionTask(record_a, record_b, attributes=attributes)


@register_spec
@dataclass(frozen=True)
class ErrorDetectionSpec(TaskSpec):
    """Decide whether ``target[attribute]`` is erroneous, given ``rows``."""

    type: ClassVar[str] = "error_detection"

    rows: Sequence[Mapping[str, Any]]
    target: Mapping[str, Any]
    attribute: str
    table_name: str = "request"
    primary_key: str | None = None

    def validate(self) -> None:
        names = _check_table_fields(self.rows, self.table_name, self.primary_key)
        _require(isinstance(self.target, Mapping), "'target' must be an object of known attribute values", "target")
        _require(bool(self.attribute), "'attribute' is required", "attribute")
        _require(
            str(self.attribute) in names,
            f"attribute {self.attribute!r} not among columns {names}",
            "attribute",
        )
        _require(
            str(self.attribute) in self.target,
            f"'target' must carry a value for attribute {self.attribute!r}",
            "target",
        )

    def to_task(self) -> ErrorDetectionTask:
        table = _table_from_rows(self.rows, self.table_name, self.primary_key)
        record = _record_for(table, self.target, "target")
        return ErrorDetectionTask(table, record, str(self.attribute))


@register_spec
@dataclass(frozen=True)
class JoinDiscoverySpec(TaskSpec):
    """Decide whether ``table_a.column_a`` joins with ``table_b.column_b``.

    The two tables travel inline as ``{"name": ..., "rows": [...]}`` objects,
    mirroring how join candidates are shipped out of a lake catalogue.
    """

    type: ClassVar[str] = "join_discovery"

    table_a: Mapping[str, Any]
    column_a: str
    table_b: Mapping[str, Any]
    column_b: str
    n_sample_values: int = 6
    n_sample_records: int = 2
    seed: int = 0

    def validate(self) -> None:
        for field_name, payload, column in (
            ("table_a", self.table_a, self.column_a),
            ("table_b", self.table_b, self.column_b),
        ):
            _require(
                isinstance(payload, Mapping) and "rows" in payload,
                f"'{field_name}' must be an object with 'name' and 'rows'",
                field_name,
            )
            table_name = str(payload.get("name", field_name))
            _require(bool(table_name), f"'{field_name}.name' must be non-empty", field_name)
            _, names = _check_rows(payload["rows"], field_name=f"{field_name}.rows")
            column_field = "column_a" if field_name == "table_a" else "column_b"
            _require(bool(column), f"'{column_field}' is required", column_field)
            _require(
                str(column) in names,
                f"column {column!r} not in table {table_name!r}",
                column_field,
            )

    def _tables(self) -> tuple[Table, Table]:
        return (
            Table.from_dicts(
                str(self.table_a.get("name", "table_a")), [dict(r) for r in self.table_a["rows"]]
            ),
            Table.from_dicts(
                str(self.table_b.get("name", "table_b")), [dict(r) for r in self.table_b["rows"]]
            ),
        )

    def to_task(self) -> JoinDiscoveryTask:
        table_a, table_b = self._tables()
        return JoinDiscoveryTask(
            table_a,
            str(self.column_a),
            table_b,
            str(self.column_b),
            n_sample_values=self.n_sample_values,
            n_sample_records=self.n_sample_records,
            seed=self.seed,
        )


__all__ = [
    "SPEC_TYPES",
    "EntityResolutionSpec",
    "ErrorDetectionSpec",
    "ExtractionSpec",
    "ImputationSpec",
    "JoinDiscoverySpec",
    "TableQASpec",
    "TaskSpec",
    "TransformationSpec",
    "register_spec",
    "spec_from_request",
    "task_types",
]
