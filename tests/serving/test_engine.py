"""Tests for the execution engine: ordering, equivalence, concurrency."""

import asyncio

import pytest

from repro.core import ImputationTask, UniDM, UniDMConfig
from repro.llm import CachedLLM, SimulatedLLM
from repro.serving import (
    EngineConfig,
    ExecutionEngine,
    OrderedGate,
    PersistentCache,
)


def city_tasks(city_table):
    return [
        ImputationTask(city_table, city_table[5], "timezone"),
        ImputationTask(city_table, city_table[0], "timezone"),
        ImputationTask(city_table, city_table[3], "country"),
        ImputationTask(city_table, city_table[1], "country"),
    ]


def make_pipeline(knowledge, seed=0, persistent=None):
    llm = SimulatedLLM(knowledge=knowledge, seed=seed)
    if persistent is not None:
        llm = CachedLLM(llm, persistent=persistent)
    return UniDM(llm, UniDMConfig.full(seed=seed, candidate_sample_size=5, top_k_instances=2))


def result_fingerprint(results):
    return [
        (
            r.raw_answer,
            r.value,
            r.context_text,
            r.selected_attributes,
            r.trace.target_prompt,
            r.usage.calls,
            r.usage.prompt_tokens,
            r.usage.completion_tokens,
        )
        for r in results
    ]


# --------------------------------------------------------------- equivalence
def test_default_run_many_matches_run_loop_bitwise(city_table, city_knowledge):
    a = make_pipeline(city_knowledge, seed=5)
    b = make_pipeline(city_knowledge, seed=5)
    loop_results = [a.run(task) for task in city_tasks(city_table)]
    engine_results = b.run_many(city_tasks(city_table))
    assert result_fingerprint(loop_results) == result_fingerprint(engine_results)


def test_concurrent_engine_matches_sequential_on_warmed_cache(
    city_table, city_knowledge, tmp_path
):
    store = tmp_path / "cache"
    warm = make_pipeline(city_knowledge, seed=5, persistent=PersistentCache(store))
    sequential = [warm.run(task) for task in city_tasks(city_table)]

    # Fresh wrapper + fresh inner model, as a new process would have.
    cold = make_pipeline(city_knowledge, seed=5, persistent=PersistentCache(store))
    engine = ExecutionEngine(EngineConfig(max_batch_size=8, workers=4))
    concurrent = cold.run_many(city_tasks(city_table), engine=engine)

    assert result_fingerprint(sequential) == result_fingerprint(concurrent)
    assert cold.llm.hit_rate == 1.0  # everything served from the warmed store


def test_results_preserve_input_order(city_table, city_knowledge):
    pipeline = make_pipeline(city_knowledge)
    tasks = city_tasks(city_table)
    results = pipeline.run_many(
        tasks, engine=ExecutionEngine(EngineConfig(max_batch_size=4, workers=4))
    )
    assert [r.query for r in results] == [task.query() for task in tasks]


def test_empty_task_list(city_knowledge):
    pipeline = make_pipeline(city_knowledge)
    engine = ExecutionEngine()
    assert pipeline.run_many([], engine=engine) == []
    assert engine.last_report.n_tasks == 0


def test_engine_report_counts_requests(city_table, city_knowledge):
    pipeline = make_pipeline(city_knowledge)
    engine = ExecutionEngine(EngineConfig(max_batch_size=4, workers=4))
    results = engine.run(pipeline, city_tasks(city_table))
    report = engine.last_report
    assert report.n_tasks == len(results) == 4
    assert report.elapsed > 0
    assert report.tasks_per_second > 0
    # Every pipeline stage went through the batcher.
    assert report.stats is not None
    assert report.stats.requests == sum(r.usage.calls for r in results)
    assert set(report.stats.by_kind) <= {"p_rm", "p_ri", "p_dp", "p_cq", "answer"}


def test_per_task_usage_is_isolated(city_table, city_knowledge):
    pipeline = make_pipeline(city_knowledge)
    results = pipeline.run_many(
        city_tasks(city_table),
        engine=ExecutionEngine(EngineConfig(max_batch_size=4, workers=4)),
    )
    total = sum(r.usage.total_tokens for r in results)
    assert all(r.usage.total_tokens > 0 for r in results)
    assert pipeline.llm.usage.total_tokens == total


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(max_batch_size=0)
    with pytest.raises(ValueError):
        EngineConfig(workers=0)
    with pytest.raises(ValueError):
        EngineConfig(llm_threads=0)
    assert EngineConfig().with_updates(workers=2).workers == 2


# --------------------------------------------------------------- ordered gate
def test_ordered_gate_admits_in_index_order():
    order = []

    async def scenario():
        gate = OrderedGate()

        async def section(index):
            await gate.acquire(index)
            order.append(index)
            await asyncio.sleep(0)
            gate.release(index)

        # Launch deliberately out of order; admission must still be 0,1,2,3.
        await asyncio.gather(section(2), section(0), section(3), section(1))

    asyncio.run(scenario())
    assert order == [0, 1, 2, 3]


def test_run_many_falls_back_to_plain_loop_inside_event_loop(
    city_table, city_knowledge
):
    # The default engine path spins asyncio.run, which cannot nest; callers
    # already inside a loop must still get sequential-equivalent results.
    pipeline = make_pipeline(city_knowledge, seed=5)
    reference = make_pipeline(city_knowledge, seed=5)

    async def scenario():
        return pipeline.run_many(city_tasks(city_table))

    inside_loop = asyncio.run(scenario())
    expected = [reference.run(task) for task in city_tasks(city_table)]
    assert result_fingerprint(inside_loop) == result_fingerprint(expected)


def test_unordered_retrieval_still_produces_all_results(city_table, city_knowledge):
    pipeline = make_pipeline(city_knowledge)
    engine = ExecutionEngine(
        EngineConfig(max_batch_size=4, workers=4, ordered_retrieval=False)
    )
    results = engine.run(pipeline, city_tasks(city_table))
    assert len(results) == 4
    assert all(isinstance(r.value, str) and r.value for r in results)
