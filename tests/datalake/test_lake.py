"""Unit tests for the DataLake container."""

import pytest

from repro.datalake import DataLake, Schema, Table


def make_table(name, columns):
    return Table(name, Schema(columns), [])


def test_lake_add_and_lookup(city_table):
    lake = DataLake([city_table], name="test")
    assert "cities" in lake
    assert lake["cities"] is city_table
    assert len(lake) == 1


def test_lake_duplicate_add_rejected(city_table):
    lake = DataLake([city_table])
    with pytest.raises(ValueError):
        lake.add(city_table)
    lake.add(city_table, replace=True)  # replace allowed explicitly


def test_lake_missing_table_error_mentions_available(city_table):
    lake = DataLake([city_table])
    with pytest.raises(KeyError, match="cities"):
        _ = lake["nope"]


def test_lake_remove_and_get(city_table):
    lake = DataLake([city_table])
    assert lake.get("cities") is city_table
    removed = lake.remove("cities")
    assert removed is city_table
    assert lake.get("cities") is None


def test_lake_find_tables_with_attribute(city_table):
    other = make_table("other", ["city", "mayor"])
    lake = DataLake([city_table, other])
    found = lake.find_tables_with_attribute("city")
    assert {t.name for t in found} == {"cities", "other"}
    assert lake.find_tables_with_attribute("mayor")[0].name == "other"


def test_lake_attribute_index_and_columns(city_table):
    other = make_table("other", ["city", "mayor"])
    lake = DataLake([city_table, other])
    index = lake.attribute_index()
    assert sorted(index["city"]) == ["cities", "other"]
    assert ("other", "mayor") in lake.qualified_columns()


def test_lake_total_records(city_table):
    lake = DataLake([city_table])
    assert lake.total_records() == len(city_table)


def test_lake_iteration_sorted_by_name(city_table):
    lake = DataLake([make_table("zzz", ["a"]), city_table])
    assert [t.name for t in lake.tables] == ["cities", "zzz"]
    assert lake.table_names == ["cities", "zzz"]
