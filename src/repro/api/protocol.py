"""The versioned wire protocol spoken between clients and the service.

Two request generations coexist on the same newline-delimited JSON channel:

* **v1** (PR 1 format, still accepted) — a flat object
  ``{"id": ..., "type": "transformation", ...task fields}``.  Responses are
  flat too, with failures carried as a bare ``"error"`` string.
* **v2** (current) — an explicit envelope
  ``{"v": 2, "id": ..., "task": {"type": ..., ...task fields}}``.  Responses
  echo ``{"v": 2}`` and failures carry a structured error object
  ``{"code", "message", "field"?}`` (see :class:`~repro.api.errors.ErrorInfo`).

A request without a ``"v"`` key is treated as v1, so every PR 1 client keeps
working against the v2 service; the response generation always mirrors the
request generation, so a v1 caller never sees a v2 shape.

Three optional v2 envelope keys carry the observability layer:

* ``"trace"`` — a trace id (see :mod:`repro.obs.trace`).  The client stamps
  every outgoing request with one (the active :class:`~repro.obs.Trace`
  context's id, or a fresh id per request); the service echoes it on the
  response envelope so calls can be correlated end to end.
* ``"span"`` — the caller's span id (see :mod:`repro.obs.span`).  The
  receiving hop uses it as the parent of its own server-side span, so a
  cluster request (client → router → subprocess worker) reassembles into
  one causal tree in the event log.
* ``"priority"`` — an integer (default 0, higher first) honored at dequeue
  when admitted batches contend for the engine (see
  :class:`repro.obs.PriorityLock`).

A fourth optional key carries multi-tenancy (see :mod:`repro.tenancy`):

* ``"tenant"`` — the tenant this request is accounted to.  A front door
  configured with a :class:`~repro.tenancy.TenantRegistry` enforces that
  tenant's token bucket and inflight cap at admission (shedding with a
  structured ``rate_limited`` error) and schedules admitted work
  weighted-fair across tenants; the name is echoed on the response
  envelope and surfaces as ``TaskResult.tenant``.  Unknown names resolve
  to the catch-all ``default`` tenant.

All four are ignored by v1 and by older v2 peers — unknown envelope keys
have always been legal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from .errors import ErrorInfo, ProtocolError
from .results import TaskResult
from .specs import TaskSpec, spec_from_request

#: The protocol generation this library speaks natively.
PROTOCOL_VERSION = 2

#: Request generations the service accepts.
SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class ParsedRequest:
    """One validated request: the spec plus its envelope metadata."""

    spec: TaskSpec
    id: Any = None
    version: int = PROTOCOL_VERSION
    #: Trace id carried on the v2 envelope (``None`` when absent / v1).
    trace: str | None = None
    #: Dequeue priority claimed by the v2 envelope (higher first).
    priority: int = 0
    #: Caller's span id on the v2 envelope — parent of this hop's span.
    span: str | None = None
    #: Tenant claimed by the v2 envelope (``None`` when absent / v1).
    tenant: str | None = None


def request_version(payload: Any) -> int:
    """The protocol generation a raw request object claims (v1 if silent)."""
    if isinstance(payload, Mapping) and "v" in payload:
        version = payload["v"]
        if version not in SUPPORTED_VERSIONS:
            raise ProtocolError(
                f"unsupported protocol version {version!r}; "
                f"supported: {list(SUPPORTED_VERSIONS)}",
                field="v",
            )
        return int(version)
    return 1


def parse_request(payload: Any) -> ParsedRequest:
    """Validate a raw request object (either generation) into a spec.

    Raises :class:`~repro.api.errors.InvalidRequestError` subclasses on any
    malformed input; the caller decides how to report them (the service turns
    them into error responses, the client raises them directly).
    """
    if not isinstance(payload, Mapping):
        raise ProtocolError("request must be a JSON object")
    version = request_version(payload)
    request_id = payload.get("id")
    if version >= 2:
        task = payload.get("task")
        if not isinstance(task, Mapping):
            raise ProtocolError("v2 requests must carry a 'task' object", field="task")
        trace = payload.get("trace")
        priority = payload.get("priority", 0)
        span = payload.get("span")
        tenant = payload.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise ProtocolError(
                "'tenant' must be a string naming the tenant", field="tenant"
            )
        return ParsedRequest(
            spec=spec_from_request(task),
            id=request_id,
            version=version,
            trace=str(trace) if trace is not None else None,
            priority=int(priority) if isinstance(priority, (int, float)) else 0,
            span=str(span) if span is not None else None,
            tenant=tenant or None,
        )
    return ParsedRequest(spec=spec_from_request(payload), id=request_id, version=1)


def encode_request(
    spec: TaskSpec,
    request_id: Any = None,
    version: int = PROTOCOL_VERSION,
    *,
    trace: str | None = None,
    priority: int = 0,
    span: str | None = None,
    tenant: str | None = None,
) -> dict[str, Any]:
    """Serialize a spec into a raw request object of the given generation.

    ``trace`` defaults to the active :class:`~repro.obs.Trace` context's id
    and ``span`` to the active :class:`~repro.obs.span.Span`'s id when one
    is bound (v2 only); ``priority`` is attached only when nonzero and
    ``tenant`` only when set.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(f"unsupported protocol version {version!r}", field="v")
    if version == 1:
        payload = spec.to_request()
        if request_id is not None:
            payload = {"id": request_id, **payload}
        return payload
    if trace is None:
        from ..obs.trace import Trace

        trace = Trace.current_id()
    if span is None:
        from ..obs.span import Span

        current_span = Span.current()
        # Only parent under the context span when it belongs to the same
        # trace as this envelope: without a bound Trace every request gets a
        # fresh trace id, and stitching those under one client span would
        # cross-link unrelated traces.
        if current_span is not None and current_span.trace_id == trace:
            span = current_span.span_id
    envelope: dict[str, Any] = {"v": version, "id": request_id, "task": spec.to_request()}
    if trace is not None:
        envelope["trace"] = trace
    if span is not None:
        envelope["span"] = span
    if priority:
        envelope["priority"] = int(priority)
    if tenant:
        envelope["tenant"] = tenant
    return envelope


def encode_success(
    result: TaskResult,
    request_id: Any,
    version: int,
    *,
    trace: str | None = None,
    tenant: str | None = None,
) -> dict[str, Any]:
    """Serialize a successful result in the caller's protocol generation."""
    if version >= 2:
        envelope: dict[str, Any] = {
            "v": version,
            "id": request_id,
            "ok": True,
            "result": result.to_payload(),
        }
        if trace is not None:
            envelope["trace"] = trace
        if tenant is not None:
            envelope["tenant"] = tenant
        return envelope
    return {
        "id": request_id,
        "ok": True,
        "answer": result.answer,
        "raw": result.raw,
        "tokens": result.tokens,
        "calls": result.calls,
    }


def encode_error(
    error: ErrorInfo,
    request_id: Any,
    version: int,
    *,
    trace: str | None = None,
    tenant: str | None = None,
) -> dict[str, Any]:
    """Serialize a failure in the caller's protocol generation."""
    if version >= 2:
        envelope: dict[str, Any] = {
            "v": version,
            "id": request_id,
            "ok": False,
            "error": error.to_payload(),
        }
        if trace is not None:
            envelope["trace"] = trace
        if tenant is not None:
            envelope["tenant"] = tenant
        return envelope
    return {"id": request_id, "ok": False, "error": error.message}


def decode_response(payload: Any) -> TaskResult:
    """Parse a raw response object (either generation) into a result."""
    if not isinstance(payload, Mapping):
        raise ProtocolError("response must be a JSON object")
    request_id = payload.get("id")
    trace = payload.get("trace")
    trace_id = str(trace) if trace is not None else None
    tenant = payload.get("tenant")
    tenant_name = str(tenant) if tenant is not None else None
    if not payload.get("ok", False):
        return TaskResult(
            answer=None,
            id=request_id,
            trace_id=trace_id,
            tenant=tenant_name,
            error=ErrorInfo.from_payload(payload.get("error", "unknown error")),
        )
    if "result" in payload:  # v2
        result = TaskResult.from_payload(payload["result"], request_id=request_id)
        result.trace_id = trace_id
        result.tenant = tenant_name
        return result
    return TaskResult(  # v1 flat success
        answer=payload.get("answer"),
        raw=str(payload.get("raw", "")),
        tokens=int(payload.get("tokens", 0)),
        calls=int(payload.get("calls", 0)),
        id=request_id,
    )


__all__ = [
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "ParsedRequest",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_success",
    "parse_request",
    "request_version",
]
