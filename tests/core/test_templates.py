"""Unit tests for the prompt templates."""

import pytest

from repro.prompting import (
    CLOZE_BLANK,
    CLOZE_CONSTRUCTION,
    CLOZE_DEMONSTRATIONS,
    DATA_PARSING,
    DIRECT_ANSWER,
    INSTANCE_RETRIEVAL,
    META_RETRIEVAL,
    PromptTemplate,
    render_demonstrations,
)


def test_template_fields_listed():
    assert set(META_RETRIEVAL.fields) == {"task", "query", "candidates"}
    assert set(DIRECT_ANSWER.fields) == {"task", "context", "query"}


def test_render_rejects_missing_and_extra_fields():
    template = PromptTemplate("t", "{a} and {b}")
    with pytest.raises(KeyError):
        template.render(a=1)
    with pytest.raises(KeyError):
        template.render(a=1, b=2, c=3)
    assert template.render(a=1, b=2) == "1 and 2"


def test_meta_retrieval_template_wording_matches_paper():
    prompt = META_RETRIEVAL.render(task="data imputation", query="q", candidates="a, b")
    assert "Which attributes are helpful for the task and the query?" in prompt


def test_instance_retrieval_template_mentions_score_range():
    prompt = INSTANCE_RETRIEVAL.render(task="t", query="q", instances="1) x")
    assert "range from 0 to 3" in prompt


def test_data_parsing_template_wording():
    prompt = DATA_PARSING.render(serialized="a: 1")
    assert "convert the items into a textual format" in prompt


def test_cloze_construction_contains_demonstrations_and_trailing_colon():
    prompt = CLOZE_CONSTRUCTION.render(
        demonstrations=render_demonstrations(),
        task_description="data imputation which ...",
        context="ctx",
        query="q",
    )
    assert prompt.count("Claim:") >= len(CLOZE_DEMONSTRATIONS) + 1
    assert prompt.rstrip().endswith("Cloze question:")


def test_demonstration_bank_covers_main_tasks():
    tasks = {d.task for d in CLOZE_DEMONSTRATIONS}
    assert {"data imputation", "data transformation", "error detection", "entity resolution"} <= tasks
    # Each demonstration's cloze either carries a blank or a yes/no question.
    for demo in CLOZE_DEMONSTRATIONS:
        assert CLOZE_BLANK in demo.cloze or "Yes or No" in demo.cloze
