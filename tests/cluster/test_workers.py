"""Worker mechanics: bounded queues, lifecycle, and subprocess shards."""

import threading
import time

import pytest

from cluster_testing import RNG_FREE, PromptPureLLM, make_mixed_specs

from repro.api.protocol import encode_request
from repro.cluster import Router, SubprocessWorker, ThreadWorker, WorkerDeadError
from repro.core import UniDM
from repro.serving import ExecutionEngine, ServingService


def make_service() -> ServingService:
    return ServingService(UniDM(PromptPureLLM(), RNG_FREE), ExecutionEngine())


def wire(spec, request_id=0):
    return encode_request(spec, request_id=request_id, version=2)


# ------------------------------------------------------------- thread worker
def test_thread_worker_answers_batches_in_order():
    worker = ThreadWorker("w0", make_service())
    try:
        specs = make_mixed_specs(1)
        responses = worker.submit([wire(s, i) for i, s in enumerate(specs)])
        assert [r["id"] for r in responses] == list(range(len(specs)))
        assert all(r["ok"] for r in responses)
    finally:
        worker.close()


def test_thread_worker_bounded_queue_applies_backpressure():
    worker = ThreadWorker("w0", make_service(), queue_depth=1)
    try:
        specs = make_mixed_specs(1)[:2]
        outcomes: list = []

        def one_batch(spec):
            outcomes.append(worker.submit([wire(spec)]))

        threads = [
            threading.Thread(target=one_batch, args=(spec,)) for spec in specs * 4
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        # Every submission eventually completed despite the depth-1 queue.
        assert len(outcomes) == len(threads)
        assert all(batch[0]["ok"] for batch in outcomes)
    finally:
        worker.close()


def test_thread_worker_queue_depth_must_be_positive():
    with pytest.raises(ValueError):
        ThreadWorker("w0", make_service(), queue_depth=0)


def test_closed_thread_worker_raises_worker_dead():
    worker = ThreadWorker("w0", make_service())
    worker.close()
    assert worker.ping() is False
    with pytest.raises(WorkerDeadError):
        worker.submit([wire(make_mixed_specs(1)[0])])


def test_thread_worker_stats_expose_serving_internals():
    worker = ThreadWorker("w0", make_service())
    try:
        worker.submit([wire(make_mixed_specs(1)[0])])
        row = worker.stats()
        assert row.alive is True
        assert row.requests_served == 1
        # The bare PromptPureLLM has no cache: counters stay at their
        # unknown defaults rather than inventing numbers.
        assert row.cache_entries == -1
    finally:
        worker.close()


# --------------------------------------------------------- subprocess worker
def test_subprocess_cluster_round_trip_and_failover(tmp_path):
    specs = make_mixed_specs(2)
    router = Router.spawn(2, seed=0, cache_dir=str(tmp_path / "shards"))
    try:
        first = router.submit_specs(specs)
        assert all(result.error is None for result in first)
        assert len(first) == len(specs)

        # Kill one child ungracefully; the router must requeue onto the
        # survivor and still answer everything.
        victim_id = sorted(router.live_workers)[0]
        router.workers[victim_id].kill()
        deadline = time.monotonic() + 5
        while router.workers[victim_id].ping() and time.monotonic() < deadline:
            time.sleep(0.05)
        second = router.submit_specs(specs)
        assert len(second) == len(specs)
        assert all(result.error is None for result in second)
        stats = router.stats()
        assert stats.deaths == 1
        assert stats.requeues > 0
        assert victim_id not in router.live_workers
    finally:
        router.close()


def test_subprocess_worker_ping_and_close(tmp_path):
    worker = SubprocessWorker("w0", seed=0, cache_dir=str(tmp_path / "shard"))
    try:
        assert worker.ping() is True
        responses = worker.submit([wire(make_mixed_specs(1)[0])])
        assert responses[0]["ok"] is True
    finally:
        worker.close()
    assert worker.ping() is False
    with pytest.raises(WorkerDeadError):
        worker.submit([wire(make_mixed_specs(1)[0])])
