"""Records and tables — the relational elements of a data lake.

The paper formalises every lake element ``D_i`` as a relational table of
records; ``r[s]`` denotes the value of record ``r`` on attribute ``s``.  The
classes here provide exactly that addressing plus the small amount of
relational algebra (projection, selection, sampling) the UniDM pipeline and the
baselines need.  Missing values are represented by ``None`` (or the sentinel
string ``"?"`` when rendering prompts).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from .schema import Attribute, AttributeType, Schema

#: Values treated as "missing" throughout the library.
MISSING_VALUES = (None, "", "?", "nan", "NaN", "null", "NULL", "N/A", "NA")


def is_missing(value: Any) -> bool:
    """Return True when ``value`` should be treated as a missing cell."""
    if value is None:
        return True
    if isinstance(value, float):
        return value != value  # NaN
    if isinstance(value, str):
        return value.strip() in ("", "?") or value.strip().lower() in (
            "nan",
            "null",
            "n/a",
            "na",
            "none",
        )
    return False


class Record:
    """A single tuple of a table, addressable by attribute name.

    Records keep a reference to their schema so that ``record[s]`` mirrors the
    paper's ``r[s]`` notation and iteration preserves attribute order.
    """

    __slots__ = ("_schema", "_values", "record_id")

    def __init__(
        self,
        schema: Schema,
        values: Mapping[str, Any] | Sequence[Any],
        record_id: int | None = None,
    ):
        self._schema = schema
        if isinstance(values, Mapping):
            self._values = [values.get(name) for name in schema.names]
            unknown = set(values) - set(schema.names)
            if unknown:
                raise KeyError(f"values for unknown attributes: {sorted(unknown)}")
        else:
            values = list(values)
            if len(values) != len(schema):
                raise ValueError(
                    f"expected {len(schema)} values, got {len(values)}"
                )
            self._values = values
        self.record_id = record_id

    # -- mapping-ish protocol ------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    def __getitem__(self, attribute: str | Attribute) -> Any:
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        return self._values[self._schema.index_of(name)]

    def __setitem__(self, attribute: str | Attribute, value: Any) -> None:
        name = attribute.name if isinstance(attribute, Attribute) else attribute
        self._values[self._schema.index_of(name)] = value

    def __contains__(self, name: object) -> bool:
        return name in self._schema

    def __iter__(self) -> Iterator[str]:
        return iter(self._schema.names)

    def __len__(self) -> int:
        return len(self._schema)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return (
            self._schema.names == other._schema.names
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((tuple(self._schema.names), tuple(map(str, self._values))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pairs = ", ".join(f"{k}={v!r}" for k, v in self.items())
        return f"Record({pairs})"

    # -- convenience ----------------------------------------------------------
    def get(self, name: str, default: Any = None) -> Any:
        if name not in self._schema:
            return default
        return self[name]

    def items(self) -> list[tuple[str, Any]]:
        return list(zip(self._schema.names, self._values))

    def values(self) -> list[Any]:
        return list(self._values)

    def to_dict(self) -> dict[str, Any]:
        return dict(self.items())

    def missing_attributes(self) -> list[str]:
        """Names of attributes whose value is missing in this record."""
        return [name for name, value in self.items() if is_missing(value)]

    def project(self, names: Sequence[str]) -> "Record":
        """Return a copy of the record restricted to ``names``."""
        sub = self._schema.project(names)
        return Record(sub, [self[n] for n in names], record_id=self.record_id)

    def copy(self) -> "Record":
        return Record(self._schema, list(self._values), record_id=self.record_id)

    def with_value(self, name: str, value: Any) -> "Record":
        out = self.copy()
        out[name] = value
        return out


class Table:
    """A named relational table: a schema plus an ordered list of records."""

    def __init__(
        self,
        name: str,
        schema: Schema | Sequence[Attribute | str],
        records: Iterable[Record | Mapping[str, Any] | Sequence[Any]] = (),
        description: str = "",
    ):
        if not name:
            raise ValueError("table name must be non-empty")
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self.description = description
        self._records: list[Record] = []
        for rec in records:
            self.append(rec)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table(name={self.name!r}, attributes={self.schema.names}, "
            f"n_records={len(self)})"
        )

    # -- mutation -------------------------------------------------------------
    def append(self, record: Record | Mapping[str, Any] | Sequence[Any]) -> Record:
        """Append a record (coercing dicts / sequences) and return it."""
        if isinstance(record, Record):
            if record.schema.names != self.schema.names:
                record = Record(self.schema, record.to_dict(), record.record_id)
        else:
            record = Record(self.schema, record)
        if record.record_id is None:
            record.record_id = len(self._records)
        self._records.append(record)
        return record

    def extend(self, records: Iterable[Record | Mapping[str, Any]]) -> None:
        for rec in records:
            self.append(rec)

    # -- relational operations --------------------------------------------------
    @property
    def records(self) -> list[Record]:
        return list(self._records)

    def column(self, name: str) -> list[Any]:
        """All values of attribute ``name`` in record order."""
        return [r[name] for r in self._records]

    def distinct(self, name: str, drop_missing: bool = True) -> list[Any]:
        """Distinct values of a column, preserving first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            if drop_missing and is_missing(value):
                continue
            seen.setdefault(value, None)
        return list(seen)

    def select(self, predicate: Callable[[Record], bool]) -> "Table":
        """Return a new table containing the records matching ``predicate``."""
        out = Table(self.name, self.schema, description=self.description)
        for r in self._records:
            if predicate(r):
                out.append(r.copy())
        return out

    def project(self, names: Sequence[str]) -> "Table":
        """Return a new table restricted to the given attributes."""
        out = Table(self.name, self.schema.project(names), description=self.description)
        for r in self._records:
            out.append(r.project(names))
        return out

    def head(self, n: int) -> "Table":
        out = Table(self.name, self.schema, description=self.description)
        for r in self._records[:n]:
            out.append(r.copy())
        return out

    def partitions(self, size: int) -> Iterator["Table"]:
        """Yield consecutive row chunks of ``size`` as stand-alone tables.

        The last partition may be shorter; records keep their original
        ``record_id``, so per-partition results can be written back to the
        source rows.  This is the streaming unit of the flow executor: a large
        table is processed partition-at-a-time so that prompt material is
        bounded by the partition size, never the table size.
        """
        if size < 1:
            raise ValueError("partition size must be positive")
        for start in range(0, len(self._records), size):
            out = Table(self.name, self.schema, description=self.description)
            for r in self._records[start : start + size]:
                out.append(r.copy())
            yield out

    @classmethod
    def concat(cls, parts: Sequence["Table"], name: str | None = None) -> "Table":
        """Stitch same-schema tables (e.g. processed partitions) back together."""
        if not parts:
            raise ValueError("concat needs at least one table")
        first = parts[0]
        out = cls(name or first.name, first.schema, description=first.description)
        for part in parts:
            if part.schema.names != first.schema.names:
                raise ValueError(
                    f"cannot concat tables with different columns: "
                    f"{part.schema.names} vs {first.schema.names}"
                )
            for r in part:
                out.append(r.copy())
        return out

    def with_column(
        self,
        name: str,
        values: Sequence[Any] | None = None,
        default: Any = None,
        attribute: Attribute | None = None,
    ) -> "Table":
        """Return a copy with column ``name`` added (or replaced, if present).

        ``values`` must align with the records when given; otherwise every
        cell gets ``default``.  Derived columns written by flow operators
        (error flags, extracted attributes, joined columns) enter tables
        through here, which keeps schema and rows consistent.
        """
        if values is not None and len(values) != len(self._records):
            raise ValueError(
                f"column {name!r}: got {len(values)} values for "
                f"{len(self._records)} records"
            )
        attr = attribute or Attribute(name)
        if name in self.schema:
            schema = Schema(
                [attr if a.name == name else a for a in self.schema.attributes]
            )
        else:
            schema = Schema(list(self.schema.attributes) + [attr])
        out = Table(self.name, schema, description=self.description)
        for i, r in enumerate(self._records):
            row = r.to_dict()
            row[name] = values[i] if values is not None else default
            out.append(Record(schema, row, record_id=r.record_id))
        return out

    def copy(self) -> "Table":
        out = Table(self.name, self.schema, description=self.description)
        for r in self._records:
            out.append(r.copy())
        return out

    # -- statistics -------------------------------------------------------------
    def missing_count(self, name: str | None = None) -> int:
        """Number of missing cells, optionally restricted to one attribute."""
        names = [name] if name else self.schema.names
        return sum(
            1 for r in self._records for n in names if is_missing(r[n])
        )

    def value_counts(self, name: str) -> dict[Any, int]:
        counts: dict[Any, int] = {}
        for value in self.column(name):
            if is_missing(value):
                continue
            counts[value] = counts.get(value, 0) + 1
        return counts

    def mode(self, name: str) -> Any:
        """Most frequent non-missing value of a column (ties -> first seen)."""
        counts = self.value_counts(name)
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: kv[1])[0]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [r.to_dict() for r in self._records]

    @classmethod
    def from_dicts(
        cls,
        name: str,
        rows: Sequence[Mapping[str, Any]],
        schema: Schema | None = None,
        description: str = "",
    ) -> "Table":
        """Build a table from a list of dicts, inferring the schema if needed."""
        if schema is None:
            names: dict[str, None] = {}
            for row in rows:
                for key in row:
                    names.setdefault(key, None)
            schema = Schema([Attribute(n, _infer_type(rows, n)) for n in names])
        table = cls(name, schema, description=description)
        for row in rows:
            table.append({k: row.get(k) for k in schema.names})
        return table


def _infer_type(rows: Sequence[Mapping[str, Any]], name: str) -> AttributeType:
    """Very small type inference: numeric if every non-missing value is numeric."""
    saw_value = False
    for row in rows:
        value = row.get(name)
        if is_missing(value):
            continue
        saw_value = True
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            try:
                float(str(value))
            except (TypeError, ValueError):
                return AttributeType.TEXT
    return AttributeType.NUMERIC if saw_value else AttributeType.TEXT
