"""Unit tests for the entity-resolution baselines (Magellan, Ditto)."""

import pytest

from repro.baselines import DittoMatcher, MagellanMatcher
from repro.eval import evaluate
from repro.llm import LabeledPair


def test_ditto_requires_training_data():
    with pytest.raises(ValueError):
        DittoMatcher().fit([])
    with pytest.raises(RuntimeError):
        DittoMatcher().predict_pair("a", "b")


def test_ditto_learns_a_sensible_rule(walmart_dataset):
    matcher = DittoMatcher(seed=0).fit(walmart_dataset.train_pairs)
    positive = walmart_dataset.train_pairs[[p.label for p in walmart_dataset.train_pairs].index(True)]
    assert matcher.predict_pair(positive.left, positive.left) is True
    assert matcher.predict_pair("title: sony mouse", "title: completely different fridge 900") is False


def test_ditto_and_magellan_scores_on_benchmark(walmart_dataset):
    ditto = evaluate(DittoMatcher(seed=0), walmart_dataset)
    magellan = evaluate(MagellanMatcher(seed=0), walmart_dataset)
    assert ditto.score >= magellan.score
    assert ditto.score > 0.6


def test_magellan_threshold_fit():
    pairs = [
        LabeledPair("title: alpha beta gamma", "title: alpha beta gamma", True),
        LabeledPair("title: alpha beta gamma", "title: delta epsilon zeta", False),
    ] * 10
    matcher = MagellanMatcher(seed=0).fit(pairs)
    assert matcher.threshold is not None
    assert 0.0 <= matcher.threshold <= 1.0


def test_er_baselines_require_train_split(beer_dataset):
    stripped = type(beer_dataset)(
        name=beer_dataset.name,
        task_type=beer_dataset.task_type,
        tables=beer_dataset.tables,
        knowledge=beer_dataset.knowledge,
        tasks=list(beer_dataset.tasks),
        ground_truth=list(beer_dataset.ground_truth),
        train_pairs=[],
    )
    with pytest.raises(ValueError):
        DittoMatcher().predict_dataset(stripped)
    with pytest.raises(ValueError):
        MagellanMatcher().predict_dataset(stripped)
