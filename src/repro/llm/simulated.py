"""The simulated language model.

``SimulatedLLM`` is the offline stand-in for the commercial LLM APIs the paper
uses (see DESIGN.md, substitution table).  It exposes exactly the same
prompt-in / text-out interface as any other :class:`~repro.llm.base.LanguageModel`
and *only* sees the prompt text: every behaviour — which attributes it deems
helpful, how it scores candidate instances, how it verbalises tabular context,
what cloze question it writes, and how accurate its final answer is — is
derived from parsing that text, from the :class:`WorldKnowledge` store, and
from the :class:`ModelProfile` capability parameters.
"""

from __future__ import annotations

import numpy as np

from ..datalake.text import attribute_name_similarity, normalize, string_similarity
from ..prompting.templates import CLOZE_BLANK
from .answering import AnswerEngine
from .base import LanguageModel
from .knowledge import WorldKnowledge
from .profiles import DEFAULT_MODEL, ModelProfile, get_profile
from .prompt_parser import (
    ParsedClozeConstruction,
    ParsedDataParsing,
    ParsedInstanceRetrieval,
    ParsedMetaRetrieval,
    PromptKind,
    classify,
    parse_answer,
    parse_cloze_construction,
    parse_data_parsing,
    parse_instance_retrieval,
    parse_meta_retrieval,
)
from .tokenizer import SimpleTokenizer


class SimulatedLLM(LanguageModel):
    """Deterministic (seeded) prompt interpreter standing in for a hosted LLM."""

    def __init__(
        self,
        profile: ModelProfile | str = DEFAULT_MODEL,
        knowledge: WorldKnowledge | None = None,
        seed: int = 0,
        tokenizer: SimpleTokenizer | None = None,
    ):
        super().__init__(tokenizer=tokenizer)
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.knowledge = knowledge if knowledge is not None else WorldKnowledge()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.name = self.profile.name
        self._engine = AnswerEngine(self.profile, self.knowledge, self.rng)

    # ------------------------------------------------------------------ routing
    def complete_batch(self, prompts, kind: str = "other"):
        """Vectorized batch entry point: interpret each unique prompt once.

        The micro-batcher coalesces identical prompts from concurrent tasks
        (e.g. the same metadata-retrieval prompt for every record of one
        column); computing per *unique* prompt amortises the simulated model's
        parsing and knowledge lookups across the whole batch.  Usage is still
        recorded per requested prompt, mirroring what a billed API would
        charge for a batched endpoint.
        """
        memo: dict[str, str] = {}
        completions = []
        for prompt in prompts:
            if prompt not in memo:
                memo[prompt] = self._complete_text(prompt)
            completions.append(self._record(prompt, memo[prompt], kind))
        return completions

    def _complete_text(self, prompt: str) -> str:
        kind = classify(prompt)
        if kind is PromptKind.META_RETRIEVAL:
            return self._select_attributes(parse_meta_retrieval(prompt))
        if kind is PromptKind.INSTANCE_RETRIEVAL:
            return self._score_instances(parse_instance_retrieval(prompt))
        if kind is PromptKind.DATA_PARSING:
            return self._parse_data(parse_data_parsing(prompt))
        if kind is PromptKind.CLOZE_CONSTRUCTION:
            return self._construct_cloze(parse_cloze_construction(prompt))
        return self._engine.answer(parse_answer(prompt))

    # -------------------------------------------------------- meta-wise retrieval
    def _select_attributes(self, request: ParsedMetaRetrieval) -> str:
        """Pick the candidate attributes most helpful for the target attribute.

        The score blends the knowledge store's attribute-link graph (semantic
        relatedness learned from the corpus) with surface name similarity, plus
        capability-scaled noise; mirrors how a strong LLM reliably picks
        ``country`` for ``timezone`` while a weak one sometimes picks
        ``population``.
        """
        target_attribute = request.query.rsplit(",", 1)[-1].strip()
        noise_scale = 0.25 * (1.0 - self.profile.capability)
        scored: list[tuple[float, str]] = []
        for candidate in request.candidates:
            score = (
                0.75 * self.knowledge.attribute_link(candidate, target_attribute)
                + 0.20 * attribute_name_similarity(candidate, target_attribute)
                + float(self.rng.normal(0.0, noise_scale))
            )
            scored.append((score, candidate))
        scored.sort(key=lambda pair: -pair[0])
        helpful = [name for score, name in scored if score >= 0.30]
        if not helpful and scored:
            helpful = [scored[0][1]]
        return ", ".join(helpful[:3])

    # ---------------------------------------------------- instance-wise retrieval
    def _score_instances(self, request: ParsedInstanceRetrieval) -> str:
        """Score each candidate instance 0-3 for relevance to the target query."""
        entity = request.query.split(",", 1)[0].strip()
        entity_facts = {
            fact.relation: normalize(fact.value)
            for fact in self.knowledge.facts_about(entity)
        }
        lines = []
        for index, text in request.instances:
            subject = text.split(",", 1)[0].split(":", 1)[-1].strip() or text
            relatedness = self._knowledge_relatedness(entity_facts, subject)
            surface = 0.5 * string_similarity(text, entity) + 0.5 * string_similarity(
                subject, entity
            )
            noise = float(self.rng.normal(0.0, 0.12 * (1.0 - self.profile.capability) + 0.03))
            relevance = 0.65 * relatedness + 0.45 * surface + noise
            score = int(np.clip(round(3 * relevance), 0, 3))
            lines.append(f"{index}: {score}")
        return "\n".join(lines)

    def _knowledge_relatedness(
        self, entity_facts: dict[str, str], subject: str
    ) -> float:
        """Fraction of the target entity's recalled facts shared by ``subject``."""
        if not entity_facts:
            return 0.0
        subject_facts = {
            fact.relation: (normalize(fact.value), fact.prevalence)
            for fact in self.knowledge.facts_about(subject)
        }
        if not subject_facts:
            return 0.0
        shared = 0
        considered = 0
        for relation, value in entity_facts.items():
            if relation not in subject_facts:
                continue
            other_value, prevalence = subject_facts[relation]
            recall = self.profile.knowledge_recall * prevalence
            if self.rng.random() > recall:
                continue  # the model fails to recall this fact for comparison
            considered += 1
            if other_value == value:
                shared += 1
        if considered == 0:
            return 0.0
        return shared / considered

    # ----------------------------------------------------------- context parsing
    def _parse_data(self, request: ParsedDataParsing) -> str:
        """Rewrite serialized rows into fluent sentences via relation templates."""
        sentences: list[str] = []
        for row in request.rows:
            if not row:
                continue
            subject = row[0][1]
            if len(row) == 1:
                sentences.append(f"{subject}.")
                continue
            for attribute, value in row[1:]:
                sentence = self.knowledge.render_fact(subject, attribute, value)
                if not sentence.endswith("."):
                    sentence += "."
                sentences.append(sentence)
        return " ".join(sentences)

    # --------------------------------------------------------- cloze construction
    def _construct_cloze(self, request: ParsedClozeConstruction) -> str:
        """Turn a (task, context, query) claim into a cloze question.

        The output formats intentionally mirror the demonstration bank in
        Appendix A so that the final answer prompt is parseable back by
        :func:`repro.llm.prompt_parser.parse_answer`.
        """
        context = request.context.strip()
        query = request.query.strip()
        task = request.task_name
        prefix = f"The task is to {_task_gloss(task)}. " if task != "unknown" else ""
        # The question starts on its own line so that serialized (one row per
        # line) context does not run into the cloze sentence.
        context_part = f"{context}\n" if context else ""

        if task == "data imputation":
            entity, attribute = _split_entity_attribute(query)
            question = f"The {attribute} of {entity} is {CLOZE_BLANK}."
        elif task == "data transformation":
            source = query.rstrip("?").rstrip(":").strip()
            question = f"{source} can be transformed to {CLOZE_BLANK}."
        elif task == "error detection":
            attribute, value = _split_attribute_value(query)
            question = (
                f'It is required to identify if there is an error in the '
                f'{attribute} "{value}". Is there an error in the {attribute}? '
                "Yes or No."
            )
        elif task == "entity resolution":
            entity_a, entity_b = _split_entities(query)
            question = (
                f"Entity A is {entity_a}, whereas Entity B is {entity_b}. "
                "Are these two entities the same? Yes or No."
            )
        elif task == "table question answering":
            question = f"Question: {query} The answer is {CLOZE_BLANK}."
        elif task == "join discovery":
            question = "Are the two columns joinable? Yes or No."
        elif task == "information extraction":
            question = f"The {query} is {CLOZE_BLANK}."
        else:
            question = f"{query} {CLOZE_BLANK}."
        return f"{prefix}{context_part}{question}".strip()


def _task_gloss(task: str) -> str:
    glosses = {
        "data imputation": "impute the missing value",
        "data transformation": "transform the value into the required format",
        "error detection": "detect whether the value contains an error",
        "entity resolution": "decide whether two records refer to the same entity",
        "table question answering": "answer the question from the table",
        "join discovery": "decide whether two columns are joinable",
        "information extraction": "extract the attribute from the document",
    }
    return glosses.get(task, "solve the data manipulation task")


def _split_entity_attribute(query: str) -> tuple[str, str]:
    if "," in query:
        entity, attribute = query.rsplit(",", 1)
        return entity.strip(), attribute.strip()
    return query.strip(), "value"


def _split_attribute_value(query: str) -> tuple[str, str]:
    if ":" in query:
        attribute, value = query.split(":", 1)
        return attribute.strip(), value.strip().rstrip("?").strip()
    return "value", query.strip().rstrip("?")


def _split_entities(query: str) -> tuple[str, str]:
    import re

    match = re.search(r"Entity A is\s*(.*?)[,;]\s*Entity B is\s*(.*)$", query, re.DOTALL)
    if match:
        return match.group(1).strip(), match.group(2).strip().rstrip("?")
    parts = query.split(";", 1)
    if len(parts) == 2:
        return parts[0].strip(), parts[1].strip()
    return query.strip(), query.strip()
