"""Snapshot fetching shared by ``repro stats`` / ``top`` / ``doctor``.

Two transports reach a serving front-end's observability state:

* the **main port** — a :class:`~repro.api.stats_spec.StatsSpec` request
  over the line protocol (supports ``prefix``/``tenant``/``reset``);
* the **stats side channel** (``serve --stats-port``) — either the legacy
  one-JSON-line read or an HTTP GET (``/``, ``/metrics``, ``/healthz``,
  ``/readyz``, ``/doctor``), readable even while the main port is
  saturated.

Every failure mode — connection refused, timeout, a non-HTTP peer, garbage
JSON, a JSON payload that is not an object — raises
:class:`StatsUnreachable` with a message naming the endpoint and the
reason, so CLI commands print one line and exit non-zero instead of
spilling a traceback.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class StatsUnreachable(Exception):
    """A stats/probe endpoint could not be read; the message says why."""


def fetch_snapshot(
    host: str,
    *,
    port: int = 8765,
    stats_port: int | None = None,
    timeout: float = 10.0,
    prefix: str = "",
    tenant: str | None = None,
    reset: bool = False,
) -> dict[str, Any]:
    """One stats snapshot from a running front-end (dict, or raises).

    With ``stats_port`` the side channel is read (legacy one-line JSON
    dialect — ``prefix``/``tenant``/``reset`` are main-port-only and
    ignored there); otherwise a ``stats`` request goes through the main
    port.
    """
    if stats_port is not None:
        endpoint = f"stats port {host}:{stats_port}"
        try:
            with socket.create_connection((host, stats_port), timeout=timeout) as conn:
                line = conn.makefile("r", encoding="utf-8").readline()
        except OSError as exc:
            raise StatsUnreachable(f"cannot reach {endpoint}: {exc}") from exc
        try:
            snapshot = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StatsUnreachable(f"{endpoint} answered bad JSON: {exc}") from exc
    else:
        from ..api import ApiError, Client

        endpoint = f"service {host}:{port}"
        try:
            snapshot = Client.remote(host, port, timeout=timeout).stats(
                prefix=prefix, tenant=tenant, reset=reset
            )
        except ApiError as exc:
            # TransportError (unreachable) and structured error responses
            # (e.g. an older service without the stats type) alike.
            raise StatsUnreachable(str(exc)) from exc
    if not isinstance(snapshot, dict):
        raise StatsUnreachable(
            f"{endpoint} answered {type(snapshot).__name__}, expected a JSON object"
        )
    return snapshot


def http_get(
    host: str, port: int, path: str, *, timeout: float = 10.0
) -> tuple[int, str]:
    """Minimal ``GET`` against the stats side channel: ``(status, body)``."""
    endpoint = f"stats port {host}:{port}"
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.sendall(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
            )
            raw = b""
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                raw += chunk
    except OSError as exc:
        raise StatsUnreachable(f"cannot reach {endpoint}: {exc}") from exc
    head, sep, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0]
    parts = status_line.split()
    if not sep or len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise StatsUnreachable(f"{endpoint} did not speak HTTP")
    try:
        status = int(parts[1])
    except ValueError:
        raise StatsUnreachable(f"{endpoint} answered a malformed status line") from None
    return status, body.decode("utf-8", "replace")


def fetch_probe(
    host: str, port: int, path: str, *, timeout: float = 10.0
) -> tuple[int, dict[str, Any]]:
    """``GET`` a JSON endpoint (``/healthz``/``/readyz``/``/doctor``).

    Returns ``(http_status, payload)``; a non-object or unparseable body
    raises :class:`StatsUnreachable`.
    """
    status, body = http_get(host, port, path, timeout=timeout)
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as exc:
        raise StatsUnreachable(
            f"stats port {host}:{port}{path} answered bad JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise StatsUnreachable(
            f"stats port {host}:{port}{path} answered "
            f"{type(payload).__name__}, expected a JSON object"
        )
    return status, payload


def fetch_prometheus(host: str, port: int, *, timeout: float = 10.0) -> str:
    """``GET /metrics`` text exposition from the stats side channel."""
    status, body = http_get(host, port, "/metrics", timeout=timeout)
    if status != 200:
        raise StatsUnreachable(
            f"stats port {host}:{port}/metrics answered HTTP {status}"
        )
    return body


__all__ = [
    "StatsUnreachable",
    "fetch_probe",
    "fetch_prometheus",
    "fetch_snapshot",
    "http_get",
]
