"""Span tests: nesting, sampling, the kill switch, and distributed trees.

Acceptance scenarios of the tracing tentpole: a 2-worker cluster round trip
yields ONE span tree rooted at the client's ``client.submit`` span, and
trace/span ids survive the TCP hop into spawned subprocess workers (spans
from several pids reassemble into one waterfall via the shared JSONL sink).
"""

import os

import pytest

from repro.api import Client, TransformationSpec
from repro.obs import (
    Span,
    Trace,
    configure_default_event_log,
    render_waterfall,
    set_tracing,
    span,
    remote_span,
    tracing_enabled,
)
from repro.obs.events import read_events
from repro.obs.span import new_span_id

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


@pytest.fixture
def event_log():
    """A fresh ring-only default event log (restored state is a fresh one too)."""
    log = configure_default_event_log(capacity=8192)
    yield log
    configure_default_event_log(capacity=8192)


def _span_events(log, trace_id):
    return log.events(trace=trace_id, kind="span")


def _tree_check(events):
    """Every span's parent is either None or another span of the same trace."""
    by_id = {e["span"]: e for e in events}
    roots = [e for e in events if e["parent"] is None]
    for event in events:
        if event["parent"] is not None:
            assert event["parent"] in by_id, f"orphan span {event}"
    return by_id, roots


# ------------------------------------------------------------------- basics
def test_span_ids_are_pid_prefixed_and_unique(event_log):
    ids = {new_span_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(i.split("-")[0] == f"{os.getpid():x}" for i in ids)


def test_span_context_nests_and_emits(event_log):
    with Trace.start() as trace:
        with span("outer", a=1) as outer:
            assert Span.current() is outer
            assert outer.trace_id == trace.trace_id
            with span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == trace.trace_id
            assert Span.current() is outer
    assert Span.current() is None
    events = _span_events(event_log, trace.trace_id)
    # Children finish (and emit) before their parents.
    assert [e["name"] for e in events] == ["inner", "outer"]
    assert events[1]["attrs"] == {"a": 1}
    assert all(e["status"] == "ok" and e["dur"] >= 0 for e in events)


def test_span_marks_error_status_on_exception(event_log):
    with Trace.start() as trace:
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
    [event] = _span_events(event_log, trace.trace_id)
    assert event["status"] == "error"


def test_span_finish_is_idempotent(event_log):
    sp = Span.begin("once", trace_id="aa" * 8)
    sp.finish()
    first_end = sp.end
    sp.finish(status="error")
    assert sp.end == first_end and sp.status == "ok"
    assert len(_span_events(event_log, "aa" * 8)) == 1


def test_kill_switch_makes_spans_noops(event_log):
    assert tracing_enabled()
    set_tracing(False)
    try:
        assert Span.begin("nope") is None
        with span("nope") as sp:
            assert sp is None
    finally:
        set_tracing(True)
    assert len(event_log) == 0


def test_sampled_out_trace_produces_no_spans():
    log = configure_default_event_log(capacity=64, sample_rate=0.0)
    try:
        assert Span.begin("unsampled", trace_id="ab" * 8) is None
        with span("unsampled", trace_id="ab" * 8) as sp:
            assert sp is None
        assert len(log) == 0
    finally:
        configure_default_event_log(capacity=8192)


def test_remote_span_reroots_trace_and_parent(event_log):
    with remote_span("server.side", trace_id="cd" * 8, parent_id="p-1") as sp:
        assert Trace.current_id() == "cd" * 8
        assert sp.trace_id == "cd" * 8 and sp.parent_id == "p-1"
        with span("nested") as child:
            assert child.trace_id == "cd" * 8
            assert child.parent_id == sp.span_id
    assert Trace.current_id() is None
    events = _span_events(event_log, "cd" * 8)
    assert [e["name"] for e in events] == ["nested", "server.side"]


# ------------------------------------------------------------- local client
def test_local_client_produces_one_tree_through_the_llm(event_log):
    with Client.local(seed=0) as client:
        with Trace.start() as trace:
            results = client.submit_many([SPEC, SPEC])
        assert all(r.error is None for r in results)
        assert client.last_trace() == trace.trace_id
        events = client.events(kind="span")
    by_id, roots = _tree_check(events)
    assert len(roots) == 1 and roots[0]["name"] == "client.submit"
    names = {e["name"] for e in events}
    assert {
        "client.submit",
        "service.batch",
        "engine.run",
        "engine.task",
        "batcher.wait",
        "llm.call",
        "cache.lookup",
        "llm.backend",
    } <= names


# ------------------------------------------------------------------ cluster
def test_two_worker_cluster_roundtrip_is_one_tree(event_log):
    specs = [
        TransformationSpec(
            value=f"199904{10 + i:02d}", examples=[["20000101", "2000-01-01"]]
        )
        for i in range(4)
    ]
    with Client.cluster(workers=2, seed=0) as client:
        with Trace.start() as trace:
            results = client.submit_many(specs)
        assert all(r.error is None for r in results)
    events = _span_events(event_log, trace.trace_id)
    by_id, roots = _tree_check(events)

    # One tree, rooted at the client's submit span.
    assert len(roots) == 1
    root = roots[0]
    assert root["name"] == "client.submit"
    names = {e["name"] for e in events}
    assert {"router.submit", "router.dispatch", "service.batch", "llm.call"} <= names

    # Every span's window sits inside the root's window (monotonic clock is
    # shared across threads, so this is exact, not approximate).
    root_start = root["start"]
    root_end = root["start"] + root["dur"]
    for event in events:
        assert event["start"] >= root_start - 1e-6
        assert event["start"] + event["dur"] <= root_end + 1e-6

    # The waterfall names the full path and marks a critical path.
    rendered = render_waterfall(event_log.events(), trace.trace_id)
    assert rendered.splitlines()[0].startswith(f"trace {trace.trace_id}")
    assert "*client.submit" in rendered
    assert "router.dispatch" in rendered and "llm.call" in rendered


def test_span_ids_survive_the_subprocess_tcp_hop(tmp_path, monkeypatch):
    events_file = tmp_path / "events.jsonl"
    monkeypatch.setenv("REPRO_EVENTS_FILE", str(events_file))
    # Workers inherit the environment: make sure no leaked sampling or
    # rotation knob can silently drop this trace's worker-side spans (a
    # small inherited REPRO_EVENTS_MAX_BYTES makes workers rotate the
    # shared file out from under the assertions below).
    monkeypatch.delenv("REPRO_EVENTS_SAMPLE", raising=False)
    monkeypatch.delenv("REPRO_EVENTS_MAX_BYTES", raising=False)
    monkeypatch.delenv("REPRO_EVENTS_KEEP", raising=False)
    configure_default_event_log(path=events_file)
    try:
        with Client.cluster(workers=2, mode="process", seed=0) as client:
            with Trace.start() as trace:
                results = client.submit_many(
                    [
                        TransformationSpec(
                            value=f"199904{10 + i:02d}",
                            examples=[["20000101", "2000-01-01"]],
                        )
                        for i in range(3)
                    ]
                )
            assert all(r.error is None for r in results)
    finally:
        configure_default_event_log(capacity=8192)

    events = [
        e
        for e in read_events(events_file)
        if e.get("kind") == "span" and e.get("trace") == trace.trace_id
    ]
    by_id, roots = _tree_check(events)
    assert len(roots) == 1 and roots[0]["name"] == "client.submit"

    # Spans were produced by the client AND at least one worker process
    # (span ids are pid-prefixed), yet they stitch into one tree: the
    # worker-side service.batch spans' parents are router.dispatch span ids
    # minted in this process and carried over the wire envelope.
    pids = {e["span"].split("-")[0] for e in events}
    assert len(pids) >= 2, f"expected spans from several processes, got {pids}"
    dispatch_ids = {e["span"] for e in events if e["name"] == "router.dispatch"}
    batches = [e for e in events if e["name"] == "service.batch"]
    assert batches and all(e["parent"] in dispatch_ids for e in batches)
    worker_pid = {e["span"].split("-")[0] for e in batches}
    assert worker_pid.isdisjoint({f"{os.getpid():x}"})

    rendered = render_waterfall(events, trace.trace_id)
    for name in ("client.submit", "router.dispatch", "service.batch", "llm.call"):
        assert name in rendered


# ---------------------------------------------------------------------- CLI
def test_cli_trace_renders_waterfall_from_events_file(tmp_path, capsys):
    from repro.__main__ import main
    from repro.obs.events import EventLog

    trace = "ab" * 8
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=64, path=path)
    log.emit(
        "span", trace=trace, span="1-1", parent=None,
        name="root", start=1.0, dur=0.01, status="ok",
    )
    log.emit(
        "span", trace=trace, span="1-2", parent="1-1",
        name="child", start=1.001, dur=0.002, status="ok",
    )
    log.close()
    assert main(["trace", trace, "--events", str(path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith(f"trace {trace}")
    assert "*root" in out and "child" in out


def test_cli_trace_falls_back_to_the_in_memory_ring(
    event_log, monkeypatch, capsys
):
    from repro.__main__ import main

    monkeypatch.delenv("REPRO_EVENTS_FILE", raising=False)
    with Client.local(seed=0) as client:
        with Trace.start() as trace:
            client.submit(SPEC)
    assert main(["trace", trace.trace_id]) == 0
    out = capsys.readouterr().out
    assert "client.submit" in out and "llm.call" in out


def test_cli_trace_unreadable_events_file_fails_cleanly(tmp_path, capsys):
    from repro.__main__ import main

    assert main(["trace", "ab" * 8, "--events", str(tmp_path / "gone.jsonl")]) == 1
    assert "cannot read event log" in capsys.readouterr().err
