"""Hierarchical spans nested under the :class:`~repro.obs.trace.Trace` id.

A span is one timed unit of work — ``client.submit``, ``router.dispatch``,
``engine.task``, ``llm.call`` — carrying its trace id, its own span id, and
the span id of its parent.  In-process nesting rides the same contextvar
mechanism as :class:`~repro.obs.trace.Trace`; cross-process nesting rides
the v2 wire envelope (optional ``"span"`` key = parent span id), so a
cluster request yields one coherent tree spanning client, router, and
subprocess workers.

Design notes:

* **Clock** — all timestamps are ``time.monotonic()``.  On Linux that is
  ``CLOCK_MONOTONIC``, which is system-wide per boot, so offsets computed
  across local processes line up in one waterfall.  Never the wall clock
  here (enforced by ``scripts/check_monotonic.py``).
* **Ids** — ``new_span_id()`` is ``"<pid:x>-<counter:x>"``: unique across
  the local process tree without an entropy syscall per span, which keeps
  the instrumentation overhead inside the ≤10 % bench budget.
* **Sampling** — ``Span.begin`` consults the default event log's head-based
  verdict for the trace; an unsampled trace produces *no* span objects at
  all (in any process — the verdict is deterministic by id), so disabled
  and sampled-out paths cost one dict lookup and one hash.
* **Kill switch** — ``set_tracing(False)`` (or ``REPRO_TRACING=0``) makes
  every ``begin``/``span`` a no-op returning ``None``; instrumentation
  sites must tolerate a ``None`` span.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.events import get_default_event_log
from repro.obs.trace import Trace, new_trace_id

ENV_TRACING = "REPRO_TRACING"

_enabled = os.environ.get(ENV_TRACING, "1").strip().lower() not in {"0", "false", "off"}
_counter = itertools.count(1)
_current_span: ContextVar["Span | None"] = ContextVar("repro_span", default=None)

# The pid prefix of span ids is cached (one getpid syscall + format per
# process instead of per span); a forked child re-stamps it so its ids stay
# distinct from the parent's.
_pid_prefix = f"{os.getpid():x}-"


def _refresh_pid_prefix() -> None:
    global _pid_prefix, _counter
    _pid_prefix = f"{os.getpid():x}-"
    _counter = itertools.count(1)


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_refresh_pid_prefix)


def tracing_enabled() -> bool:
    """Whether span creation is currently on."""
    return _enabled


def set_tracing(enabled: bool) -> None:
    """Flip the process-wide span kill switch (benchmarks, incident response)."""
    global _enabled
    _enabled = bool(enabled)


def new_span_id() -> str:
    """A span id unique across the local process tree (``pid-counter``)."""
    return f"{_pid_prefix}{next(_counter):x}"


@dataclass(slots=True)
class Span:
    """One timed unit of work within a trace.

    Mutable on purpose: ``finish`` stamps the end time and status, then
    emits the completed span to the default event log exactly once.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None = None
    start: float = 0.0
    end: float | None = None
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    # ----------------------------------------------------------- context API
    @classmethod
    def current(cls) -> "Span | None":
        """The span bound to the current context, if any."""
        return _current_span.get()

    @classmethod
    def current_id(cls) -> str | None:
        span = _current_span.get()
        return span.span_id if span is not None else None

    @classmethod
    def begin(
        cls,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> "Span | None":
        """Start a span, or return ``None`` when tracing is off/sampled out.

        The parent defaults to the context-bound span (inheriting its trace
        id); the trace defaults to the bound :class:`Trace` or a fresh id.
        Explicit ``trace_id``/``parent_id`` override both — that is how ids
        arriving over the wire re-root a remote subtree.
        """
        if not _enabled:
            return None
        context_parent = _current_span.get()
        if parent_id is None and context_parent is not None:
            parent_id = context_parent.span_id
            if trace_id is None:
                trace_id = context_parent.trace_id
        if trace_id is None:
            trace_id = Trace.current_id() or new_trace_id()
        if not get_default_event_log().sampled(trace_id):
            return None
        return cls(
            name=name,
            trace_id=trace_id,
            span_id=new_span_id(),
            parent_id=parent_id,
            start=time.monotonic(),
            attrs=dict(attrs) if attrs else {},
        )

    # ------------------------------------------------------------- lifecycle
    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def finish(self, status: str | None = None, **attrs: Any) -> None:
        """Stamp the end time and emit once; later calls are no-ops."""
        if self.end is not None:
            return
        self.end = time.monotonic()
        if status is not None:
            self.status = status
        if attrs:
            self.attrs.update(attrs)
        get_default_event_log().emit_span(self)

    @contextmanager
    def bind(self) -> Iterator["Span"]:
        """Make this span the context parent for nested ``Span.begin`` calls."""
        token = _current_span.set(self)
        try:
            yield self
        finally:
            _current_span.reset(token)


class _SpanContext:
    """Open, bind, and finish a span around a block.

    A hand-rolled context manager rather than ``@contextmanager``: it runs
    once per span on every hot path, and skipping the generator machinery
    (and the nested ``bind()`` generator) roughly halves the per-span cost —
    which is what keeps the traced/untraced benchmark ratio inside its cap.
    """

    __slots__ = ("_name", "_trace_id", "_parent_id", "_attrs", "_span", "_token")

    def __init__(
        self,
        name: str,
        trace_id: str | None,
        parent_id: str | None,
        attrs: dict[str, Any],
    ):
        self._name = name
        self._trace_id = trace_id
        self._parent_id = parent_id
        self._attrs = attrs

    def __enter__(self) -> Span | None:
        current = Span.begin(
            self._name,
            trace_id=self._trace_id,
            parent_id=self._parent_id,
            attrs=self._attrs,
        )
        self._span = current
        self._token = _current_span.set(current) if current is not None else None
        return current

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _current_span.reset(self._token)
        if self._span is not None:
            self._span.finish(status="error" if exc_type is not None else None)
        return False


def span(
    name: str,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **attrs: Any,
) -> _SpanContext:
    """Context manager timing a block as one span (bound for nesting).

    Yields ``None`` when tracing is disabled or the trace is sampled out —
    callers reading ``sp.span_id`` must guard for that.  An exception
    escaping the block marks the span ``status="error"``.
    """
    return _SpanContext(name, trace_id, parent_id, attrs)


@contextmanager
def remote_span(
    name: str,
    *,
    trace_id: str | None = None,
    parent_id: str | None = None,
    **attrs: Any,
) -> Iterator[Span | None]:
    """A span re-rooted from wire-carried ids (server side of a hop).

    When the envelope carried a trace id, the :class:`Trace` contextvar is
    bound around the span too, so everything nested (engine, batcher, LLM)
    sees the caller's trace rather than minting fresh ids.
    """
    if trace_id is not None:
        with Trace(trace_id).bind():
            with span(name, trace_id=trace_id, parent_id=parent_id, **attrs) as sp:
                yield sp
    else:
        with span(name, parent_id=parent_id, **attrs) as sp:
            yield sp


__all__ = [
    "ENV_TRACING",
    "Span",
    "new_span_id",
    "remote_span",
    "set_tracing",
    "span",
    "tracing_enabled",
]
