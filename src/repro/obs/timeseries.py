"""Rolling time-series over the metrics registry: rates, deltas, windowed percentiles.

The metrics core (:mod:`repro.obs.metrics`) answers "how many since process
start"; autoscalers, SLO burn-rate rules and ``repro top`` all need "how
many *per second over the last minute*".  This module derives those views
without touching the request hot path:

* a :class:`TimeSeriesSampler` periodically (and on demand) walks the
  registry and appends one ``(t, value)`` sample per metric into a
  fixed-size ring buffer — counters keep their running total, gauges their
  current value, histograms one consistent copy of their cumulative bucket
  counts (:meth:`~repro.obs.metrics.Histogram.bucket_counts`);
* window queries are pure functions over those samples: a counter's
  **rate/delta** over the last 10s/1m/5m, a gauge's latest/mean/max, and a
  histogram's **windowed p50/p95/p99** computed from the *difference* of
  cumulative bucket counts across the window — the quantile of what
  happened recently, not since boot.

Concurrency is deliberately lock-cheap: each series is a
``collections.deque(maxlen=...)`` with a single writer (the sampling pass,
serialized by one sampler lock) whose ``append`` is atomic in CPython, and
readers snapshot via ``list(deque)`` — no per-sample lock is ever taken on
a query, and nothing here runs inside the serving request path.

Resets are tolerated by construction: ``MetricsRegistry.reset()`` makes a
cumulative value go *backwards*, so every windowed delta clamps at zero
(per histogram bucket too) — a reset mid-window reads as "nothing happened
yet", never as a negative rate.

All window math runs on an injectable monotonic clock (``time.monotonic``
by default); wall-clock time is forbidden here — CI greps it out
(``scripts/check_monotonic.py``) because a stepped wall clock would smear
rates and percentiles across every window.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Mapping, Sequence

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_default_registry

#: Default rolling windows (label -> seconds), shortest first.
DEFAULT_WINDOWS: dict[str, float] = {"10s": 10.0, "1m": 60.0, "5m": 300.0}

#: Percentiles reported for histogram series in windows_payload().
WINDOW_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


def parse_window(label: str) -> float:
    """``"10s"`` / ``"1m"`` / ``"5m"`` / ``"90"`` -> seconds (> 0)."""
    text = label.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        scale, text = 0.001, text[:-2]
    elif text.endswith("s"):
        text = text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("h"):
        scale, text = 3600.0, text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ValueError(f"bad window {label!r}; expected e.g. 10s, 1m, 5m") from None
    if seconds <= 0:
        raise ValueError(f"window {label!r} must be positive")
    return seconds


class Series:
    """Fixed-capacity ring of ``(t, value)`` samples for one metric.

    ``kind`` is ``"counter"`` / ``"gauge"`` / ``"histogram"``; histogram
    values are ``(bucket_counts, count, sum)`` tuples.  Single writer (the
    sampler), lock-free readers (``list(deque)`` is a consistent copy under
    the GIL).
    """

    __slots__ = ("kind", "bounds", "_ring")

    def __init__(self, kind: str, capacity: int, bounds: tuple[float, ...] = ()):
        self.kind = kind
        self.bounds = bounds
        self._ring: deque[tuple[float, Any]] = deque(maxlen=capacity)

    def append(self, t: float, value: Any) -> None:
        self._ring.append((t, value))

    def samples(self) -> list[tuple[float, Any]]:
        return list(self._ring)

    def window(self, seconds: float) -> "tuple[tuple[float, Any], tuple[float, Any]] | None":
        """The ``(reference, latest)`` sample pair spanning the window.

        The reference is the newest sample at least ``seconds`` older than
        the latest one (so the span covers the whole window), or the oldest
        sample when the series is younger than the window — the window
        degrades gracefully to "since sampling started".  ``None`` until two
        samples exist.
        """
        samples = self.samples()
        if len(samples) < 2:
            return None
        latest = samples[-1]
        cutoff = latest[0] - seconds
        reference = samples[0]
        for sample in reversed(samples[:-1]):
            if sample[0] <= cutoff:
                reference = sample
                break
        return reference, latest


def counter_window(series: Series, seconds: float) -> dict[str, float] | None:
    """Windowed ``{"delta", "rate"}`` of a counter series (reset-safe)."""
    pair = series.window(seconds)
    if pair is None:
        return None
    (t0, v0), (t1, v1) = pair
    span = t1 - t0
    if span <= 0:
        return None
    delta = max(0.0, float(v1) - float(v0))
    return {"delta": delta, "rate": delta / span}


def gauge_window(series: Series, seconds: float) -> dict[str, float] | None:
    """Windowed ``{"latest", "mean", "max"}`` of a gauge series."""
    samples = series.samples()
    if not samples:
        return None
    cutoff = samples[-1][0] - seconds
    values = [float(v) for t, v in samples if t >= cutoff]
    if not values:
        values = [float(samples[-1][1])]
    return {
        "latest": float(samples[-1][1]),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def histogram_window(
    series: Series, seconds: float, quantiles: Sequence[tuple[str, float]] = WINDOW_QUANTILES
) -> dict[str, float] | None:
    """Windowed count/rate/percentiles from cumulative bucket-count deltas.

    Per-bucket deltas are clamped at zero so a registry reset inside the
    window cannot produce negative counts; quantiles interpolate inside the
    owning bucket exactly like the live histogram, except the overflow
    bucket answers the top finite bound (the windowed max is unknown).
    """
    pair = series.window(seconds)
    if pair is None:
        return None
    (t0, (counts0, count0, sum0)), (t1, (counts1, count1, sum1)) = pair
    span = t1 - t0
    if span <= 0:
        return None
    deltas = [max(0, b1 - b0) for b0, b1 in zip(counts0, counts1)]
    total = sum(deltas)
    result: dict[str, float] = {
        "count": float(total),
        "rate": total / span,
        "sum": max(0.0, sum1 - sum0),
    }
    for label, q in quantiles:
        result[label] = _delta_quantile(series.bounds, deltas, total, q)
    return result


def _delta_quantile(
    bounds: tuple[float, ...], deltas: Sequence[int], total: int, q: float
) -> float | None:
    # No observations in the window: no percentile, rather than a misleading
    # 0.0 (``repro top`` shows "-", the SLO engine treats it as no data).
    if total <= 0:
        return None
    rank = q * total
    cumulative = 0
    for index, bucket_count in enumerate(deltas):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            if index >= len(bounds):
                # Overflow bucket: no finite edge and no windowed max to
                # fall back on — answer the top finite bound (a floor).
                return bounds[-1] if bounds else 0.0
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        cumulative += bucket_count
    return bounds[-1] if bounds else 0.0  # pragma: no cover - total > 0 exits above


class TimeSeriesSampler:
    """Periodic (and on-demand) snapshots of a registry into rolling rings.

    Parameters
    ----------
    registry:
        The metrics registry to sample (process default when ``None``).
    interval:
        Seconds between background samples; also the freshness bound of
        :meth:`ensure_fresh`.
    horizon:
        Seconds of history each ring retains (sets ring capacity; default
        covers the longest default window with slack).
    include:
        Optional dotted-name prefixes; empty samples every metric.
    clock:
        Monotonic seconds source (injectable for deterministic tests).
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        interval: float = 1.0,
        horizon: float = 330.0,
        include: Sequence[str] = (),
        clock: Callable[[], float] = time.monotonic,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if horizon < interval:
            raise ValueError("horizon must cover at least one interval")
        self.registry = registry if registry is not None else get_default_registry()
        self.interval = interval
        self.horizon = horizon
        self.include = tuple(include)
        self._clock = clock
        self._capacity = max(2, math.ceil(horizon / interval) + 1)
        self._series: dict[str, Series] = {}
        self._samples_taken = 0
        self._last_sample: float | None = None
        self._sample_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ---------------------------------------------------------------- sampling
    def sample(self) -> float:
        """Take one sample of every selected metric; returns its timestamp."""
        with self._sample_lock:
            now = self._clock()
            previous = self._last_sample
            for name, metric in self.registry.items():
                if self.include and not name.startswith(self.include):
                    continue
                series = self._series.get(name)
                if isinstance(metric, Counter):
                    if series is None:
                        # A counter born between samples was implicitly zero
                        # at the previous sample: backfill that reference so
                        # its first burst (e.g. a tenant's first sheds) is a
                        # visible delta rather than a one-point series.
                        series = self._new_series(name, "counter")
                        if previous is not None:
                            series.append(previous, 0.0)
                    series.append(now, metric.value)
                elif isinstance(metric, Gauge):
                    if series is None:
                        series = self._new_series(name, "gauge")
                    series.append(now, metric.value)
                elif isinstance(metric, Histogram):
                    if series is None:
                        series = self._new_series(name, "histogram", metric.bounds)
                        if previous is not None:
                            zeros = tuple(0 for _ in range(len(metric.bounds) + 1))
                            series.append(previous, (zeros, 0, 0.0))
                    series.append(now, metric.bucket_counts())
            self._samples_taken += 1
            self._last_sample = now
            return now

    def _new_series(self, name: str, kind: str, bounds: tuple[float, ...] = ()) -> Series:
        series = Series(kind, self._capacity, bounds)
        self._series[name] = series
        return series

    def ensure_fresh(self, max_age: float | None = None) -> None:
        """Sample now unless one was taken within ``max_age`` (the interval).

        This is the on-demand path: a stats snapshot or an SLO evaluation
        triggered between background ticks still sees current data, without
        double-sampling when the background thread just ran.
        """
        age_bound = self.interval if max_age is None else max_age
        last = self._last_sample
        if last is not None and self._clock() - last < age_bound:
            return
        self.sample()

    # -------------------------------------------------------------- background
    def start(self) -> None:
        """Run the sampling loop on a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                self.sample()

        self._thread = threading.Thread(target=run, daemon=True, name="repro-timeseries")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # ----------------------------------------------------------------- queries
    @property
    def samples_taken(self) -> int:
        return self._samples_taken

    def series(self, name: str) -> Series | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def counter_rate(self, name: str, window: float) -> float | None:
        """Windowed per-second rate of one counter (``None`` = no data)."""
        series = self._series.get(name)
        if series is None or series.kind != "counter":
            return None
        stats = counter_window(series, window)
        return None if stats is None else stats["rate"]

    def counter_delta(self, name: str, window: float) -> float | None:
        series = self._series.get(name)
        if series is None or series.kind != "counter":
            return None
        stats = counter_window(series, window)
        return None if stats is None else stats["delta"]

    def gauge_stats(self, name: str, window: float) -> dict[str, float] | None:
        series = self._series.get(name)
        if series is None or series.kind != "gauge":
            return None
        return gauge_window(series, window)

    def quantile(self, name: str, q: float, window: float) -> float | None:
        """Windowed quantile of one histogram (``None`` = no data yet)."""
        series = self._series.get(name)
        if series is None or series.kind != "histogram":
            return None
        stats = histogram_window(series, window, (("q", q),))
        return None if stats is None else stats["q"]

    def histogram_stats(self, name: str, window: float) -> dict[str, float] | None:
        series = self._series.get(name)
        if series is None or series.kind != "histogram":
            return None
        return histogram_window(series, window)

    def windows_payload(
        self, windows: Mapping[str, float] | None = None, prefix: str = ""
    ) -> dict[str, Any]:
        """The JSON ``timeseries`` section of a stats snapshot.

        One entry per sampled metric with its per-window derived view —
        counters report delta/rate, gauges latest/mean/max, histograms
        count/rate and windowed percentiles.  Windows with no data yet are
        omitted, so a freshly started process reports a small payload that
        grows as history accumulates.
        """
        windows = dict(windows if windows is not None else DEFAULT_WINDOWS)
        series_payload: dict[str, Any] = {}
        for name in self.names():
            if prefix and not name.startswith(prefix):
                continue
            series = self._series[name]
            per_window: dict[str, Any] = {}
            for label, seconds in windows.items():
                if series.kind == "counter":
                    stats = counter_window(series, seconds)
                elif series.kind == "gauge":
                    stats = gauge_window(series, seconds)
                else:
                    stats = histogram_window(series, seconds)
                if stats is not None:
                    per_window[label] = {
                        key: None if value is None else round(value, 9)
                        for key, value in stats.items()
                    }
            if per_window:
                series_payload[name] = {"kind": series.kind, "windows": per_window}
        return {
            "interval": self.interval,
            "horizon": self.horizon,
            "samples": self._samples_taken,
            "windows": {label: seconds for label, seconds in windows.items()},
            "series": series_payload,
        }


__all__ = [
    "DEFAULT_WINDOWS",
    "Series",
    "TimeSeriesSampler",
    "WINDOW_QUANTILES",
    "counter_window",
    "gauge_window",
    "histogram_window",
    "parse_window",
]
