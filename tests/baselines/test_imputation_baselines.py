"""Unit tests for the imputation baselines (HoloClean, CMI, IMP)."""

import pytest

from repro.baselines import CMIImputer, HoloCleanImputer, IMPImputer
from repro.eval import evaluate


@pytest.mark.parametrize("baseline_cls", [HoloCleanImputer, CMIImputer, IMPImputer])
def test_baseline_predicts_one_value_per_task(restaurant_dataset, baseline_cls):
    baseline = baseline_cls(seed=0)
    predictions = baseline.predict_dataset(restaurant_dataset)
    assert len(predictions) == len(restaurant_dataset.tasks)
    assert all(isinstance(p, str) and p for p in predictions)
    # Predictions come from the observed domain of the target attribute.
    cities = {str(v) for v in restaurant_dataset.table.distinct("city")}
    assert set(predictions) <= cities | {"unknown"}


def test_baselines_reject_wrong_task_type(hospital_dataset):
    with pytest.raises(ValueError):
        HoloCleanImputer().predict_dataset(hospital_dataset)


def test_imp_beats_holoclean_on_restaurant(restaurant_dataset):
    # The paper's ordering: HoloClean < CMI/IMP on surface-rich benchmarks.
    holoclean = evaluate(HoloCleanImputer(seed=0), restaurant_dataset)
    imp = evaluate(IMPImputer(seed=0), restaurant_dataset)
    assert imp.score >= holoclean.score


def test_imp_is_reasonably_accurate_on_buy(buy_dataset):
    result = evaluate(IMPImputer(seed=0), buy_dataset)
    assert result.score >= 0.5


def test_cmi_uses_clusters_not_global_mode(restaurant_dataset):
    predictions = CMIImputer(seed=0).predict_dataset(restaurant_dataset)
    assert len(set(predictions)) > 1
