"""Benchmark: per-tenant isolation under a sustained flood (BENCH_tenancy).

The tenancy layer promises that one tenant flooding far past its token-bucket
rate cannot degrade its neighbours: the abuser is shed at admission with
structured ``rate_limited`` errors while admitted work is scheduled
weighted-fair.  This benchmark runs the same front door twice — well-behaved
tenants alone, then with a paced 20x flood alongside — and gates on::

    p99_degradation = max over good tenants of
        abuse_p99 / max(baseline_p99, P99_FLOOR)   <= 2.0

The p99s come from the per-tenant ``tenant.<name>.latency`` histograms the
front door maintains (queueing time included — exactly what a tenant
experiences).  ``P99_FLOOR`` keeps the ratio meaningful when the baseline
lands in scheduler-jitter territory on a fast machine.  A session over the
cap is re-measured once and the better session kept, mirroring the other
ratio benchmarks; ``scripts/check_bench.py`` re-checks the committed
artifact against the same absolute cap.
"""

import itertools
import threading
import time

from conftest import run_once
from report import write_bench

from repro.api import TransformationSpec
from repro.api.protocol import decode_response, encode_request
from repro.core import UniDM, UniDMConfig
from repro.llm import CachedLLM, LanguageModel, SimulatedLLM
from repro.obs import MetricsRegistry
from repro.serving.service import ServingService
from repro.tenancy import TenantConfig, TenantRegistry

GOOD_TENANTS = ("good-a", "good-b")
ABUSER = "abuser"
GOOD_REQUESTS = 40
#: Baselines below this are scheduler jitter, not a meaningful denominator.
P99_FLOOR = 0.005
MAX_DEGRADATION = 2.0

_fresh = itertools.count()


class SlowLLM(LanguageModel):
    """Fixed per-call delay so requests genuinely contend for the engine."""

    def __init__(self, delay=0.002, seed=0):
        inner = SimulatedLLM(seed=seed)
        super().__init__(tokenizer=inner.tokenizer)
        self.inner = inner
        self.delay = delay
        self.name = f"slow({inner.name})"

    def _complete_text(self, prompt: str) -> str:
        time.sleep(self.delay)
        return self.inner._complete_text(prompt)


def fresh_spec():
    return TransformationSpec(
        value=f"2024{next(_fresh):08d}", examples=[["20000101", "2000-01-01"]]
    )


def make_service():
    tenants = TenantRegistry(
        [
            TenantConfig("good-a", weight=4.0, rate=200.0, burst=50.0),
            TenantConfig("good-b", weight=4.0, rate=200.0, burst=50.0),
            TenantConfig(ABUSER, weight=1.0, rate=10.0, burst=2.0, max_inflight=4),
        ]
    )
    pipeline = UniDM(CachedLLM(SlowLLM()), UniDMConfig.full(seed=0))
    return ServingService(pipeline, metrics=MetricsRegistry(), tenants=tenants)


def run_phase(service, with_abuse):
    """Drive the good tenants' workload; optionally flood alongside it."""

    def submit(tenant):
        response = service.handle_request(
            encode_request(fresh_spec(), request_id=0, tenant=tenant)
        )
        return decode_response(response)

    good_done = threading.Event()
    abuser_results = []

    def good_worker(tenant):
        for _ in range(GOOD_REQUESTS):
            result = submit(tenant)
            assert result.error is None, f"{tenant} shed: {result.error}"

    def abuse_worker():
        # Two threads at ~100 attempts/s each: a 20x flood of the abuser's
        # 10/s budget, paced so it measures queueing interference, not a
        # spin loop's GIL burn.
        while not good_done.is_set():
            abuser_results.append(submit(ABUSER))
            time.sleep(0.01)

    threads = [
        threading.Thread(target=good_worker, args=(tenant,))
        for tenant in GOOD_TENANTS
    ]
    abusers = (
        [threading.Thread(target=abuse_worker) for _ in range(2)] if with_abuse else []
    )
    for thread in threads + abusers:
        thread.start()
    for thread in threads:
        thread.join()
    good_done.set()
    for thread in abusers:
        thread.join()
    return abuser_results


def measure_session():
    service = make_service()

    def p99(tenant):
        histograms = service.stats_snapshot()["metrics"]["histograms"]
        return histograms[f"tenant.{tenant}.latency"]["p99"]

    run_phase(service, with_abuse=False)
    baseline = {tenant: p99(tenant) for tenant in GOOD_TENANTS}
    service.stats_snapshot(reset=True)

    abuser_results = run_phase(service, with_abuse=True)
    abused = {tenant: p99(tenant) for tenant in GOOD_TENANTS}

    shed = [r for r in abuser_results if r.error is not None]
    degradation = max(
        abused[tenant] / max(baseline[tenant], P99_FLOOR)
        for tenant in GOOD_TENANTS
    )
    return {
        "baseline_p99": baseline,
        "abuse_p99": abused,
        "p99_degradation": round(degradation, 4),
        "abuser_attempts": len(abuser_results),
        "abuser_shed": len(shed),
        "abuser_shed_with_retry_after": sum(
            1 for r in shed if (r.error.retry_after or 0) > 0
        ),
    }


def test_flooding_tenant_does_not_degrade_neighbour_p99(benchmark):
    def measure():
        session = measure_session()
        if session["p99_degradation"] > MAX_DEGRADATION:
            # One re-measure absorbs a noise burst; genuine unfairness
            # fails twice.
            retry = measure_session()
            if retry["p99_degradation"] < session["p99_degradation"]:
                session = retry
        return session

    session = run_once(benchmark, measure)

    assert session["abuser_shed"] > 0, "a 20x flood must be rate-limited"
    assert session["abuser_shed_with_retry_after"] == session["abuser_shed"]
    assert session["p99_degradation"] <= MAX_DEGRADATION

    write_bench(
        "tenancy",
        {
            "workload": {
                "good_tenants": list(GOOD_TENANTS),
                "requests_per_good_tenant": GOOD_REQUESTS,
                "abuser": {"rate": 10.0, "burst": 2.0, "flood_factor": 20},
                "p99_floor_seconds": P99_FLOOR,
            },
            **session,
            "max_p99_degradation": MAX_DEGRADATION,
        },
    )
