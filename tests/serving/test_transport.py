"""Tests for the negotiated wire transport (handshake, framing, multiplexing).

The compatibility contract under test: one server process serves a legacy
JSON-lines client (v1 flat or v2 envelope, blank-line flush) and a
negotiated binary-framed pipelined client **concurrently**, with
bit-identical results — and a client that offers the handshake to a
pre-transport server falls back to legacy semantics on the same
connection.  Framing violations (torn frames, oversized declared lengths)
are connection-fatal with a best-effort ``bad_frame`` error response.
"""

import asyncio
import json
import socket
import struct
import threading

import pytest

from repro.serving import build_service
from repro.serving.transport import (
    FRAME_BINARY,
    FRAME_LINES,
    AsyncWireConnection,
    FrameError,
    WireConnection,
    WireConnectionPool,
    client_hello,
    decode_frame_payload,
    encode_frame,
    encode_line,
    order_responses,
    read_frame,
    start_wire_server,
)

_HEADER = struct.Struct(">I")


# ------------------------------------------------------------------ fixtures
def _serve_on_thread(handle_batch, **kwargs):
    """A wire server on a daemon loop thread; returns (port, stop)."""
    ready = threading.Event()
    holder = {}
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(
            start_wire_server(handle_batch, port=0, **kwargs)
        )
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()
        server.close()
        loop.run_until_complete(server.wait_closed())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "wire server did not start"

    def stop() -> None:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)

    return holder["port"], stop


@pytest.fixture
def service_port():
    """The real service (seed-0 stack) behind the wire server."""
    service = build_service(seed=0, batch_size=4, workers=4)
    port, stop = _serve_on_thread(service.handle_batch)
    yield port
    stop()


@pytest.fixture
def echo_port():
    """A zero-work echo handler: transport mechanics without task execution."""

    def echo(requests):
        return [
            {"v": 2, "id": r.get("id"), "ok": True, "result": {"echo": r}}
            for r in requests
        ]

    port, stop = _serve_on_thread(echo, max_frame_bytes=64 * 1024)
    yield port
    stop()


def _negotiate_binary(port: int):
    """Raw-socket handshake; returns (socket, buffered reader) in bin mode."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.sendall(encode_line(client_hello()) + b"\n")
    reader = sock.makefile("rb")
    hello = json.loads(reader.readline())
    assert hello["frame"] == FRAME_BINARY
    return sock, reader


def _read_raw_frame(reader) -> dict:
    header = reader.read(_HEADER.size)
    assert len(header) == _HEADER.size, "connection closed before a frame"
    (length,) = _HEADER.unpack(header)
    body = reader.read(length)
    assert len(body) == length
    return decode_frame_payload(body)


V2_TRANSFORM = {
    "type": "transformation",
    "value": "7",
    "examples": [["1", "one"], ["2", "two"]],
}


# ---------------------------------------------------- mixed-protocol serving
def test_mixed_protocol_clients_bit_identical(service_port):
    """A legacy lines client and a binary pipelined client, concurrently."""
    barrier = threading.Barrier(2, timeout=30)
    outcome = {}

    def legacy_client() -> None:
        sock = socket.create_connection(("127.0.0.1", service_port), timeout=30)
        lines = b"".join(
            encode_line({"v": 2, "id": i, "task": dict(V2_TRANSFORM)})
            for i in range(8)
        )
        barrier.wait()
        sock.sendall(lines + b"\n")  # blank line flushes the batch
        reader = sock.makefile("rb")
        outcome["legacy"] = [json.loads(reader.readline()) for _ in range(8)]
        sock.close()

    def binary_client() -> None:
        conn = WireConnection.open("127.0.0.1", service_port, timeout=30)
        assert conn.mode == FRAME_BINARY
        requests = [
            {"v": 2, "id": i, "task": dict(V2_TRANSFORM)} for i in range(8)
        ]
        barrier.wait()
        outcome["binary"] = conn.send_batch(requests)
        conn.close()

    threads = [
        threading.Thread(target=legacy_client),
        threading.Thread(target=binary_client),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()

    # Bit-identical: the same v2 envelope yields the same response object
    # regardless of which framing carried it.
    assert outcome["legacy"] == outcome["binary"]
    assert all(r["ok"] for r in outcome["legacy"])


def test_legacy_v1_flat_requests_still_served(service_port):
    sock = socket.create_connection(("127.0.0.1", service_port), timeout=30)
    request = {"id": 5, "type": "extraction", "document": "Ada wrote.", "attribute": "name"}
    sock.sendall(encode_line(request) + b"\n")
    response = json.loads(sock.makefile("rb").readline())
    sock.close()
    assert response["id"] == 5 and response["ok"]
    assert "answer" in response and "result" not in response  # flat v1 shape


def test_legacy_v2_envelope_still_served(service_port):
    sock = socket.create_connection(("127.0.0.1", service_port), timeout=30)
    sock.sendall(encode_line({"v": 2, "id": "a", "task": dict(V2_TRANSFORM)}) + b"\n")
    response = json.loads(sock.makefile("rb").readline())
    sock.close()
    assert response["v"] == 2 and response["id"] == "a" and response["ok"]


def test_multiplexed_lines_mode_needs_no_blank_flush(echo_port):
    """frames=["lines"] negotiates multiplexed JSON lines: no flush needed."""
    sock = socket.create_connection(("127.0.0.1", echo_port), timeout=10)
    sock.sendall(encode_line(client_hello(frames=(FRAME_LINES,))) + b"\n")
    reader = sock.makefile("rb")
    hello = json.loads(reader.readline())
    assert hello["frame"] == FRAME_LINES
    # Two requests, no blank line anywhere: they dispatch as they arrive.
    sock.sendall(encode_line({"v": 2, "id": 1}) + encode_line({"v": 2, "id": 2}))
    replies = [json.loads(reader.readline()) for _ in range(2)]
    sock.close()
    assert sorted(r["id"] for r in replies) == [1, 2]


# ------------------------------------------------------------ frame failures
def test_oversized_frame_is_rejected_with_bad_frame(echo_port):
    sock, reader = _negotiate_binary(echo_port)
    sock.sendall(_HEADER.pack(1024 * 1024))  # declares 1 MiB; limit is 64 KiB
    response = _read_raw_frame(reader)
    assert response["ok"] is False
    assert response["error"]["code"] == "bad_frame"
    assert reader.read() == b""  # connection closed: sync is unrecoverable
    sock.close()


def test_torn_frame_is_rejected_with_bad_frame(echo_port):
    sock, reader = _negotiate_binary(echo_port)
    sock.sendall(_HEADER.pack(100) + b'{"v": 2')  # 100 declared, 7 sent
    sock.shutdown(socket.SHUT_WR)  # EOF mid-payload
    response = _read_raw_frame(reader)
    assert response["ok"] is False
    assert response["error"]["code"] == "bad_frame"
    assert reader.read() == b""
    sock.close()


def test_blank_padding_after_handshake_is_legal(echo_port):
    """The client's legacy-poke blank line must not break frame sync."""
    sock, reader = _negotiate_binary(echo_port)
    sock.sendall(b"\n\n" + encode_frame({"v": 2, "id": 9}))
    response = _read_raw_frame(reader)
    sock.close()
    assert response["id"] == 9 and response["ok"]


# -------------------------------------------------------- legacy-server fallback
@pytest.fixture
def legacy_only_port():
    """A pre-transport server: blank-line batches only, no handshake."""
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    async def handle(reader, writer):
        batch = []
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.strip()
            if not text:  # blank line: flush
                for request in batch:
                    try:
                        payload = json.loads(request)
                        reply = {"id": payload.get("id"), "ok": True, "answer": "legacy"}
                    except json.JSONDecodeError:
                        reply = {"id": None, "ok": False, "error": "bad JSON"}
                    writer.write(encode_line(reply))
                await writer.drain()
                batch = []
                continue
            batch.append(text)
        writer.close()

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(
            asyncio.start_server(handle, "127.0.0.1", 0)
        )
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()
        server.close()
        loop.run_until_complete(server.wait_closed())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    yield holder["port"]
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


def test_negotiating_client_falls_back_against_legacy_server(legacy_only_port):
    conn = WireConnection.open("127.0.0.1", legacy_only_port, timeout=10)
    try:
        assert conn.mode == "legacy"
        responses = conn.send_batch([{"id": 1}, {"id": 2}])
        assert [r["id"] for r in responses] == [1, 2]
        assert all(r["answer"] == "legacy" for r in responses)
    finally:
        conn.close()


def test_async_client_falls_back_against_legacy_server(legacy_only_port):
    async def scenario():
        conn = await AsyncWireConnection.open("127.0.0.1", legacy_only_port, timeout=10)
        try:
            assert conn.mode == "legacy"
            return await conn.send_batch([{"id": 1}, {"id": 2}])
        finally:
            await conn.close()

    responses = asyncio.run(scenario())
    assert [r["id"] for r in responses] == [1, 2]


# ----------------------------------------------------------------- unit level
def test_order_responses_reorders_by_id():
    requests = [{"id": "a"}, {"id": "b"}, {"id": "c"}]
    shuffled = [{"id": "c"}, {"id": "a"}, {"id": "b"}]
    assert order_responses(requests, shuffled) == [
        {"id": "a"},
        {"id": "b"},
        {"id": "c"},
    ]


def test_order_responses_keeps_arrival_order_without_unique_ids():
    requests = [{"id": 1}, {"id": 1}]
    responses = [{"id": 1, "n": "first"}, {"id": 1, "n": "second"}]
    assert order_responses(requests, responses) == responses


def test_read_frame_skips_leading_newlines():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(b"\n\n" + encode_frame({"id": 1}))
        reader.feed_eof()
        body = await read_frame(reader, skip_newlines=True)
        assert decode_frame_payload(body) == {"id": 1}
        assert await read_frame(reader, skip_newlines=True) is None  # clean EOF

    asyncio.run(scenario())


def test_read_frame_raises_on_oversized_length():
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(_HEADER.pack(2048) + b"x" * 10)
        reader.feed_eof()
        with pytest.raises(FrameError):
            await read_frame(reader, max_frame=1024)

    asyncio.run(scenario())


def test_pool_reuses_released_connections(echo_port):
    pool = WireConnectionPool("127.0.0.1", echo_port, timeout=10, size=2)
    try:
        first = pool.acquire()
        pool.release(first)
        second = pool.acquire()
        assert second is first  # keep-alive: no reconnect, no re-handshake
        pool.release(second)
    finally:
        pool.close()
