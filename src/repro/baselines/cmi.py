"""CMI baseline (Zhang et al. 2008) — clustering-based missing value imputation.

CMI clusters complete records and imputes a missing cell with the dominant
value of the target attribute inside the cluster the incomplete record is
assigned to.  The reproduction uses a k-modes-flavoured clustering over hashed
token embeddings of the non-target attributes, which captures the benchmark's
surface regularities (shared street / product-line tokens) without any
semantic knowledge.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

import numpy as np

from ..core.serialization import serialize_record
from ..core.tasks.imputation import ImputationTask
from ..core.types import TaskType
from ..datalake.table import Record, Table, is_missing
from ..datalake.text import embed_values
from ..datasets.base import BenchmarkDataset
from .base import Baseline


class CMIImputer(Baseline):
    """Cluster-then-impute baseline for missing values."""

    name = "CMI"

    def __init__(self, seed: int = 0, n_clusters: int = 12, n_iterations: int = 10):
        super().__init__(seed)
        self.n_clusters = n_clusters
        self.n_iterations = n_iterations

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.DATA_IMPUTATION)
        predictions: list[Any] = []
        cache: dict[tuple[str, str], _FittedClusters] = {}
        for task in dataset.tasks:
            if not isinstance(task, ImputationTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            key = (task.table().name, task.attribute)
            if key not in cache:
                cache[key] = self._fit(task.table(), task.attribute)
            predictions.append(cache[key].impute(task.record))
        return predictions

    # -- clustering -----------------------------------------------------------------
    def _fit(self, table: Table, target: str) -> "_FittedClusters":
        features = [n for n in table.schema.names if n != target]
        complete = [r for r in table if not is_missing(r[target])]
        if not complete:
            return _FittedClusters(target, features, np.zeros((0, 1)), [], [])
        vectors = embed_values([serialize_record(r, features) for r in complete])
        k = min(self.n_clusters, len(complete))
        centroids = self._kmeans(vectors, k)
        assignments = self._assign(vectors, centroids)
        cluster_modes: list[str] = []
        global_mode = Counter(str(r[target]) for r in complete).most_common(1)[0][0]
        for cluster in range(len(centroids)):
            members = [complete[i] for i in range(len(complete)) if assignments[i] == cluster]
            if members:
                mode = Counter(str(m[target]) for m in members).most_common(1)[0][0]
            else:
                mode = global_mode
            cluster_modes.append(mode)
        return _FittedClusters(target, features, centroids, cluster_modes, [global_mode])

    def _kmeans(self, vectors: np.ndarray, k: int) -> np.ndarray:
        indices = self.rng.choice(len(vectors), size=k, replace=False)
        centroids = vectors[indices].copy()
        for _ in range(self.n_iterations):
            assignments = self._assign(vectors, centroids)
            for cluster in range(k):
                members = vectors[assignments == cluster]
                if len(members):
                    centroids[cluster] = members.mean(axis=0)
        return centroids

    @staticmethod
    def _assign(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        # Cosine distance via dot products of L2-normalised embeddings.
        sims = vectors @ centroids.T
        return np.argmax(sims, axis=1)


class _FittedClusters:
    """Frozen clustering used to impute new records."""

    def __init__(self, target, features, centroids, modes, fallback):
        self.target = target
        self.features = features
        self.centroids = centroids
        self.modes = modes
        self.fallback = fallback[0] if fallback else "unknown"

    def impute(self, record: Record) -> str:
        if not len(self.centroids) or not self.modes:
            return self.fallback
        vector = embed_values([serialize_record(record, self.features)])[0]
        sims = self.centroids @ vector
        return self.modes[int(np.argmax(sims))]
