#!/usr/bin/env python
"""Lint: forbid wall-clock timing in span/metric instrumentation paths.

Span offsets only line up across processes because every span start/end comes
from ``time.monotonic()`` (Linux ``CLOCK_MONOTONIC`` is system-wide per
boot).  A stray ``time.time()`` in the observability layer would silently
skew waterfalls whenever NTP steps the wall clock, so CI greps it out.

Usage::

    python scripts/check_monotonic.py [PATH ...]

Defaults to ``src/repro/obs``.  Exits 1 listing every offending
``file:line``; lines carrying a ``# wall-clock ok`` marker are exempt (for
genuinely wall-clock needs such as timestamping artifacts).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Every wall-clock spelling, not just time.time(): the time-series and SLO
# layers compute window spans and alert ages from sample timestamps, so any
# wall-clock read there would skew windows when NTP steps the clock.
FORBIDDEN = re.compile(
    r"\btime\.time\(|\bdatetime\.(?:now|utcnow|today)\(|\btime\.strftime\("
)
EXEMPT_MARKER = "# wall-clock ok"
DEFAULT_PATHS = ["src/repro/obs"]


def scan(paths: list[str]) -> list[str]:
    offenders: list[str] = []
    for root in paths:
        root_path = Path(root)
        files = [root_path] if root_path.is_file() else sorted(root_path.rglob("*.py"))
        for file_path in files:
            for number, line in enumerate(
                file_path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if FORBIDDEN.search(line) and EXEMPT_MARKER not in line:
                    offenders.append(f"{file_path}:{number}: {line.strip()}")
    return offenders


def main(argv: list[str] | None = None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or DEFAULT_PATHS
    offenders = scan(paths)
    for offender in offenders:
        print(f"FAIL: wall-clock timing in instrumentation path: {offender}")
    if offenders:
        print(
            "use time.monotonic() (span timing) or time.perf_counter() "
            "(latency metrics) instead of wall-clock reads",
            file=sys.stderr,
        )
        return 1
    print(f"no wall-clock timing in {', '.join(paths)}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
