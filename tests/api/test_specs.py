"""Tests for the typed task specs, their registry and request validation."""

import pytest

from repro.api import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ErrorInfo,
    ExtractionSpec,
    ImputationSpec,
    InvalidRequestError,
    JoinDiscoverySpec,
    SPEC_TYPES,
    TableQASpec,
    TaskSpec,
    TransformationSpec,
    UnknownTaskTypeError,
    spec_from_request,
    task_types,
)
from repro.core import (
    EntityResolutionTask,
    ErrorDetectionTask,
    ImputationTask,
    InformationExtractionTask,
    JoinDiscoveryTask,
    TableQATask,
    TransformationTask,
)

ROWS = [
    {"city": "Florence", "country": "Italy"},
    {"city": "Madrid", "country": "Spain"},
]


# ---------------------------------------------------------------------- registry
def test_registry_covers_all_seven_task_types_plus_pipeline():
    assert set(task_types()) == {
        "imputation",
        "transformation",
        "extraction",
        "table_qa",
        "entity_resolution",
        "error_detection",
        "join_discovery",
        # The plan-level request type of repro.flow rides the same registry.
        "pipeline",
        # The observability snapshot request of repro.obs does too.
        "stats",
    }
    for spec_cls in SPEC_TYPES.values():
        assert issubclass(spec_cls, TaskSpec)


def test_spec_from_request_dispatches_each_type():
    cases = {
        "imputation": (
            {"rows": ROWS, "target": {"city": "Milan"}, "attribute": "country"},
            ImputationTask,
        ),
        "transformation": ({"value": "a", "examples": [["x", "y"]]}, TransformationTask),
        "extraction": ({"document": "doc", "attribute": "name"}, InformationExtractionTask),
        "table_qa": ({"rows": ROWS, "question": "which?"}, TableQATask),
        "entity_resolution": (
            {"record_a": {"name": "a"}, "record_b": {"name": "b"}},
            EntityResolutionTask,
        ),
        "error_detection": (
            {"rows": ROWS, "target": {"city": "Rome", "country": "xx"}, "attribute": "country"},
            ErrorDetectionTask,
        ),
        "join_discovery": (
            {
                "table_a": {"name": "t1", "rows": [{"abrv": "GER", "rank": 1}]},
                "column_a": "abrv",
                "table_b": {"name": "t2", "rows": [{"iso": "GER"}]},
                "column_b": "iso",
            },
            JoinDiscoveryTask,
        ),
    }
    for task_type, (payload, task_cls) in cases.items():
        spec = spec_from_request({"type": task_type, **payload})
        assert spec.type == task_type
        assert isinstance(spec.to_task(), task_cls)


def test_unknown_task_type_is_structured():
    with pytest.raises(UnknownTaskTypeError) as excinfo:
        spec_from_request({"type": "nope"})
    info = excinfo.value.info
    assert info.code == "unknown_task_type"
    assert info.field == "type"
    assert "nope" in info.message
    # Non-string / absent types must not crash dispatch either.
    with pytest.raises(UnknownTaskTypeError):
        spec_from_request({"type": ["a"]})
    with pytest.raises(UnknownTaskTypeError):
        spec_from_request({})


def test_unknown_type_error_is_a_value_error():
    # Compatibility: pre-redesign callers catch ValueError.
    with pytest.raises(ValueError):
        spec_from_request({"type": "nope"})


# -------------------------------------------------------------------- validation
def test_transformation_rejects_short_example_pairs_cleanly():
    # The PR 1 service crashed with IndexError on [["x"]]; the spec must fail
    # with a structured InvalidRequestError naming the field instead.
    for bad in ([["x"]], [["a", "b", "c"]], ["xy"], [42], "ab", []):
        with pytest.raises(InvalidRequestError) as excinfo:
            TransformationSpec(value="v", examples=bad)
        assert excinfo.value.info.field == "examples"


@pytest.mark.parametrize(
    ("payload", "field"),
    [
        ({"type": "imputation", "rows": [], "target": {}, "attribute": "x"}, "rows"),
        ({"type": "imputation", "rows": "nope", "target": {}, "attribute": "x"}, "rows"),
        ({"type": "imputation", "rows": [{"a": 1}], "target": "no", "attribute": "a"}, "target"),
        ({"type": "imputation", "rows": [{"a": 1}], "target": {}}, "attribute"),
        ({"type": "imputation", "rows": [{"a": 1}], "target": {}, "attribute": "zz"}, "attribute"),
        (
            {"type": "imputation", "rows": [{"a": 1}], "target": {}, "attribute": "a",
             "primary_key": "z"},
            "primary_key",
        ),
        ({"type": "imputation", "rows": [{"a": 1}, {"b": 2}], "target": {}, "attribute": "a"}, "rows"),
        ({"type": "transformation", "value": "a", "examples": []}, "examples"),
        ({"type": "extraction", "document": "d", "attribute": "  "}, "attribute"),
        ({"type": "table_qa", "rows": [{"a": 1}], "question": " "}, "question"),
        ({"type": "entity_resolution", "record_a": {}, "record_b": {"x": 1}}, "record_a"),
        ({"type": "entity_resolution", "record_a": {"x": 1}, "record_b": []}, "record_b"),
        (
            {"type": "entity_resolution", "record_a": {"x": 1}, "record_b": {"y": 2},
             "attributes": ["x"]},
            "attributes",
        ),
        (
            {"type": "error_detection", "rows": [{"a": 1}], "target": {}, "attribute": "a"},
            "target",
        ),
        (
            {"type": "error_detection", "rows": [{"a": 1}], "target": {"a": 1},
             "attribute": "b"},
            "attribute",
        ),
        (
            {"type": "join_discovery", "table_a": {"rows": [{"a": 1}]}, "column_a": "zz",
             "table_b": {"rows": [{"b": 2}]}, "column_b": "b"},
            "column_a",
        ),
        (
            {"type": "join_discovery", "table_a": [], "column_a": "a",
             "table_b": {"rows": [{"b": 2}]}, "column_b": "b"},
            "table_a",
        ),
    ],
)
def test_invalid_requests_name_the_offending_field(payload, field):
    with pytest.raises(InvalidRequestError) as excinfo:
        spec_from_request(payload)
    assert excinfo.value.info.field == field


def test_missing_required_field_is_reported():
    with pytest.raises(InvalidRequestError) as excinfo:
        spec_from_request({"type": "imputation", "target": {}, "attribute": "a"})
    assert excinfo.value.info.field == "rows"


def test_v1_optional_fields_keep_their_defaults():
    # PR 1's build_task defaulted these via request.get(..., ""); a v2 spec
    # must keep accepting such requests.
    spec = spec_from_request({"type": "transformation", "examples": [["a", "b"]]})
    assert spec.to_task().source == ""
    spec = spec_from_request({"type": "extraction", "attribute": "name"})
    assert spec.to_task().document == ""


def test_sparse_and_reordered_rows_are_accepted():
    # v1 compatibility: the first row defines the columns; later rows may
    # omit cells (missing -> None) or order their keys differently.
    spec = ImputationSpec(
        rows=[
            {"city": "Florence", "country": "Italy"},
            {"country": "Norway", "city": "Oslo"},
            {"city": "Aarhus"},
        ],
        target={"city": "Milan"},
        attribute="country",
    )
    table = spec.to_task().table()
    assert table[1]["country"] == "Norway"
    assert table[2]["country"] is None


def test_rows_with_unknown_extra_columns_are_rejected():
    with pytest.raises(InvalidRequestError) as excinfo:
        ImputationSpec(
            rows=[{"city": "Rome"}, {"city": "Oslo", "rogue": 1}],
            target={},
            attribute="city",
        )
    assert excinfo.value.info.field == "rows"
    assert "rogue" in excinfo.value.info.message


def test_envelope_and_unknown_keys_are_ignored():
    spec = spec_from_request(
        {"type": "extraction", "document": "d", "attribute": "a",
         "id": 7, "client_tag": "anything"}
    )
    assert spec == ExtractionSpec(document="d", attribute="a")


# ------------------------------------------------------------------ materialising
def test_imputation_spec_builds_equivalent_task():
    spec = ImputationSpec(rows=ROWS, target={"city": "Milan"}, attribute="country")
    task = spec.to_task()
    assert task.query() == "Milan, country"
    assert task.table().schema.primary_key().name == "city"


def test_error_detection_spec_builds_task_with_value():
    spec = ErrorDetectionSpec(
        rows=ROWS, target={"city": "Rome", "country": "xx"}, attribute="country"
    )
    task = spec.to_task()
    assert task.value == "xx"
    assert task.query() == "country: xx?"


def test_entity_resolution_spec_respects_attribute_subset():
    spec = EntityResolutionSpec(
        record_a={"name": "iphone", "brand": "apple"},
        record_b={"name": "iPhone", "brand": "Apple"},
        attributes=["name"],
    )
    task = spec.to_task()
    assert task.target_attributes() == ["name"]
    assert "brand" not in task.describe_a()


def test_join_discovery_spec_is_deterministic():
    spec = JoinDiscoverySpec(
        table_a={"name": "rank", "rows": [{"abrv": "GER", "team": "Germany"}]},
        column_a="abrv",
        table_b={"name": "geo", "rows": [{"iso": "GER", "continent": "Europe"}]},
        column_b="iso",
        seed=3,
    )
    assert spec.to_task().context_rows() == spec.to_task().context_rows()
    assert spec.to_task().query() == "rank.abrv VERSUS geo.iso"


def test_table_qa_spec_defaults_table_name():
    task = TableQASpec(rows=ROWS, question="which country?").to_task()
    assert task.table().name == "request"


# ----------------------------------------------------------------------- errors
def test_error_info_payload_round_trip():
    info = ErrorInfo(code="invalid_request", message="bad", field="examples")
    assert ErrorInfo.from_payload(info.to_payload()) == info
    assert ErrorInfo.from_payload("bare string").message == "bare string"
    assert ErrorInfo.from_payload(None).code == "error"
