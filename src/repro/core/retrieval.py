"""Automatic context retrieval (Section 4.2).

Two stages, both driven by the LLM:

* **meta-wise retrieval** (prompt ``p_rm``) selects which attributes of the
  table carry useful signal for the task and target attribute;
* **instance-wise retrieval** (prompt ``p_ri``) scores a random candidate pool
  of records for relevance to the target record and keeps the top-k.

When either stage is disabled (ablations, the "random" variants of Tables 1
and 4), the same number of attributes / records is drawn uniformly at random,
exactly as the paper's ablation protocol describes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..datalake.sampling import sample_items, sample_records
from ..datalake.table import Record, Table
from ..llm.base import LanguageModel
from ..prompting.templates import INSTANCE_RETRIEVAL, META_RETRIEVAL
from .config import UniDMConfig
from .plan import LLMRequest, Plan, drive
from .serialization import numbered_instances
from .tasks.base import Task, restrict_attributes
from .types import PromptTrace

#: ``index: score`` lines; scores may be integral ("3: 4") or decimal
#: ("3: 4.5", "3: .5") — real models emit fractional relevance scores.
_SCORE_LINE = re.compile(r"^\s*(\d+)\s*[:)]\s*(\d+(?:\.\d+)?|\.\d+)")


@dataclass
class RetrievedContext:
    """The outcome of context retrieval for one task instance."""

    records: list[Record] = field(default_factory=list)
    attributes: list[str] = field(default_factory=list)
    selected_by_llm: list[str] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.records


class ContextRetriever:
    """Implements both retrieval stages of the pipeline."""

    def __init__(self, llm: LanguageModel, config: UniDMConfig):
        self.llm = llm
        self.config = config

    # ------------------------------------------------------------------ public
    def retrieve(
        self,
        task: Task,
        rng: np.random.Generator,
        trace: PromptTrace | None = None,
    ) -> RetrievedContext:
        """Run meta-wise + instance-wise retrieval for ``task``."""
        return drive(self.plan(task, rng, trace), self.llm)

    def plan(
        self,
        task: Task,
        rng: np.random.Generator,
        trace: PromptTrace | None = None,
    ) -> Plan:
        """Sans-IO plan for both retrieval stages (see :mod:`repro.core.plan`).

        All of the pipeline's own randomness (candidate pools, random-context
        fallbacks) is drawn inside this plan, so executing tasks' retrieval
        plans in submission order reproduces the sequential rng stream
        exactly — this is what lets the serving engine stay bit-identical to
        ``run_many``.
        """
        table = task.table()
        if table is None or not task.needs_retrieval:
            return RetrievedContext()

        helpful = yield from self._attributes_plan(task, rng, trace)
        context_attributes = self._context_attribute_set(task, table, helpful)
        records = yield from self._records_plan(
            task, table, context_attributes, rng, trace
        )
        return RetrievedContext(
            records=records,
            attributes=context_attributes,
            selected_by_llm=helpful,
        )

    # --------------------------------------------------------- meta-wise stage
    def _attributes_plan(
        self,
        task: Task,
        rng: np.random.Generator,
        trace: PromptTrace | None,
    ) -> Plan:
        candidates = task.candidate_attributes()
        if not candidates or self.config.n_meta_attributes == 0:
            return []
        if not self.config.use_meta_retrieval:
            return sample_items(candidates, self.config.n_meta_attributes, rng=rng)

        prompt = META_RETRIEVAL.render(
            task=task.short_name,
            query=task.query(),
            candidates=", ".join(candidates),
        )
        text = yield LLMRequest(prompt, "p_rm")
        if trace is not None:
            trace.meta_retrieval = prompt
            trace.meta_retrieval_output = text
        names = [part.strip() for part in text.split(",")]
        helpful = restrict_attributes(names, candidates)
        if not helpful:
            helpful = sample_items(candidates, self.config.n_meta_attributes, rng=rng)
        return helpful[: self.config.n_meta_attributes]

    def _context_attribute_set(
        self, task: Task, table: Table, helpful: list[str]
    ) -> list[str]:
        """Attributes of the context table: subject key + helpful + targets."""
        ordered: list[str] = []
        pk = table.schema.primary_key()
        if pk is not None:
            ordered.append(pk.name)
        for name in helpful + task.target_attributes():
            if name in table.schema and name not in ordered:
                ordered.append(name)
        if not ordered:
            ordered = list(table.schema.names)
        return ordered

    # ------------------------------------------------------ instance-wise stage
    def _records_plan(
        self,
        task: Task,
        table: Table,
        attributes: list[str],
        rng: np.random.Generator,
        trace: PromptTrace | None,
    ) -> Plan:
        if self.config.top_k_instances == 0:
            return []
        exclude = {
            record.record_id
            for record in task.target_records()
            if record.record_id is not None
        }
        pool = sample_records(
            table, self.config.candidate_sample_size, rng=rng, exclude_ids=exclude
        )
        if not pool:
            return []
        if not self.config.use_instance_retrieval:
            return sample_items(pool, self.config.top_k_instances, rng=rng)

        prompt = INSTANCE_RETRIEVAL.render(
            task=task.short_name,
            query=task.query(),
            instances=numbered_instances(pool, attributes),
        )
        text = yield LLMRequest(prompt, "p_ri")
        if trace is not None:
            trace.instance_retrieval = prompt
            trace.instance_retrieval_output = text
        scores = self._parse_scores(text, len(pool))
        ranked = sorted(range(len(pool)), key=lambda i: (-scores[i], i))
        return [pool[i] for i in ranked[: self.config.top_k_instances]]

    @staticmethod
    def _parse_scores(text: str, n_instances: int) -> list[float]:
        """Parse "index: score" lines; unmentioned instances score 0."""
        scores = [0.0] * n_instances
        for line in text.splitlines():
            match = _SCORE_LINE.match(line)
            if not match:
                continue
            index = int(match.group(1)) - 1
            if 0 <= index < n_instances:
                scores[index] = float(match.group(2))
        return scores
