"""Benchmark: regenerate Tables 8-9 (imputation component ablation)."""

from conftest import run_once

from repro.experiments import table8_9_ablation_imputation


def test_table8_9_ablation(benchmark):
    rows = run_once(benchmark, table8_9_ablation_imputation.run, seed=0, max_tasks=24)
    assert len(rows) == 12
    for dataset in ("restaurant", "buy"):
        ladder = [row for row in rows if row["dataset"] == dataset]
        scores = {row["variant"]: row["score"] for row in ladder}
        # Paper shape: the full pipeline is the best variant (within noise),
        # and it improves over the everything-off baseline.
        assert scores["full UniDM"] >= scores["none"] - 2
        assert scores["full UniDM"] >= max(scores.values()) - 8
