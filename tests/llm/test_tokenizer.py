"""Unit tests for the simple tokenizer."""

import pytest

from repro.llm import SimpleTokenizer, count_tokens


def test_count_tokens_nonzero_for_text():
    assert count_tokens("hello world") >= 2
    assert count_tokens("") == 0


def test_long_words_are_split_into_subwords():
    tokenizer = SimpleTokenizer(subword_length=4)
    tokens = tokenizer.tokenize("internationalization")
    assert len(tokens) == 5
    assert "".join(tokens) == "internationalization"


def test_punctuation_counts_as_tokens():
    tokenizer = SimpleTokenizer()
    assert tokenizer.count("a, b.") == 4


def test_count_many_sums_counts():
    tokenizer = SimpleTokenizer()
    texts = ["one two", "three"]
    assert tokenizer.count_many(texts) == tokenizer.count("one two") + tokenizer.count("three")


def test_invalid_subword_length():
    with pytest.raises(ValueError):
        SimpleTokenizer(subword_length=0)


def test_token_count_monotone_in_length():
    tokenizer = SimpleTokenizer()
    short = tokenizer.count("a few words")
    long = tokenizer.count("a few words " * 10)
    assert long > short
