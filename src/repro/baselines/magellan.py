"""Magellan baseline (Konda et al. 2016) — classic feature-engineered matcher.

Magellan builds entity-matching pipelines from hand-engineered similarity
features and off-the-shelf classical learners.  The reproduction uses the same
feature vector as the Ditto stand-in but a much simpler learner — a single
threshold on a weighted similarity score chosen to maximise training F1 —
which keeps it a notch below the neural matcher, as in Table 4.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.tasks.entity_resolution import EntityResolutionTask
from ..core.types import TaskType
from ..datasets.base import BenchmarkDataset
from ..llm.finetune import LabeledPair
from .base import Baseline
from .ditto import pair_features

#: Fixed blend of the similarity features (bias excluded) used as the score.
#: Classic feature engineering leans on token overlap and edit distance only;
#: the richer numeric-agreement signals are what the neural matcher adds.
_SCORE_WEIGHTS = np.array([0.0, 0.55, 0.0, 0.45, 0.0, 0.0, 0.0])


class MagellanMatcher(Baseline):
    """Threshold rule over a blended similarity score, tuned on the train split."""

    name = "Magellan"

    def __init__(self, seed: int = 0, max_train_pairs: int = 30):
        super().__init__(seed)
        self.threshold: float | None = None
        self.max_train_pairs = max_train_pairs

    def score(self, left: str, right: str) -> float:
        return float(pair_features(left, right) @ _SCORE_WEIGHTS)

    def fit(self, pairs: Sequence[LabeledPair]) -> "MagellanMatcher":
        if not pairs:
            raise ValueError("Magellan requires labelled training pairs")
        if len(pairs) > self.max_train_pairs:
            indices = self.rng.choice(len(pairs), size=self.max_train_pairs, replace=False)
            pairs = [pairs[int(i)] for i in indices]
        scores = np.array([self.score(p.left, p.right) for p in pairs])
        labels = np.array([bool(p.label) for p in pairs])
        candidates = np.unique(np.concatenate([scores, np.linspace(0.0, 1.0, 41)]))
        best_threshold, best_f1 = 0.5, -1.0
        for threshold in candidates:
            predictions = scores >= threshold
            tp = int(np.sum(predictions & labels))
            fp = int(np.sum(predictions & ~labels))
            fn = int(np.sum(~predictions & labels))
            if tp == 0:
                continue
            precision = tp / (tp + fp)
            recall = tp / (tp + fn)
            f1 = 2 * precision * recall / (precision + recall)
            if f1 > best_f1:
                best_threshold, best_f1 = float(threshold), f1
        self.threshold = best_threshold
        return self

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.ENTITY_RESOLUTION)
        if self.threshold is None:
            if not dataset.train_pairs:
                raise ValueError(
                    f"dataset {dataset.name!r} has no training split for Magellan"
                )
            self.fit(dataset.train_pairs)
        predictions: list[bool] = []
        for task in dataset.tasks:
            if not isinstance(task, EntityResolutionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            predictions.append(self.score(task.describe_a(), task.describe_b()) >= self.threshold)
        return predictions
