"""Parse pipeline prompts back into structured requests.

A real LLM learns to recognise instructions from text; the simulated LLM does
the same job explicitly with regular expressions over the canonical templates
in :mod:`repro.prompting.templates`.  The parser is deliberately tolerant — it
classifies FM-style prompts (the baseline's different phrasing), the direct
concatenation prompts used in ablations, and UniDM's generated cloze questions,
because the simulated model must answer all of them through the same
``complete(prompt)`` interface.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from enum import Enum

from ..prompting.templates import CLOZE_BLANK

_BRACKET = r"\[(.*?)\]"


class PromptKind(str, Enum):
    """The five prompt roles the simulated LLM recognises."""

    META_RETRIEVAL = "meta_retrieval"
    INSTANCE_RETRIEVAL = "instance_retrieval"
    DATA_PARSING = "data_parsing"
    CLOZE_CONSTRUCTION = "cloze_construction"
    ANSWER = "answer"


class AnswerStyle(str, Enum):
    """How the final answer prompt was constructed."""

    CLOZE = "cloze"      # UniDM target prompt construction
    DIRECT = "direct"    # naive concatenation (ablation)
    FM = "fm"            # Narayan et al. FM baseline phrasing


class ContextFormat(str, Enum):
    """Format of the context portion of an answer prompt."""

    NATURAL = "natural"  # parsed by p_dp into fluent sentences
    PAIRS = "pairs"      # serialized attribute:value pairs
    NONE = "none"        # no context at all


@dataclass
class ParsedMetaRetrieval:
    task: str
    query: str
    candidates: list[str]


@dataclass
class ParsedInstanceRetrieval:
    task: str
    query: str
    instances: list[tuple[int, str]]  # (index, serialized text)


@dataclass
class ParsedDataParsing:
    rows: list[list[tuple[str, str]]]  # rows of (attribute, value) pairs


@dataclass
class ParsedClozeConstruction:
    task_description: str
    task_name: str
    context: str
    query: str


@dataclass
class ParsedAnswer:
    """Everything the answer engine needs to know about an answer prompt."""

    task: str = "unknown"
    style: AnswerStyle = AnswerStyle.DIRECT
    context_format: ContextFormat = ContextFormat.NONE
    context_text: str = ""
    entity: str | None = None
    attribute: str | None = None
    value: str | None = None
    entity_a: str | None = None
    entity_b: str | None = None
    question: str | None = None
    source: str | None = None
    example_pairs: list[tuple[str, str]] = field(default_factory=list)
    raw_prompt: str = ""


# Known task names, used to recognise task descriptions in claims and direct
# prompts.  Order matters: longer names first so prefixes do not shadow them.
TASK_NAMES = (
    "table question answering",
    "information extraction",
    "entity resolution",
    "error detection",
    "data transformation",
    "data imputation",
    "join discovery",
    "data discovery",
)


def classify(prompt: str) -> PromptKind:
    """Classify a prompt into one of the five roles."""
    if "Which attributes are helpful" in prompt:
        return PromptKind.META_RETRIEVAL
    if "Score the relevance" in prompt:
        return PromptKind.INSTANCE_RETRIEVAL
    if "convert the items into a textual format" in prompt:
        return PromptKind.DATA_PARSING
    if "Write the claim as a cloze question" in prompt:
        return PromptKind.CLOZE_CONSTRUCTION
    return PromptKind.ANSWER


def _bracketed(prompt: str) -> list[str]:
    return re.findall(_BRACKET, prompt, flags=re.DOTALL)


def detect_task_name(text: str) -> str:
    """Match the leading task name mentioned in a description or claim."""
    lowered = text.lower()
    for name in TASK_NAMES:
        if name in lowered:
            return name
    return "unknown"


def parse_meta_retrieval(prompt: str) -> ParsedMetaRetrieval:
    groups = _bracketed(prompt)
    if len(groups) < 3:
        raise ValueError("malformed meta-retrieval prompt")
    task, query, candidates = groups[0], groups[1], groups[2]
    return ParsedMetaRetrieval(
        task=task.strip(),
        query=query.strip(),
        candidates=[c.strip() for c in candidates.split(",") if c.strip()],
    )


_INSTANCE_LINE = re.compile(r"^\s*(\d+)\)\s*(.+)$")


def parse_instance_retrieval(prompt: str) -> ParsedInstanceRetrieval:
    groups = _bracketed(prompt)
    if len(groups) < 2:
        raise ValueError("malformed instance-retrieval prompt")
    task, query = groups[0].strip(), groups[1].strip()
    instances: list[tuple[int, str]] = []
    for line in prompt.splitlines():
        match = _INSTANCE_LINE.match(line)
        if match:
            instances.append((int(match.group(1)), match.group(2).strip()))
    return ParsedInstanceRetrieval(task=task, query=query, instances=instances)


_PAIR = re.compile(r"([A-Za-z_][\w %/-]*)\s*:\s*([^,\n\]]+)")


def parse_pairs(text: str) -> list[tuple[str, str]]:
    """Extract ``attribute: value`` pairs from a serialized row."""
    return [(a.strip(), v.strip().rstrip(".")) for a, v in _PAIR.findall(text)]


def parse_data_parsing(prompt: str) -> ParsedDataParsing:
    match = re.search(r"logical order:\s*\n?\[(.*)\]", prompt, flags=re.DOTALL)
    if not match:
        raise ValueError("malformed data-parsing prompt")
    block = match.group(1)
    rows = [parse_pairs(line) for line in block.splitlines() if line.strip()]
    rows = [row for row in rows if row]
    return ParsedDataParsing(rows=rows)


def parse_cloze_construction(prompt: str) -> ParsedClozeConstruction:
    # The final claim is the one immediately before the trailing
    # "Cloze question:" with no completion.
    claims = re.findall(
        r"Claim:\s*(.*?)\nCloze question:", prompt, flags=re.DOTALL
    )
    if not claims:
        raise ValueError("malformed cloze-construction prompt")
    claim = claims[-1].strip()
    task_description = ""
    context = ""
    query = ""
    task_match = re.search(r"The task is\s*(.*?)(?:\s*The context is|$)", claim, re.DOTALL)
    if task_match:
        task_description = task_match.group(1).strip()
    context_match = re.search(r"The context is\s*\[(.*?)\]\.", claim, re.DOTALL)
    if context_match:
        context = context_match.group(1).strip()
    query_match = re.search(r"The target query is\s*\[(.*?)\]\.?\s*$", claim, re.DOTALL)
    if query_match:
        query = query_match.group(1).strip()
    return ParsedClozeConstruction(
        task_description=task_description,
        task_name=detect_task_name(task_description or claim),
        context=context,
        query=query,
    )


# ---------------------------------------------------------------------------
# Answer prompt parsing
# ---------------------------------------------------------------------------

def detect_context_format(context: str) -> ContextFormat:
    """Guess whether a context block is fluent text or serialized pairs."""
    if not context.strip():
        return ContextFormat.NONE
    pair_hits = len(_PAIR.findall(context))
    verb_hits = len(
        re.findall(
            r"\b(is|are|was|were|won|has|have|belongs|located|contains|priced)\b",
            context,
        )
    )
    if verb_hits >= pair_hits:
        return ContextFormat.NATURAL
    return ContextFormat.PAIRS


_TRANSFORM_PAIR = re.compile(
    r"([^\s,]+) can be transformed to ([^,.\n]+)", re.IGNORECASE
)
_FM_TRANSFORM_PAIR = re.compile(r"^(\S+)\s+to\s+(.+?)\s*$", re.MULTILINE)


def _parse_query_for_task(task: str, query: str, parsed: ParsedAnswer) -> None:
    """Fill task-specific fields of ``parsed`` from a structured query string."""
    query = query.strip()
    if task == "data imputation":
        if "," in query:
            entity, attribute = query.rsplit(",", 1)
            parsed.entity, parsed.attribute = entity.strip(), attribute.strip()
        else:
            parsed.entity = query
    elif task == "data transformation":
        parsed.source = query.rstrip("?").rstrip(":").strip()
    elif task == "error detection":
        if ":" in query:
            attribute, value = query.split(":", 1)
            parsed.attribute = attribute.strip()
            parsed.value = value.strip().rstrip("?").strip()
        else:
            parsed.value = query.rstrip("?")
    elif task == "entity resolution":
        match = re.search(
            r"Entity A is\s*(.*?)[,;]\s*Entity B is\s*(.*)$", query, re.DOTALL
        )
        if match:
            parsed.entity_a = match.group(1).strip()
            parsed.entity_b = match.group(2).strip().rstrip("?")
    elif task == "join discovery":
        parsed.question = query
    elif task == "information extraction":
        parsed.attribute = query
    else:
        parsed.question = query


def _parse_direct(prompt: str) -> ParsedAnswer:
    groups = _bracketed(prompt)
    parsed = ParsedAnswer(style=AnswerStyle.DIRECT, raw_prompt=prompt)
    if len(groups) >= 3:
        task_text, context, query = groups[0], groups[1], groups[2]
        parsed.task = detect_task_name(task_text)
        parsed.context_text = context.strip()
        parsed.context_format = detect_context_format(parsed.context_text)
        _parse_query_for_task(parsed.task, query, parsed)
        if parsed.task == "data transformation":
            parsed.example_pairs = _extract_transform_examples(parsed.context_text)
    return parsed


def _extract_transform_examples(text: str) -> list[tuple[str, str]]:
    pairs = [
        (a, b) for a, b in _TRANSFORM_PAIR.findall(text) if CLOZE_BLANK not in (a, b)
    ]
    if pairs:
        return pairs
    # "data before transformation: X, data after transformation: Y" blocks
    before_after = re.findall(
        r"data before transformation:\s*([^,\n]+?)[,;]?\s*"
        r"data after transformation:\s*([^,\n]+)",
        text,
        re.IGNORECASE,
    )
    if before_after:
        return list(before_after)
    return [
        (a, b)
        for a, b in _FM_TRANSFORM_PAIR.findall(text)
        if CLOZE_BLANK not in (a, b) and a.lower() != "transformed"
    ]


def _parse_fm(prompt: str) -> ParsedAnswer:
    parsed = ParsedAnswer(style=AnswerStyle.FM, raw_prompt=prompt)
    if "Are Entity A and Entity B the same" in prompt:
        parsed.task = "entity resolution"
        matches = re.findall(
            r"Entity A is\s*(.*?)\.\s*Entity B is\s*(.*?)\.\s*Are Entity A",
            prompt,
            re.DOTALL,
        )
        if matches:
            parsed.entity_a, parsed.entity_b = matches[-1]
        # Demonstration pairs before the last question form the context.
        last_block = prompt.rfind("Entity A is")
        parsed.context_text = prompt[:last_block].strip()
    elif re.search(r"Is there an error in", prompt):
        parsed.task = "error detection"
        matches = re.findall(
            r"Is there an error in\s*([\w %/-]+)\s*:\s*(.+?)\?", prompt
        )
        if matches:
            parsed.attribute, parsed.value = matches[-1]
            parsed.attribute = parsed.attribute.strip()
            parsed.value = parsed.value.strip()
        last = prompt.rfind("Is there an error in")
        parsed.context_text = prompt[:last].strip()
    elif re.search(r"What is the\s+[\w %/-]+\?", prompt):
        parsed.task = "data imputation"
        attr_match = re.findall(r"What is the\s+([\w %/-]+)\?", prompt)
        parsed.attribute = attr_match[-1].strip() if attr_match else None
        # The final (unanswered) row precedes the last question.
        last = prompt.rfind("What is the")
        target_row = prompt[:last]
        # rows are separated by newlines in the FM baseline
        lines = [l for l in target_row.splitlines() if l.strip()]
        if lines:
            row_pairs = parse_pairs(lines[-1])
            if row_pairs:
                parsed.entity = row_pairs[0][1]
        parsed.context_text = "\n".join(lines[:-1]).strip()
    else:
        parsed.task = "data transformation"
        parsed.example_pairs = _extract_transform_examples(prompt)
        source_match = re.search(r"(\S+)\s+to\s*$", prompt.strip())
        if source_match:
            parsed.source = source_match.group(1)
        parsed.context_text = prompt.strip()
    parsed.context_format = detect_context_format(parsed.context_text)
    return parsed


# Entity / attribute groups exclude sentence punctuation so that the pattern
# binds to the final cloze sentence rather than spanning the whole context.
_CLOZE_IMPUTATION = re.compile(
    r"The ([\w %/-]+?) of ([^.\n]+?) is " + re.escape(CLOZE_BLANK), re.IGNORECASE
)
_CLOZE_EXTRACTION = re.compile(
    r"The ([\w %/-]+?) is " + re.escape(CLOZE_BLANK), re.IGNORECASE
)
_CLOZE_TRANSFORM = re.compile(
    r"(\S+) can be transformed to " + re.escape(CLOZE_BLANK), re.IGNORECASE
)
_CLOZE_ERROR = re.compile(
    r'error in the ([\w %/-]+?) "(.+?)"', re.IGNORECASE
)
_CLOZE_ER = re.compile(
    r"Entity A is (.+?), whereas Entity B is (.+?)\. Are these two .*? the same\?",
    re.DOTALL | re.IGNORECASE,
)
_CLOZE_TABLEQA = re.compile(r"Question:\s*(.*?)\s*The answer is", re.DOTALL)


def _parse_cloze(prompt: str) -> ParsedAnswer:
    parsed = ParsedAnswer(style=AnswerStyle.CLOZE, raw_prompt=prompt)
    text = prompt.strip()

    if "Are the two columns joinable" in text:
        parsed.task = "join discovery"
        parsed.context_text = text
    elif _CLOZE_ERROR.search(text) or ("error" in text.lower() and "Yes or No" in text):
        parsed.task = "error detection"
        match = _CLOZE_ERROR.search(text)
        if match:
            parsed.attribute, parsed.value = match.group(1).strip(), match.group(2).strip()
        parsed.context_text = text
    elif re.search(r"Are these two .*? the same\?", text):
        parsed.task = "entity resolution"
        match = _CLOZE_ER.search(text)
        if match:
            parsed.entity_a = match.group(1).strip()
            parsed.entity_b = match.group(2).strip()
        parsed.context_text = text
    elif _CLOZE_TRANSFORM.search(text):
        parsed.task = "data transformation"
        match = _CLOZE_TRANSFORM.search(text)
        parsed.source = match.group(1) if match else None
        parsed.example_pairs = _extract_transform_examples(text)
        parsed.context_text = text
    elif _CLOZE_TABLEQA.search(text):
        parsed.task = "table question answering"
        match = _CLOZE_TABLEQA.search(text)
        parsed.question = match.group(1).strip() if match else None
        parsed.context_text = text
    elif _CLOZE_IMPUTATION.search(text):
        parsed.task = "data imputation"
        match = _CLOZE_IMPUTATION.search(text)
        if match:
            parsed.attribute = match.group(1).strip()
            parsed.entity = match.group(2).strip()
        parsed.context_text = text
    elif _CLOZE_EXTRACTION.search(text):
        parsed.task = "information extraction"
        match = _CLOZE_EXTRACTION.search(text)
        parsed.attribute = match.group(1).strip() if match else None
        parsed.context_text = text
    else:
        parsed.task = detect_task_name(text)
        parsed.context_text = text
    parsed.context_format = detect_context_format(parsed.context_text)
    return parsed


def parse_answer(prompt: str) -> ParsedAnswer:
    """Parse a final answer prompt regardless of which method produced it."""
    stripped = prompt.strip()
    if stripped.startswith("The task is [") and stripped.endswith("Answer:"):
        return _parse_direct(stripped)
    if (
        re.search(r"What is the\s+[\w %/-]+\?\s*$", stripped)
        or "Are Entity A and Entity B the same" in stripped
        # FM phrases error detection as "attribute: value?"; the cloze version
        # quotes the value instead, so the colon is what distinguishes them.
        or re.search(r"Is there an error in [\w %/-]+\s*:\s*.+\? Yes or No\.?\s*$", stripped)
        or re.search(r"\S+\s+to\s*$", stripped)
        and CLOZE_BLANK not in stripped
        and "cloze" not in stripped.lower()
    ):
        return _parse_fm(stripped)
    return _parse_cloze(stripped)
