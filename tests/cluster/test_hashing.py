"""Unit tests for the consistent-hash ring and the spec routing key."""

import pytest

from repro.api import TransformationSpec
from repro.cluster import HashRing, spec_key


def test_ring_is_deterministic_across_instances():
    keys = [f"key-{i}" for i in range(200)]
    ring_a = HashRing(["w0", "w1", "w2"])
    ring_b = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
    assert [ring_a.node_for(k) for k in keys] == [ring_b.node_for(k) for k in keys]


def test_every_node_owns_some_keys():
    ring = HashRing([f"w{i}" for i in range(4)], replicas=64)
    counts = ring.distribution(f"key-{i}" for i in range(400))
    assert set(counts) == {"w0", "w1", "w2", "w3"}
    assert all(count > 0 for count in counts.values())


def test_removal_moves_only_the_dead_nodes_keys():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    keys = [f"key-{i}" for i in range(300)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("w2")
    for key in keys:
        after = ring.node_for(key)
        if before[key] != "w2":
            assert after == before[key], "a surviving node's key moved"
        else:
            assert after != "w2"


def test_add_is_idempotent_and_remove_unknown_is_noop():
    ring = HashRing(["w0"])
    ring.add("w0")
    ring.remove("ghost")
    assert ring.nodes == {"w0"}
    assert len(ring) == 1


def test_empty_ring_raises_lookup_error():
    ring = HashRing(["w0"])
    ring.remove("w0")
    with pytest.raises(LookupError):
        ring.node_for("anything")


def test_replicas_must_be_positive():
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_spec_key_is_stable_and_content_addressed():
    spec = TransformationSpec(value="19990415", examples=[["a", "b"]])
    same = TransformationSpec(value="19990415", examples=[["a", "b"]])
    other = TransformationSpec(value="20230101", examples=[["a", "b"]])
    assert spec_key(spec) == spec_key(same)
    assert spec_key(spec) != spec_key(other)


# ----------------------------------------------------- elasticity properties
# The resize contract add_worker/remove_worker rely on: consistent hashing
# relocates only the minimal key set.  Derandomized so CI is reproducible.
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster import minimal_moved_keys  # noqa: E402

_node_counts = st.integers(min_value=1, max_value=8)
_key_sets = st.sets(
    st.text(alphabet="abcdef0123456789-", min_size=1, max_size=16),
    min_size=1,
    max_size=200,
)


@settings(derandomize=True, max_examples=50, deadline=None)
@given(n_nodes=_node_counts, keys=_key_sets)
def test_join_moves_keys_only_onto_the_new_node(n_nodes, keys):
    before = HashRing([f"w{i}" for i in range(n_nodes)])
    after = before.with_node("joiner")
    moved = minimal_moved_keys(before, after, keys)
    for key, (old_owner, new_owner) in moved.items():
        # Minimality: every relocation lands on the joiner; no key ever
        # moves between two surviving nodes.
        assert new_owner == "joiner"
        assert old_owner != "joiner"
    for key in keys:
        if key not in moved:
            assert after.node_for(key) == before.node_for(key)


@settings(derandomize=True, max_examples=50, deadline=None)
@given(n_nodes=st.integers(min_value=2, max_value=8), keys=_key_sets)
def test_leave_moves_only_the_leavers_keys(n_nodes, keys):
    nodes = [f"w{i}" for i in range(n_nodes)]
    before = HashRing(nodes)
    after = before.without_node(nodes[0])
    moved = minimal_moved_keys(before, after, keys)
    for key, (old_owner, new_owner) in moved.items():
        assert old_owner == nodes[0]
        assert new_owner != nodes[0]
    for key in keys:
        if key not in moved:
            assert after.node_for(key) == before.node_for(key)


@settings(derandomize=True, max_examples=50, deadline=None)
@given(n_nodes=_node_counts, keys=_key_sets)
def test_add_remove_round_trip_restores_placement_exactly(n_nodes, keys):
    ring = HashRing([f"w{i}" for i in range(n_nodes)])
    placement = {key: ring.node_for(key) for key in keys}
    ring.add("transient")
    ring.remove("transient")
    assert {key: ring.node_for(key) for key in keys} == placement


@settings(derandomize=True, max_examples=50, deadline=None)
@given(n_nodes=st.integers(min_value=2, max_value=8), keys=_key_sets)
def test_remove_add_round_trip_restores_placement_exactly(n_nodes, keys):
    nodes = [f"w{i}" for i in range(n_nodes)]
    ring = HashRing(nodes)
    placement = {key: ring.node_for(key) for key in keys}
    ring.remove(nodes[-1])
    ring.add(nodes[-1])
    assert {key: ring.node_for(key) for key in keys} == placement


def test_join_moved_fraction_is_about_one_over_n():
    # Deterministic (sha256 placement, fixed keys): a join should relocate
    # roughly 1/(N+1) of the keys — the consistent-hash-minimal fraction —
    # never the ~(N-1)/N a naive mod-N resharding would.
    keys = [f"key-{i}" for i in range(3000)]
    for n_nodes in (2, 4, 8):
        ring = HashRing([f"w{i}" for i in range(n_nodes)])
        moved = minimal_moved_keys(ring, ring.with_node("joiner"), keys)
        fraction = len(moved) / len(keys)
        expected = 1.0 / (n_nodes + 1)
        assert 0.3 * expected <= fraction <= 3.0 * expected
