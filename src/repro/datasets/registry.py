"""Dataset registry: look up a builder by name and build it with a seed."""

from __future__ import annotations

from typing import Type

from .base import BenchmarkDataset, DatasetBuilder
from .entity_resolution import (
    AmazonGoogleDataset,
    BeerDataset,
    ItunesAmazonDataset,
    WalmartAmazonDataset,
)
from .error_detection import AdultDataset, HospitalDataset
from .extraction import NBAPlayersDataset
from .imputation import BuyDataset, RestaurantDataset
from .join_discovery import NextiaJDDataset
from .table_qa import WikiTableQuestionsDataset
from .transformation import BingQueryLogsDataset, StackOverflowDataset

DATASET_REGISTRY: dict[str, Type[DatasetBuilder]] = {
    cls.name: cls
    for cls in (
        RestaurantDataset,
        BuyDataset,
        StackOverflowDataset,
        BingQueryLogsDataset,
        HospitalDataset,
        AdultDataset,
        BeerDataset,
        AmazonGoogleDataset,
        ItunesAmazonDataset,
        WalmartAmazonDataset,
        WikiTableQuestionsDataset,
        NextiaJDDataset,
        NBAPlayersDataset,
    )
}


def list_datasets() -> list[str]:
    """Names of all registered benchmark datasets."""
    return sorted(DATASET_REGISTRY)


def load_dataset(name: str, seed: int = 0, **kwargs) -> BenchmarkDataset:
    """Build the named dataset with the given seed and builder overrides."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    return DATASET_REGISTRY[key](seed=seed, **kwargs).build()
