"""One-shot diagnostic bundles: everything a postmortem needs, in one JSON.

``repro doctor`` (and the ``/doctor`` route on the stats port) answer the
question "what was this process doing *right then*" with a single
self-contained document: process identity, effective configuration, a full
stats snapshot, the rolling time-series windows, the firing alerts and SLO
states that justify them, the last N structured events, and a
``faulthandler`` dump of every thread's stack (the part no metric can
reconstruct after the fact).

Bundles are built **inside** the serving process — thread stacks of the
`repro doctor` CLI process would be useless — and contain only what the
process already knows: no filesystem scans, no network calls, bounded
size.  Timestamps in here are monotonic (uptime-relative) like the rest of
:mod:`repro.obs`; the CLI stamps wall-clock capture time on the client
side where a stepped clock can do no harm.
"""

from __future__ import annotations

import faulthandler
import platform
import sys
import tempfile
import threading
from typing import Any, Callable, Mapping

from .events import get_default_event_log

#: Default number of trailing events included in a bundle.
DEFAULT_EVENT_TAIL = 200


def thread_stacks() -> str:
    """Every thread's current stack, via :func:`faulthandler.dump_traceback`.

    ``faulthandler`` writes through a real file descriptor (it is designed
    to work from signal handlers), so the dump goes through an anonymous
    temporary file rather than ``io.StringIO``.
    """
    with tempfile.TemporaryFile(mode="w+") as sink:
        faulthandler.dump_traceback(file=sink, all_threads=True)
        sink.seek(0)
        return sink.read()


def process_info() -> dict[str, Any]:
    """Identity of the process the bundle describes."""
    import os

    return {
        "pid": os.getpid(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "argv": list(sys.argv),
        "threads": sorted(thread.name for thread in threading.enumerate()),
    }


def build_bundle(
    *,
    snapshot_fn: Callable[[], Mapping[str, Any]] | None = None,
    monitor: Any = None,
    config: Mapping[str, Any] | None = None,
    event_log: Any = None,
    max_events: int = DEFAULT_EVENT_TAIL,
) -> dict[str, Any]:
    """Assemble one diagnostic bundle (plain JSON-able dict).

    Parameters
    ----------
    snapshot_fn:
        Zero-argument stats-snapshot callable (the same one the stats port
        serves).  Its result lands under ``"snapshot"`` — including the
        monitor-derived ``alerts``/``slos``/``timeseries``/``health``
        sections when the service carries a monitor.
    monitor:
        Optional :class:`~repro.obs.slo.HealthMonitor`; when given, its
        sections are *also* hoisted to the bundle top level so a breach is
        visible without digging, even if ``snapshot_fn`` is absent.
    config:
        The effective serve configuration (flags, tenants, SLOs).
    event_log:
        Event log to tail (process default when ``None``).
    max_events:
        Trailing events to include (bounded bundle size).
    """
    bundle: dict[str, Any] = {
        "bundle": "repro-doctor",
        "version": 1,
        "process": process_info(),
    }
    if config is not None:
        bundle["config"] = dict(config)
    errors: dict[str, str] = {}
    if snapshot_fn is not None:
        try:
            bundle["snapshot"] = dict(snapshot_fn())
        except Exception as exc:  # a broken snapshot must not break doctor
            errors["snapshot"] = f"{type(exc).__name__}: {exc}"
    if monitor is not None:
        try:
            sections = monitor.sections()
            bundle["alerts"] = sections["alerts"]
            bundle["slos"] = sections["slos"]
            bundle["timeseries"] = sections["timeseries"]
            bundle["health"] = sections["health"]
        except Exception as exc:
            errors["monitor"] = f"{type(exc).__name__}: {exc}"
    log = event_log if event_log is not None else get_default_event_log()
    try:
        events = log.events()
        bundle["events"] = events[-max_events:] if max_events else events
    except Exception as exc:
        errors["events"] = f"{type(exc).__name__}: {exc}"
    try:
        bundle["thread_stacks"] = thread_stacks()
    except Exception as exc:
        errors["thread_stacks"] = f"{type(exc).__name__}: {exc}"
    if errors:
        bundle["errors"] = errors
    return bundle


__all__ = ["DEFAULT_EVENT_TAIL", "build_bundle", "process_info", "thread_stacks"]
