"""Answer synthesis for the simulated LLM.

Given a parsed answer prompt (:class:`~repro.llm.prompt_parser.ParsedAnswer`),
the engine decides what the model would reply.  The decision combines the same
ingredients a real LLM combines:

* **context evidence** extracted from the prompt text (demonstration rows,
  parsed sentences, example transformation pairs);
* **world knowledge** recalled from the :class:`~repro.llm.knowledge.WorldKnowledge`
  store with probability scaled by the model's ``knowledge_recall`` and the
  fact's corpus ``prevalence``;
* **prompt quality** — fluent (parsed) context is absorbed more reliably than
  serialized pairs, and a well-formed cloze question reduces task confusion
  relative to a naive concatenation.  These are the mechanisms the paper's
  ablations (Tables 8-10) attribute gains to, so they are modelled explicitly
  rather than hard-coded per experiment.

All stochastic choices are drawn from a generator owned by the calling model,
so experiments are reproducible from a single seed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..datalake.text import normalize, string_similarity, tokenize
from ..prompting.templates import CLOZE_BLANK
from ..transforms.search import ProgramSearcher
from .knowledge import WorldKnowledge
from .profiles import ModelProfile
from .prompt_parser import AnswerStyle, ContextFormat, ParsedAnswer, parse_pairs

#: Bonus to answer quality from fluent natural-language context (vs. pairs).
NATURAL_CONTEXT_BONUS = 0.045
#: Bonus from serialized context relative to no context at all.
PAIRS_CONTEXT_BONUS = 0.015
#: Bonus from a cloze-formulated target prompt (vs. direct concatenation / FM).
CLOZE_PROMPT_BONUS = 0.035
#: Extra bonus when the correct value is literally present in the context.
COPY_FROM_CONTEXT_FLOOR = 0.985


@dataclass
class ContextItem:
    """One piece of evidence extracted from the prompt context."""

    subject: str
    attribute: str
    value: str


def _clip01(x: float, lo: float = 0.02, hi: float = 0.99) -> float:
    return float(min(hi, max(lo, x)))


class AnswerEngine:
    """Produces answer text for parsed answer prompts."""

    def __init__(
        self,
        profile: ModelProfile,
        knowledge: WorldKnowledge,
        rng: np.random.Generator,
        program_searcher: ProgramSearcher | None = None,
    ):
        self.profile = profile
        self.knowledge = knowledge
        self.rng = rng
        self.searcher = program_searcher or ProgramSearcher(max_depth=2)

    # ------------------------------------------------------------------ public
    def answer(self, parsed: ParsedAnswer) -> str:
        handlers = {
            "data imputation": self._answer_imputation,
            "data transformation": self._answer_transformation,
            "error detection": self._answer_error_detection,
            "entity resolution": self._answer_entity_resolution,
            "table question answering": self._answer_table_qa,
            "join discovery": self._answer_join_discovery,
            "information extraction": self._answer_extraction,
        }
        handler = handlers.get(parsed.task)
        if handler is None:
            return self._answer_generic(parsed)
        return handler(parsed)

    # --------------------------------------------------------------- bonuses
    def _prompt_quality(self, parsed: ParsedAnswer) -> float:
        """Additive quality bonus from context format and prompt style."""
        bonus = 0.0
        if parsed.context_format is ContextFormat.NATURAL:
            bonus += NATURAL_CONTEXT_BONUS
        elif parsed.context_format is ContextFormat.PAIRS:
            bonus += PAIRS_CONTEXT_BONUS
        if parsed.style is AnswerStyle.CLOZE:
            bonus += CLOZE_PROMPT_BONUS
        return bonus

    def _context_fidelity(self, parsed: ParsedAnswer) -> float:
        """Probability of correctly absorbing one context item."""
        fidelity = self.profile.context_fidelity
        if parsed.context_format is ContextFormat.PAIRS:
            fidelity *= 0.97
        elif parsed.context_format is ContextFormat.NONE:
            fidelity *= 0.0
        return fidelity

    # ------------------------------------------------------------ context use
    def extract_context_items(self, parsed: ParsedAnswer) -> list[ContextItem]:
        """Pull (subject, attribute, value) evidence out of the context text.

        Natural-language context is matched against the knowledge store's
        relation templates (the same templates the parsing step used to write
        the sentences); serialized context is split into pairs per row, with
        the first pair of a row treated as the row's subject.  Each extracted
        item survives with probability equal to the model's context fidelity,
        modelling imperfect reading of long prompts.
        """
        items: list[ContextItem] = []
        text = parsed.context_text
        if not text.strip():
            return items
        fidelity = self._context_fidelity(parsed)

        # Sentence-level extraction through relation templates.
        for relation in self.knowledge.known_relations:
            pattern = self.knowledge.relation_regex(relation)
            for sentence in re.split(r"(?<=[.!?])\s+|\n", text):
                sentence = sentence.strip().rstrip(".")
                if not sentence or CLOZE_BLANK in sentence:
                    continue
                match = pattern.match(sentence)
                if match:
                    items.append(
                        ContextItem(
                            subject=match.group("subject").strip(),
                            attribute=relation,
                            value=match.group("value").strip(),
                        )
                    )

        # Row-level extraction of serialized pairs.
        for line in text.splitlines():
            pairs = parse_pairs(line)
            if len(pairs) < 2:
                continue
            subject = pairs[0][1]
            for attribute, value in pairs[1:]:
                if CLOZE_BLANK in value:
                    continue
                items.append(ContextItem(subject=subject, attribute=attribute, value=value))

        # FM-style demonstration rows: "... What is the city? atlanta"
        for match in re.finditer(
            r"^(?P<row>.+?)\s+What is the\s+(?P<attr>[\w %/-]+)\?\s*(?P<ans>\S.*)$",
            text,
            re.MULTILINE,
        ):
            row_pairs = parse_pairs(match.group("row"))
            if row_pairs:
                items.append(
                    ContextItem(
                        subject=row_pairs[0][1],
                        attribute=match.group("attr").strip(),
                        value=match.group("ans").strip().rstrip("."),
                    )
                )

        if fidelity >= 1.0 or not items:
            return items
        keep = self.rng.random(len(items)) < fidelity
        return [item for item, k in zip(items, keep) if k]

    # --------------------------------------------------------------- imputation
    def _answer_imputation(self, parsed: ParsedAnswer) -> str:
        entity = parsed.entity or ""
        attribute = parsed.attribute or ""
        fact = self.knowledge.lookup(entity, attribute)
        items = self.extract_context_items(parsed)
        context_values = [
            item.value
            for item in items
            if normalize(item.attribute) == normalize(attribute)
        ]
        quality = self._prompt_quality(parsed)

        if fact is None:
            # The model has no memory of this entity: it can only echo the most
            # common context value or admit ignorance.
            if context_values:
                return _most_common(context_values)
            return "unknown"

        true_value = fact.value
        prevalence = fact.prevalence * self.profile.familiarity(fact.domain)
        p_recall = self.profile.knowledge_recall * prevalence
        p_correct = p_recall + quality
        if context_values:
            p_correct += 0.02  # any grounding helps a little
        if any(normalize(v) == normalize(true_value) for v in context_values):
            # The right value is literally in the prompt: the model mostly just
            # needs to copy it, limited by how reliably it reads the context.
            copy_prob = COPY_FROM_CONTEXT_FLOOR * self._context_fidelity(parsed) + quality
            p_correct = max(p_correct, copy_prob)
        p_correct = _clip01(p_correct)

        if self.rng.random() < p_correct:
            return true_value
        return self._wrong_value(attribute, true_value, context_values)

    def _wrong_value(
        self, attribute: str, true_value: str, context_values: list[str]
    ) -> str:
        """A plausible but wrong answer (a distractor)."""
        wrong_context = [
            v for v in context_values if normalize(v) != normalize(true_value)
        ]
        if wrong_context:
            return _most_common(wrong_context)
        domain = [
            v
            for v in sorted(self.knowledge.domain_values(attribute))
            if normalize(v) != normalize(true_value)
        ]
        if domain:
            return str(domain[int(self.rng.integers(len(domain)))])
        return "unknown"

    # ----------------------------------------------------------- transformation
    def _answer_transformation(self, parsed: ParsedAnswer) -> str:
        source = (parsed.source or "").strip()
        examples = [
            (a, b) for a, b in parsed.example_pairs if normalize(a) != normalize(source)
        ]
        quality = self._prompt_quality(parsed)

        # Syntactic route: infer the format-rewrite program from the examples.
        program_output: str | None = None
        if examples:
            result = self.searcher.search(examples[:4])
            if result.program is not None:
                program_output = result.program(source)

        if program_output is not None:
            p_correct = _clip01(0.82 * self.profile.capability + 0.10 + quality)
            if self.rng.random() < p_correct:
                return program_output
            return _perturb_string(program_output, self.rng)

        # Semantic route: the mapping is a lookup the model may simply know
        # (e.g. country -> ISO code); the dataset registers these as facts.
        fact = self.knowledge.lookup(source, "transformation")
        if fact is not None:
            prevalence = fact.prevalence * self.profile.familiarity(fact.domain)
            p_correct = _clip01(self.profile.knowledge_recall * prevalence + quality)
            if self.rng.random() < p_correct:
                return fact.value
            return _perturb_string(fact.value, self.rng)

        # No program and no knowledge: guess by echoing the source.
        return source

    # ----------------------------------------------------------- error detection
    def _answer_error_detection(self, parsed: ParsedAnswer) -> str:
        attribute = parsed.attribute or ""
        value = parsed.value or ""
        quality = self._prompt_quality(parsed)

        validity = self.knowledge.is_valid_value(attribute, value)
        if validity is True:
            believes_error = False
            confidence = 0.99
        elif validity is False:
            # The value is not any value the model knows for this attribute.
            # For attributes with a known domain that is itself strong evidence
            # of an error; a nearby clean value (a typo's source) makes the
            # model more certain still.
            closest = self.knowledge.closest_domain_value(attribute, value)
            believes_error = True
            confidence = 0.97 if (closest is not None and closest[1] >= 0.35) else 0.88
        else:
            believes_error = _looks_corrupted(value)
            confidence = 0.65

        # The model contradicts its own belief only rarely; better prompts and
        # stronger models contradict it even less often.
        flip_probability = (
            (1.0 - confidence)
            * (1.0 - 0.9 * self.profile.capability)
            * max(0.2, 1.0 - 3.0 * quality)
        )
        flip_probability = float(min(0.5, max(0.002, flip_probability)))
        decision = believes_error
        if self.rng.random() < flip_probability:
            decision = not believes_error
        return "Yes" if decision else "No"

    # --------------------------------------------------------- entity resolution
    def _answer_entity_resolution(self, parsed: ParsedAnswer) -> str:
        a = parsed.entity_a or ""
        b = parsed.entity_b or ""
        quality = self._prompt_quality(parsed)

        # The LLM's edge over surface matchers: it recognises abbreviations and
        # synonyms it has seen in pre-training, so equivalent phrasings collapse
        # before the comparison.  Weaker models recognise them less reliably.
        if self.rng.random() < self.profile.knowledge_recall:
            a = self.knowledge.canonicalize(a)
            b = self.knowledge.canonicalize(b)
        similarity = self._entity_pair_similarity(a, b)

        domain = self._guess_domain(a + " " + b)
        familiarity = self.profile.familiarity(domain)
        noise_scale = self.profile.calibration_noise * (2.0 - familiarity)
        noise_scale *= 1.0 - 2.0 * quality  # better prompts -> steadier judgement
        noise = float(self.rng.normal(0.0, max(noise_scale, 0.01)))

        competence = self.profile.competence("entity_resolution")
        score = similarity + noise + self.profile.yes_bias + competence
        threshold = self.profile.match_threshold
        return "Yes" if score >= threshold else "No"

    def _entity_pair_similarity(self, a: str, b: str) -> float:
        """Similarity of two entity descriptions, attending to the head field.

        Unlike a bag-of-features matcher, a reader weighs the *identifying*
        field (the first serialized attribute: product title, beer name, song)
        more heavily than the shared context fields (brewery, artist, price),
        which is what lets it reject "same brewery, different beer" pairs that
        fool global string similarity.
        """
        pairs_a, pairs_b = parse_pairs(a), parse_pairs(b)
        if not pairs_a or not pairs_b:
            return entity_match_score(a, b)
        head = entity_match_score(pairs_a[0][1], pairs_b[0][1])
        rest_a = " ".join(value for _, value in pairs_a[1:]) or pairs_a[0][1]
        rest_b = " ".join(value for _, value in pairs_b[1:]) or pairs_b[0][1]
        rest = entity_match_score(rest_a, rest_b)
        return 0.65 * head + 0.35 * rest

    def _guess_domain(self, text: str) -> str:
        """Infer the semantic domain of an ER pair from registered vocabulary.

        Datasets register representative entity mentions under the pseudo
        attribute ``"__domain__::<domain>"``; the domain whose vocabulary
        overlaps the pair the most wins.  An unknown domain maps to "" which
        means full familiarity.
        """
        tokens = set(tokenize(text))
        best_domain, best_overlap = "", 0
        for attribute in self.knowledge.domain_attributes():
            if not attribute.startswith("__domain__::"):
                continue
            domain = attribute.split("::", 1)[1]
            overlap = 0
            for value in self.knowledge.domain_values(attribute):
                overlap += len(tokens & set(tokenize(value)))
            if overlap > best_overlap:
                best_domain, best_overlap = domain, overlap
        return best_domain

    # ------------------------------------------------------------------ table QA
    def _answer_table_qa(self, parsed: ParsedAnswer) -> str:
        question = parsed.question or parsed.raw_prompt
        text = parsed.context_text
        keyword = next(
            (word for word in ("gold", "silver", "bronze", "total") if word in normalize(question)),
            None,
        )
        numbers = _entity_numbers(text, keyword)
        mentioned = [
            value
            for entity, value in numbers.items()
            if entity and entity in normalize(question)
        ]
        p_correct = _clip01(0.55 + 0.4 * self.profile.capability + self._prompt_quality(parsed))
        correct = self.rng.random() < p_correct

        lowered = normalize(question)
        if "total" in lowered or "sum" in lowered or "in total" in lowered:
            value = sum(mentioned) if mentioned else sum(numbers.values())
        elif "how many" in lowered and not mentioned:
            value = len(numbers)
        elif mentioned:
            value = mentioned[0]
        else:
            value = sum(numbers.values())
        if not correct:
            value = value + int(self.rng.integers(1, 3))
        return _format_number(value)

    # ------------------------------------------------------------- join discovery
    def _answer_join_discovery(self, parsed: ParsedAnswer) -> str:
        text = parsed.context_text
        column_values = re.findall(r'Column "?.+?"? contains (.+?)\.', text)
        evidence = 0.0
        if len(column_values) >= 2:
            left = [v.strip(' "') for v in column_values[0].split(" and ")]
            right = [v.strip(' "') for v in column_values[1].split(" and ")]
            hits = 0
            for lv in left:
                for rv in right:
                    if normalize(lv) == normalize(rv) or self.knowledge.are_equivalent(lv, rv):
                        hits += 1
                        break
            evidence = hits / max(len(left), 1)
        noise = float(self.rng.normal(0.0, self.profile.calibration_noise))
        score = evidence + noise + self._prompt_quality(parsed)
        # The evidence is a containment estimate from a handful of sampled
        # values, so even a genuinely joinable pair rarely exceeds ~0.5; the
        # decision point sits well below that.
        return "Yes" if score >= 0.30 else "No"

    # ------------------------------------------------------- information extraction
    def _answer_extraction(self, parsed: ParsedAnswer) -> str:
        attribute = normalize(parsed.attribute or "")
        text = parsed.context_text
        quality = self._prompt_quality(parsed)
        candidate = _extract_attribute_from_text(text, attribute, self.knowledge)
        # Free-form extraction from messy documents is the hardest reading task
        # the model faces, so the success probability is dominated by model
        # capability rather than by world knowledge.
        p_correct = _clip01(0.12 + 0.46 * self.profile.capability + quality)
        if candidate is not None and self.rng.random() < p_correct:
            return candidate
        # Wrong answers are substitutions (another plausible value of the same
        # attribute) or hallucinated near-misses, not empty strings.
        domain = sorted(self.knowledge.domain_values(attribute))
        if domain:
            wrong = [v for v in domain if normalize(v) != normalize(candidate or "")]
            if wrong:
                return str(wrong[int(self.rng.integers(len(wrong)))])
        if candidate is not None:
            return _perturb_string(candidate, self.rng)
        return "unknown"

    # ------------------------------------------------------------------- fallback
    def _answer_generic(self, parsed: ParsedAnswer) -> str:
        items = self.extract_context_items(parsed)
        if items:
            return items[0].value
        return "unknown"


# ---------------------------------------------------------------------------
# Small helpers
# ---------------------------------------------------------------------------

def entity_match_score(a: str, b: str) -> float:
    """Similarity score used for match-style judgements (ER, dedup).

    Shared by the answer engine and the fine-tuner so that simulated
    fine-tuning calibrates exactly the decision statistic the model uses at
    inference time.
    """
    return string_similarity(a, b) + 0.5 * _numeric_agreement(a, b)


def _most_common(values: list[str]) -> str:
    counts: dict[str, int] = {}
    originals: dict[str, str] = {}
    for value in values:
        key = normalize(value)
        counts[key] = counts.get(key, 0) + 1
        originals.setdefault(key, value)
    best = max(counts.items(), key=lambda kv: kv[1])[0]
    return originals[best]


def _perturb_string(value: str, rng: np.random.Generator) -> str:
    """Return a slightly wrong variant of ``value`` (a realistic near miss)."""
    value = str(value)
    if not value:
        return "unknown"
    if value.isdigit():
        return str(int(value) + int(rng.integers(1, 9)))
    index = int(rng.integers(len(value)))
    replacement = chr(ord("a") + int(rng.integers(26)))
    return value[:index] + replacement + value[index + 1 :]


def _numeric_agreement(a: str, b: str) -> float:
    """Agreement of the numeric tokens of two entity descriptions, in [-0.2, 0.2]."""
    nums_a = re.findall(r"\d+\.?\d*", a)
    nums_b = re.findall(r"\d+\.?\d*", b)
    if not nums_a or not nums_b:
        return 0.0
    shared = len(set(nums_a) & set(nums_b))
    union = len(set(nums_a) | set(nums_b))
    return 0.4 * (shared / union) - 0.2


def _looks_corrupted(value: str) -> bool:
    """Heuristics for values that look like typos or encoding damage."""
    v = str(value)
    if not v.strip():
        return True
    letters = [c for c in v if c.isalpha()]
    if letters:
        x_ratio = sum(1 for c in letters if c.lower() in "xqz") / len(letters)
        if x_ratio >= 0.22:
            return True
    if re.search(r"\d", v) and re.search(r"[a-zA-Z]", v) and len(v) < 12:
        # digits inside a short alphabetic value, e.g. "sheff1eld"
        if re.search(r"[a-zA-Z]\d[a-zA-Z]", v):
            return True
    if re.search(r"(.)\1\1\1", v):
        return True
    return False


def _entity_numbers(text: str, keyword: str | None = None) -> dict[str, int]:
    """Map entity mention -> integer stated about it ("X won 2 gold medals").

    When a ``keyword`` (e.g. "gold") is given, only quantities followed by that
    keyword are collected, so a question about gold medals is not answered from
    the silver column.
    """
    out: dict[str, int] = {}
    if keyword:
        pattern = re.compile(
            r"([A-Z][\w()\s]+?)\s+won\s+(\d+)\s+" + re.escape(keyword), re.IGNORECASE
        )
        for match in pattern.finditer(text):
            out.setdefault(normalize(match.group(1)), int(match.group(2)))
        if out:
            return out
    for match in re.finditer(r"([A-Z][\w()\s]+?)\s+won\s+(\d+)", text):
        out.setdefault(normalize(match.group(1)), int(match.group(2)))
    if not out:
        for match in re.finditer(r"([A-Z][\w()\s]+?)\D(\d+)\b", text):
            out.setdefault(normalize(match.group(1)), int(match.group(2)))
    return out


def _format_number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


_HEIGHT_RE = re.compile(r"\b\d\s*ft\s*\d{1,2}\s*in\b", re.IGNORECASE)
_PROPER_NOUN_RE = re.compile(r"\b([A-Z][a-z]+(?:\s+[A-Z][a-z]+)+)")


def _extract_attribute_from_text(
    text: str, attribute: str, knowledge: WorldKnowledge
) -> str | None:
    """Generic semi-structured extraction used for the SWDE-style task."""
    # Attribute-specific patterns first.
    if "height" in attribute:
        match = _HEIGHT_RE.search(text)
        return match.group(0) if match else None
    domain = knowledge.domain_values(attribute)
    if domain:
        best, best_score = None, 0.0
        for value in domain:
            if value in normalize(text):
                score = len(value)
                if score > best_score:
                    best, best_score = value, score
        if best is not None:
            return best
    if "player" in attribute or "name" in attribute:
        match = _PROPER_NOUN_RE.search(text)
        return match.group(1) if match else None
    # Fall back to "The <attribute> ... is <value>" phrasing in the document.
    pattern = re.compile(
        rf"{re.escape(attribute)}\s*(?:is|of|:)\s*([\w .'-]+)", re.IGNORECASE
    )
    match = pattern.search(text)
    if match:
        return match.group(1).strip().rstrip(".")
    return None
