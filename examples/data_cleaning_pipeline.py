"""Data-cleaning workflow: error detection + imputation over a benchmark lake.

This mirrors the data-lake motivation of the paper's introduction: a dirty
table arrives (here, the synthetic Hospital benchmark with 5% injected typos
and the Restaurant benchmark with masked cities), and the same unified
pipeline — driven through the :class:`repro.api.Client` facade — first flags
suspicious cells and then fills in missing values, with no per-task model
training or rule engineering.

Run with::

    python examples/data_cleaning_pipeline.py
"""

from __future__ import annotations

from repro.api import Client
from repro.core import UniDMConfig
from repro.datasets import load_dataset
from repro.eval import evaluate, format_table
from repro.experiments.common import make_unidm


def detect_errors(n_cells: int = 60) -> list[dict]:
    dataset = load_dataset("hospital", seed=0, n_records=60)
    method = make_unidm(dataset, seed=2)
    result = evaluate(method, dataset, max_tasks=n_cells)
    flagged = [
        {"cell": task.query(), "flagged": bool(pred), "truly_dirty": bool(truth)}
        for task, pred, truth in zip(
            dataset.subset(n_cells, seed=0).tasks, result.predictions, result.ground_truth
        )
        if pred or truth
    ]
    print(format_table(flagged[:12], title=f"Error detection (F1 = {result.score_percent:.1f}%)"))
    return flagged


def impute_missing(n_cells: int = 20) -> None:
    dataset = load_dataset("restaurant", seed=0, n_records=120, n_tasks=n_cells)
    client = Client.local(pipeline=make_unidm(dataset, seed=2).pipeline)
    rows = []
    for task, truth in list(zip(dataset.tasks, dataset.ground_truth))[:8]:
        result = client.run_task(task)
        rows.append(
            {
                "restaurant": task.entity_key(),
                "imputed_city": result.value,
                "true_city": truth,
                "correct": result.value == truth,
            }
        )
    print(format_table(rows, title="Missing-city imputation (sample of 8 repairs)"))
    accuracy = evaluate(make_unidm(dataset, seed=2), dataset).score_percent
    print(f"Imputation accuracy over {len(dataset)} masked cells: {accuracy:.1f}%")


def main() -> None:
    print("Step 1 — flag dirty cells with the unified pipeline\n")
    detect_errors()
    print("\nStep 2 — repair missing values with the same pipeline\n")
    impute_missing()
    print("\nBoth steps used the identical UniDM configuration:", UniDMConfig.full())


if __name__ == "__main__":
    main()
