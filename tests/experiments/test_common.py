"""Unit tests for the experiment plumbing helpers."""

from repro.core import UniDMConfig
from repro.experiments.common import make_fm, make_llm, make_unidm, result_row
from repro.eval import evaluate


def test_make_llm_shares_dataset_knowledge(restaurant_dataset):
    llm = make_llm(restaurant_dataset, seed=3)
    assert llm.knowledge is restaurant_dataset.knowledge
    assert llm.name == "gpt-3-175b"
    assert make_llm(restaurant_dataset, model="qwen-7b").name == "qwen-7b"


def test_make_unidm_and_fm_have_usable_interfaces(restaurant_dataset):
    unidm = make_unidm(restaurant_dataset, UniDMConfig.random_context(), seed=1, name="variant")
    assert unidm.name == "variant"
    value = unidm.solve(restaurant_dataset.tasks[0])
    assert isinstance(value, str)
    fm = make_fm(restaurant_dataset, "random", seed=1)
    assert fm.name == "FM (random)"
    assert isinstance(fm.solve(restaurant_dataset.tasks[0]), str)


def test_result_row_flattens_evaluation(restaurant_dataset):
    result = evaluate(make_unidm(restaurant_dataset, seed=1), restaurant_dataset, max_tasks=3)
    row = result_row(result, method="renamed", paper=93.0)
    assert row["method"] == "renamed"
    assert row["paper"] == 93.0
    assert 0 <= row["score"] <= 100
    assert row["n_tasks"] == 3
