"""Benchmark: regenerate Table 6 (UniDM across base LLMs)."""

from conftest import run_once

from repro.experiments import table6_llm_variants


def test_table6_llm_variants(benchmark, bench_max_tasks):
    rows = run_once(benchmark, table6_llm_variants.run, seed=0, max_tasks=bench_max_tasks)
    by_model = {row["model"]: row for row in rows}
    assert set(by_model) == set(table6_llm_variants.MODELS)
    # Paper shape: stronger base models give equal-or-better accuracy, and even
    # the 7B models stay usable (>70%) under the full pipeline.
    assert by_model["gpt-4-turbo"]["restaurant"] >= by_model["llama2-7b"]["restaurant"] - 5
    assert by_model["gpt-3-175b"]["buy"] >= by_model["qwen-7b"]["buy"] - 5
    for row in rows:
        assert row["restaurant"] >= 60.0
        assert row["buy"] >= 60.0
