"""Shared core types: task taxonomy, results and usage records.

The unified framework of Section 3 describes every task as a function
``Y = F_T(R, S, D)``; these types carry the pieces of that formalism through
the pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from ..llm.base import UsageDelta


class TaskType(str, enum.Enum):
    """The data manipulation tasks subsumed by the unified framework."""

    DATA_IMPUTATION = "data imputation"
    DATA_TRANSFORMATION = "data transformation"
    ERROR_DETECTION = "error detection"
    ENTITY_RESOLUTION = "entity resolution"
    TABLE_QA = "table question answering"
    JOIN_DISCOVERY = "join discovery"
    INFORMATION_EXTRACTION = "information extraction"

    @property
    def is_binary(self) -> bool:
        """Whether the task's answer is a yes/no judgement."""
        return self in (
            TaskType.ERROR_DETECTION,
            TaskType.ENTITY_RESOLUTION,
            TaskType.JOIN_DISCOVERY,
        )


#: Human-readable task descriptions used inside prompts (the ``T`` of the
#: formalism).  They follow the phrasing of the paper's Appendix A claims.
TASK_DESCRIPTIONS: dict[TaskType, str] = {
    TaskType.DATA_IMPUTATION: (
        "data imputation which produces the missing data with some value to "
        "retain most of the data."
    ),
    TaskType.DATA_TRANSFORMATION: (
        "data transformation which is the process of converting data from one "
        "format to another required format within a record."
    ),
    TaskType.ERROR_DETECTION: (
        "error detection which detect attribute error within a record in a "
        "data cleaning system."
    ),
    TaskType.ENTITY_RESOLUTION: (
        "entity resolution which is the process of predicting whether two "
        "records are referencing the same real-world thing."
    ),
    TaskType.TABLE_QA: (
        "table question answering which answers a question by retrieving the "
        "relevant information from a data table."
    ),
    TaskType.JOIN_DISCOVERY: (
        "join discovery which finds semantically joinable columns across "
        "different tables."
    ),
    TaskType.INFORMATION_EXTRACTION: (
        "information extraction which constructs a structured view of a set "
        "of semi-structured documents."
    ),
}


@dataclass
class PromptTrace:
    """The prompts issued (and completions received) while solving one query."""

    meta_retrieval: str | None = None
    meta_retrieval_output: str | None = None
    instance_retrieval: str | None = None
    instance_retrieval_output: str | None = None
    data_parsing: str | None = None
    data_parsing_output: str | None = None
    cloze_construction: str | None = None
    target_prompt: str | None = None
    answer: str | None = None

    def as_dict(self) -> dict[str, str | None]:
        return {
            "p_rm": self.meta_retrieval,
            "p_rm_output": self.meta_retrieval_output,
            "p_ri": self.instance_retrieval,
            "p_ri_output": self.instance_retrieval_output,
            "p_dp": self.data_parsing,
            "p_dp_output": self.data_parsing_output,
            "p_cq": self.cloze_construction,
            "p_as": self.target_prompt,
            "answer": self.answer,
        }


@dataclass
class ManipulationResult:
    """Outcome of running the pipeline on one task instance."""

    task_type: TaskType
    raw_answer: str
    value: Any
    query: str
    context_text: str = ""
    selected_attributes: list[str] = field(default_factory=list)
    trace: PromptTrace = field(default_factory=PromptTrace)
    usage: UsageDelta | None = None

    @property
    def total_tokens(self) -> int:
        return self.usage.total_tokens if self.usage else 0
