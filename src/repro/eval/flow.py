"""Pipeline-level evaluation: scoring whole-table flow outputs.

The per-task harness (:mod:`repro.eval.harness`) scores one prediction per
task instance; flow pipelines instead produce a *table*.  The helpers here
compare tables cell-by-cell (with the same value-matching rules the per-task
metrics use), summarise what a pipeline changed, and turn a
:class:`~repro.flow.executor.FlowReport` into rows for
:func:`~repro.eval.reporting.format_table`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..datalake.table import Table, is_missing
from .metrics import values_match

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..flow.executor import FlowReport


def _check_aligned(predicted: Table, expected: Table, columns: Sequence[str]) -> None:
    if len(predicted) != len(expected):
        raise ValueError(
            f"tables are not aligned: {len(predicted)} vs {len(expected)} records"
        )
    for column in columns:
        if column not in predicted.schema or column not in expected.schema:
            raise KeyError(f"column {column!r} missing from one of the tables")


def column_accuracy(predicted: Table, expected: Table, column: str) -> float:
    """Fraction of row-aligned cells of ``column`` that match."""
    _check_aligned(predicted, expected, [column])
    if len(predicted) == 0:
        return 0.0
    hits = sum(
        1
        for p, e in zip(predicted.column(column), expected.column(column))
        if values_match(p, e)
    )
    return hits / len(predicted)


def table_cell_accuracy(
    predicted: Table, expected: Table, columns: Sequence[str] | None = None
) -> float:
    """Fraction of matching cells over the given (default: shared) columns."""
    if columns is None:
        columns = [c for c in predicted.schema.names if c in expected.schema]
    columns = list(columns)
    _check_aligned(predicted, expected, columns)
    total = len(predicted) * len(columns)
    if total == 0:
        return 0.0
    hits = sum(
        1
        for column in columns
        for p, e in zip(predicted.column(column), expected.column(column))
        if values_match(p, e)
    )
    return hits / total


def changed_cells(before: Table, after: Table) -> dict[str, int]:
    """Per-column count of cells a pipeline changed (shared columns only).

    Columns added by the pipeline are reported with the count of their
    non-missing cells, so repairs and enrichments both show up.
    """
    if len(before) != len(after):
        raise ValueError(
            f"tables are not aligned: {len(before)} vs {len(after)} records"
        )
    changes: dict[str, int] = {}
    for column in after.schema.names:
        if column in before.schema:
            count = sum(
                1
                for b, a in zip(before.column(column), after.column(column))
                if (b != a) and not (is_missing(b) and is_missing(a))
            )
        else:
            count = sum(1 for v in after.column(column) if not is_missing(v))
        if count:
            changes[column] = count
    return changes


def flow_stage_rows(report: "FlowReport") -> list[dict[str, Any]]:
    """One summary row per stage, ready for ``format_table``."""
    return [
        {
            "stage": f"{stage.index}:{stage.op}",
            "items": stage.items,
            "submitted": stage.submitted,
            "reused": stage.reused,
            "partitions": stage.partitions,
        }
        for stage in report.stages
    ]


__all__ = [
    "changed_cells",
    "column_accuracy",
    "flow_stage_rows",
    "table_cell_accuracy",
]
