"""World-knowledge substrate backing the simulated LLM.

A real LLM answers data-manipulation questions from two sources: the context
supplied in the prompt and the world knowledge absorbed during pre-training.
Offline we cannot ship pre-trained weights, so the reproduction models the
second source explicitly: a :class:`WorldKnowledge` store of facts, each tagged
with a *prevalence* in ``[0, 1]`` describing how often the fact would occur in
a pre-training corpus.  The simulated LLM recalls a fact with probability that
scales with ``model.knowledge_recall * fact.prevalence`` (Section 2 of
DESIGN.md), which is what lets domain-specific benchmarks (e.g. Amazon-Google
product strings) remain hard while common-knowledge benchmarks (city/country/
timezone) remain easy — matching the paper's qualitative findings.

The store also keeps:

* per-relation **sentence templates** used by the context-parsing step to turn
  ``attribute:value`` pairs into fluent text (and to parse that text back);
* an **attribute-link graph** giving the semantic relatedness of attribute
  pairs, which drives meta-wise retrieval;
* per-attribute **domain values** used by error detection to judge validity;
* **equivalence facts** (abbreviations, synonyms) used by join discovery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable

from ..datalake.text import normalize, string_similarity


@dataclass(frozen=True)
class Fact:
    """A (subject, relation, value) triple with a corpus-prevalence weight."""

    subject: str
    relation: str
    value: str
    prevalence: float = 0.8
    domain: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.prevalence <= 1.0:
            raise ValueError("prevalence must be in [0, 1]")


#: Fallback sentence template when a relation has no registered template.
DEFAULT_RELATION_TEMPLATE = "The {relation} of {subject} is {value}"


class WorldKnowledge:
    """Fact store + linguistic metadata for the simulated LLM."""

    def __init__(self) -> None:
        # (normalized subject, relation) -> Fact
        self._facts: dict[tuple[str, str], Fact] = {}
        # relation -> sentence template with {subject}/{value} (and optionally
        # {relation}) placeholders.  The transformation phrasing is generic
        # linguistic knowledge every model has, so it ships as a built-in.
        self._relation_templates: dict[str, str] = {
            "data after transformation": "{subject} can be transformed to {value}",
        }
        # frozenset({attr_a, attr_b}) -> strength in [0, 1]
        self._attribute_links: dict[frozenset[str], float] = {}
        # attribute -> set of normalized valid values
        self._domain_values: dict[str, set[str]] = {}
        # normalized value -> set of normalized equivalent values
        self._equivalences: dict[str, set[str]] = {}

    # -- facts -----------------------------------------------------------------
    def add_fact(
        self,
        subject: str,
        relation: str,
        value: str,
        prevalence: float = 0.8,
        domain: str = "",
    ) -> Fact:
        fact = Fact(
            subject=str(subject),
            relation=str(relation),
            value=str(value),
            prevalence=prevalence,
            domain=domain,
        )
        self._facts[(normalize(subject), str(relation))] = fact
        return fact

    def add_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self._facts[(normalize(fact.subject), fact.relation)] = fact

    def lookup(self, subject: str, relation: str, fuzzy: bool = True) -> Fact | None:
        """Find the fact for ``(subject, relation)``; optionally fuzzy on subject.

        Fuzzy matching models the LLM recognising an entity despite minor
        formatting differences (casing, punctuation, extra tokens).
        """
        key = (normalize(subject), str(relation))
        if key in self._facts:
            return self._facts[key]
        if not fuzzy:
            return None
        best: Fact | None = None
        best_score = 0.0
        subject_norm = normalize(subject)
        for (fact_subject, fact_relation), fact in self._facts.items():
            if fact_relation != relation:
                continue
            score = string_similarity(subject_norm, fact_subject)
            if score > best_score:
                best, best_score = fact, score
        if best is not None and best_score >= 0.82:
            return best
        return None

    def facts_about(self, subject: str) -> list[Fact]:
        subject_norm = normalize(subject)
        return [
            fact
            for (fact_subject, _), fact in self._facts.items()
            if fact_subject == subject_norm
        ]

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, key: tuple[str, str]) -> bool:
        subject, relation = key
        return (normalize(subject), relation) in self._facts

    # -- relation templates ------------------------------------------------------
    def set_relation_template(self, relation: str, template: str) -> None:
        """Register the sentence pattern used to verbalise a relation.

        The template must contain ``{subject}`` and ``{value}`` placeholders,
        e.g. ``"{subject} is a city in the country {value}"``.
        """
        if "{subject}" not in template or "{value}" not in template:
            raise ValueError("template must contain {subject} and {value}")
        self._relation_templates[relation] = template

    def relation_template(self, relation: str) -> str:
        return self._relation_templates.get(relation, DEFAULT_RELATION_TEMPLATE)

    def render_fact(self, subject: str, relation: str, value: str) -> str:
        """Verbalise one (subject, relation, value) triple as a sentence."""
        template = self.relation_template(relation)
        return template.format(subject=subject, relation=relation, value=value)

    def relation_regex(self, relation: str) -> re.Pattern[str]:
        """A regex that re-extracts (subject, value) from a rendered sentence."""
        template = self.relation_template(relation)
        pattern = re.escape(template)
        pattern = pattern.replace(re.escape("{subject}"), r"(?P<subject>.+?)")
        pattern = pattern.replace(re.escape("{value}"), r"(?P<value>.+?)")
        pattern = pattern.replace(re.escape("{relation}"), re.escape(relation))
        return re.compile(pattern + r"\.?$", re.IGNORECASE)

    @property
    def known_relations(self) -> list[str]:
        relations = {relation for _, relation in self._facts}
        relations.update(self._relation_templates)
        return sorted(relations)

    # -- attribute links -----------------------------------------------------------
    def add_attribute_link(self, attr_a: str, attr_b: str, strength: float = 0.8) -> None:
        """Declare that two attributes are semantically related (order-free)."""
        if not 0.0 <= strength <= 1.0:
            raise ValueError("strength must be in [0, 1]")
        self._attribute_links[frozenset({attr_a, attr_b})] = strength

    def attribute_link(self, attr_a: str, attr_b: str) -> float:
        return self._attribute_links.get(frozenset({attr_a, attr_b}), 0.0)

    def related_attributes(self, attribute: str) -> list[tuple[str, float]]:
        """All attributes linked to ``attribute``, sorted by strength."""
        out = []
        for pair, strength in self._attribute_links.items():
            if attribute in pair:
                others = [a for a in pair if a != attribute]
                if others:
                    out.append((others[0], strength))
        return sorted(out, key=lambda kv: -kv[1])

    # -- domain values -----------------------------------------------------------------
    def add_domain_value(self, attribute: str, value: str) -> None:
        self._domain_values.setdefault(attribute, set()).add(normalize(value))

    def add_domain_values(self, attribute: str, values: Iterable[str]) -> None:
        for value in values:
            self.add_domain_value(attribute, value)

    def domain_values(self, attribute: str) -> set[str]:
        return set(self._domain_values.get(attribute, set()))

    def domain_attributes(self) -> list[str]:
        """All attributes for which a value domain has been registered."""
        return sorted(self._domain_values)

    def is_valid_value(self, attribute: str, value: str) -> bool | None:
        """True/False if the domain of ``attribute`` is known, else None."""
        domain = self._domain_values.get(attribute)
        if not domain:
            return None
        return normalize(value) in domain

    def closest_domain_value(self, attribute: str, value: str) -> tuple[str, float] | None:
        """Most similar known domain value and its similarity, if any."""
        domain = self._domain_values.get(attribute)
        if not domain:
            return None
        value_norm = normalize(value)
        best_value, best_score = "", -1.0
        for candidate in domain:
            score = string_similarity(value_norm, candidate)
            if score > best_score:
                best_value, best_score = candidate, score
        return best_value, best_score

    # -- equivalences (abbreviations, synonyms) ----------------------------------------
    def add_equivalence(self, value_a: str, value_b: str) -> None:
        a, b = normalize(value_a), normalize(value_b)
        self._equivalences.setdefault(a, set()).add(b)
        self._equivalences.setdefault(b, set()).add(a)

    def equivalents(self, value: str) -> set[str]:
        return set(self._equivalences.get(normalize(value), set()))

    def are_equivalent(self, value_a: str, value_b: str) -> bool:
        a, b = normalize(value_a), normalize(value_b)
        return a == b or b in self._equivalences.get(a, set())

    def canonicalize(self, text: str) -> str:
        """Rewrite known equivalent phrases to a canonical representative.

        Models the LLM recognising that "india pale ale" and "ipa" (or
        "Germany" and "GER") denote the same thing: every phrase belonging to
        an equivalence class is replaced by the lexicographically smallest
        member, so downstream similarity comparisons see them as identical.
        Longer phrases are substituted first to avoid partial overlaps.
        """
        out = normalize(text)
        for phrase in sorted(self._equivalences, key=len, reverse=True):
            if phrase not in out:
                continue
            canonical = min(self._equivalences[phrase] | {phrase})
            if canonical != phrase:
                out = out.replace(phrase, canonical)
        return out

    # -- composition -------------------------------------------------------------------
    def merge(self, other: "WorldKnowledge") -> "WorldKnowledge":
        """In-place merge of another knowledge store; returns self."""
        self._facts.update(other._facts)
        self._relation_templates.update(other._relation_templates)
        self._attribute_links.update(other._attribute_links)
        for attribute, values in other._domain_values.items():
            self._domain_values.setdefault(attribute, set()).update(values)
        for value, equivalents in other._equivalences.items():
            self._equivalences.setdefault(value, set()).update(equivalents)
        return self
