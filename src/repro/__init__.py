"""UniDM reproduction: a unified framework for data manipulation with LLMs.

The package is organised as:

* :mod:`repro.api`        — the unified client facade: typed task specs, the
  versioned wire protocol, ``Client.local`` / ``Client.remote``;
* :mod:`repro.datalake`   — tables, records, schemas and lakes;
* :mod:`repro.llm`        — language-model interface, simulated LLMs, knowledge;
* :mod:`repro.prompting`  — the canonical prompt templates;
* :mod:`repro.core`       — the UniDM pipeline and task adapters;
* :mod:`repro.flow`       — declarative table-level dataflow pipelines;
* :mod:`repro.obs`        — metrics, request tracing and admission control;
* :mod:`repro.transforms` — string transformation operators and program search;
* :mod:`repro.datasets`   — synthetic counterparts of the paper's benchmarks;
* :mod:`repro.baselines`  — the comparison systems (HoloClean, FM, Ditto, ...);
* :mod:`repro.eval`       — metrics and evaluation harnesses;
* :mod:`repro.experiments`— one module per paper table/figure.

Quickstart::

    from repro.api import Client, TransformationSpec

    with Client.local(seed=0) as client:
        result = client.submit(
            TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])
        )
        print(result.answer)

(or drive the pipeline directly through :mod:`repro.core` — see the README).
"""

from .api import Client, TaskResult, TaskSpec
from .core import ManipulationResult, TaskType, UniDM, UniDMConfig, solve
from .llm import SimulatedLLM, WorldKnowledge

__version__ = "1.1.0"

__all__ = [
    "Client",
    "ManipulationResult",
    "SimulatedLLM",
    "TaskResult",
    "TaskSpec",
    "TaskType",
    "UniDM",
    "UniDMConfig",
    "WorldKnowledge",
    "__version__",
    "solve",
]
