"""A caching wrapper around any language model.

Production pipelines over data lakes re-issue many identical prompts (e.g. the
same metadata-retrieval prompt for every record of a column); caching them cuts
cost and makes reruns deterministic.  The wrapper preserves the
:class:`~repro.llm.base.LanguageModel` interface, so it can be dropped in front
of the simulated model or a real API client alike.
"""

from __future__ import annotations

from collections import OrderedDict

from .base import Completion, LanguageModel


class CachedLLM(LanguageModel):
    """LRU-cached view of an inner language model.

    Cache hits are counted and do **not** add to the inner model's usage, but
    they do add to this wrapper's usage tracker so experiments can report both
    "tokens billed" (inner) and "tokens requested" (wrapper).
    """

    def __init__(self, inner: LanguageModel, max_entries: int = 10_000):
        super().__init__(tokenizer=inner.tokenizer)
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.inner = inner
        self.max_entries = max_entries
        self.name = f"cached({inner.name})"
        self.hits = 0
        self.misses = 0
        self._cache: OrderedDict[str, str] = OrderedDict()

    def _complete_text(self, prompt: str) -> str:
        if prompt in self._cache:
            self.hits += 1
            self._cache.move_to_end(prompt)
            return self._cache[prompt]
        self.misses += 1
        completion: Completion = self.inner.complete(prompt)
        self._cache[prompt] = completion.text
        if len(self._cache) > self.max_entries:
            self._cache.popitem(last=False)
        return completion.text

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
