"""TenancyController: admission decisions, error shapes, metrics, snapshots."""

import pytest

from repro.obs import MetricsRegistry
from repro.tenancy import TenancyController, TenantConfig, TenantRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_controller(*configs, clock=None, **kwargs):
    return TenancyController(
        TenantRegistry(configs),
        clock=clock or FakeClock(),
        metrics=MetricsRegistry(),
        **kwargs,
    )


def test_admit_charges_bucket_and_inflight():
    clock = FakeClock()
    controller = make_controller(
        TenantConfig("t", rate=10.0, burst=2.0), clock=clock
    )
    assert controller.admit("t") is None
    assert controller.admit("t") is None
    error = controller.admit("t")
    assert error is not None and error.code == "rate_limited"
    assert error.details["reason"] == "rate"
    assert error.details["tenant"] == "t"
    assert error.retry_after == pytest.approx(0.1)
    clock.advance(0.1)
    assert controller.admit("t") is None


def test_inflight_cap_rejects_with_oversized_batch_exception():
    controller = make_controller(TenantConfig("t", max_inflight=2))
    # An idle tenant's batch larger than the whole cap is admitted (the
    # AdmissionController oversized-batch rule) so it cannot starve.
    assert controller.admit("t", 5) is None
    error = controller.admit("t", 1)
    assert error is not None and error.details["reason"] == "inflight"
    assert error.retry_after == controller.retry_after
    controller.release("t", 5)
    assert controller.admit("t", 2) is None
    assert controller.admit("t", 1) is not None
    controller.release("t", 2)


def test_unknown_tenants_share_the_default_state():
    controller = make_controller(
        TenantConfig("default", rate=10.0, burst=2.0)
    )
    assert controller.resolve("fresh-name-1") == "default"
    assert controller.admit("fresh-name-1") is None
    assert controller.admit("fresh-name-2") is None
    # Both charged one shared bucket: the third invented name is shed.
    error = controller.admit("fresh-name-3")
    assert error is not None and error.details["tenant"] == "default"


def test_weight_comes_from_the_resolved_config():
    controller = make_controller(TenantConfig("heavy", weight=4.0))
    assert controller.weight("heavy") == 4.0
    assert controller.weight("unknown") == 1.0
    assert controller.weight(None) == 1.0


def test_metrics_and_snapshot_reflect_admissions():
    controller = make_controller(TenantConfig("t", rate=10.0, burst=1.0))
    assert controller.admit("t") is None
    assert controller.admit("t") is not None
    controller.observe_latency("t", 0.02)
    controller.release("t")

    snapshot = controller.snapshot()
    row = snapshot["tenants"]["t"]
    assert row["admitted"] == 1
    assert row["rate_limited"] == 1
    assert row["inflight"] == 0
    assert "tokens" in row
    # Configured-but-idle tenants still appear (with zeroed state).
    assert snapshot["tenants"]["default"]["admitted"] == 0
    assert "tokens" not in snapshot["tenants"]["default"]

    narrowed = controller.snapshot("t")
    assert list(narrowed["tenants"]) == ["t"]
    # Unknown names narrow to the default row.
    assert list(controller.snapshot("invented")["tenants"]) == ["default"]


def test_rejection_details_carry_the_tenant_state():
    controller = make_controller(TenantConfig("t", rate=5.0, burst=2.0, max_inflight=9))
    controller.admit("t", 2)
    error = controller.admit("t", 1)
    assert error.details == {
        "tenant": "t",
        "reason": "rate",
        "requests": 1,
        "rate": 5.0,
        "burst": 2.0,
        "max_inflight": 9,
        "inflight": 2,
    }


def test_retry_after_validation():
    with pytest.raises(ValueError):
        TenancyController(retry_after=-0.1)
