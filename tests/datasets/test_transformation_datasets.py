"""Unit tests for the transformation benchmarks."""

from repro.core import TaskType, TransformationTask
from repro.datasets import BingQueryLogsDataset, StackOverflowDataset
from repro.transforms import ProgramSearcher


def test_stackoverflow_structure(stackoverflow_dataset):
    assert stackoverflow_dataset.task_type is TaskType.DATA_TRANSFORMATION
    assert all(isinstance(t, TransformationTask) for t in stackoverflow_dataset.tasks)
    cases = stackoverflow_dataset.extra["cases"]
    kinds = {c.kind for c in cases}
    assert kinds == {"syntactic", "semantic", "hard"}


def test_case_examples_are_consistent_with_ground_truth(stackoverflow_dataset):
    searcher = ProgramSearcher()
    cases = stackoverflow_dataset.extra["cases"]
    syntactic = [c for c in cases if c.kind == "syntactic"]
    assert syntactic
    for case in syntactic[:10]:
        program = searcher.search(case.examples).program
        assert program is not None, case.scenario
        assert program(case.source) == case.target


def test_hard_cases_not_solvable_by_search(stackoverflow_dataset):
    searcher = ProgramSearcher()
    hard = [c for c in stackoverflow_dataset.extra["cases"] if c.kind == "hard"]
    solved = 0
    for case in hard:
        program = searcher.search(case.examples).program
        if program is not None and program(case.source) == case.target:
            solved += 1
    assert solved <= len(hard) * 0.3


def test_semantic_cases_registered_in_knowledge(stackoverflow_dataset):
    knowledge = stackoverflow_dataset.knowledge
    semantic = [c for c in stackoverflow_dataset.extra["cases"] if c.kind == "semantic"]
    for case in semantic[:10]:
        fact = knowledge.lookup(case.source, "transformation")
        assert fact is not None
        assert fact.value == case.target


def test_bing_mix_is_harder_than_stackoverflow():
    so = StackOverflowDataset(seed=0, n_cases=50).build()
    bing = BingQueryLogsDataset(seed=0, n_cases=50).build()

    def syntactic_fraction(ds):
        cases = ds.extra["cases"]
        return sum(c.kind == "syntactic" for c in cases) / len(cases)

    assert syntactic_fraction(bing) < syntactic_fraction(so)


def test_values_stay_single_token(stackoverflow_dataset):
    # The benchmark keeps sources and targets free of commas so every method
    # reads the same demonstrations from its prompt format.
    for case in stackoverflow_dataset.extra["cases"]:
        assert "," not in case.source
        assert "," not in case.target
