"""Unit tests for Schema and Attribute."""

import pytest

from repro.datalake import Attribute, AttributeType, Schema


def test_attribute_defaults():
    attr = Attribute("name")
    assert attr.type is AttributeType.TEXT
    assert not attr.primary_key
    assert attr.description == ""


def test_attribute_requires_name():
    with pytest.raises(ValueError):
        Attribute("")


def test_attribute_type_is_numeric():
    assert AttributeType.NUMERIC.is_numeric()
    assert not AttributeType.TEXT.is_numeric()


def test_schema_accepts_strings_and_attributes():
    schema = Schema(["a", Attribute("b", AttributeType.NUMERIC)])
    assert schema.names == ["a", "b"]
    assert schema["b"].type is AttributeType.NUMERIC


def test_schema_rejects_duplicates():
    with pytest.raises(ValueError, match="duplicate"):
        Schema(["a", "a"])


def test_schema_contains_and_getitem(city_schema):
    assert "city" in city_schema
    assert "unknown" not in city_schema
    assert city_schema[0].name == "city"
    assert city_schema["country"].name == "country"


def test_schema_contains_attribute_object(city_schema):
    assert Attribute("city") in city_schema


def test_schema_primary_key(city_schema):
    pk = city_schema.primary_key()
    assert pk is not None and pk.name == "city"
    assert Schema(["a", "b"]).primary_key() is None


def test_schema_index_of(city_schema):
    assert city_schema.index_of("country") == 1
    with pytest.raises(KeyError):
        city_schema.index_of("nope")


def test_schema_project_preserves_order(city_schema):
    projected = city_schema.project(["timezone", "city"])
    assert projected.names == ["timezone", "city"]


def test_schema_project_unknown_raises(city_schema):
    with pytest.raises(KeyError):
        city_schema.project(["city", "nope"])


def test_schema_drop(city_schema):
    assert city_schema.drop(["population"]).names == ["city", "country", "timezone"]


def test_schema_rename_keeps_metadata(city_schema):
    renamed = city_schema.rename({"city": "town"})
    assert renamed.names[0] == "town"
    assert renamed["town"].primary_key


def test_schema_equality_and_hash(city_schema):
    other = Schema(list(city_schema.attributes))
    assert other == city_schema
    assert hash(other) == hash(city_schema)
    assert Schema(["x"]) != city_schema


def test_schema_iteration_yields_attributes(city_schema):
    names = [a.name for a in city_schema]
    assert names == city_schema.names
    assert len(city_schema) == 4
