"""Unit tests for sampling and splitting helpers."""

import numpy as np
import pytest

from repro.datalake import (
    make_rng,
    sample_items,
    sample_records,
    split_table,
    train_test_split_indices,
)


def test_make_rng_accepts_generator_and_seed():
    rng = np.random.default_rng(0)
    assert make_rng(rng) is rng
    assert isinstance(make_rng(3), np.random.Generator)


def test_sample_items_without_replacement_caps_k():
    items = list(range(5))
    sampled = sample_items(items, 10, rng=0)
    assert sorted(sampled) == items


def test_sample_items_reproducible():
    items = list(range(100))
    assert sample_items(items, 5, rng=42) == sample_items(items, 5, rng=42)


def test_sample_items_empty():
    assert sample_items([], 3, rng=0) == []


def test_sample_records_excludes_ids(city_table):
    exclude = {0, 1}
    sampled = sample_records(city_table, 10, rng=0, exclude_ids=exclude)
    assert all(record.record_id not in exclude for record in sampled)


def test_train_test_split_indices_disjoint():
    train, test = train_test_split_indices(20, 0.25, rng=0)
    assert len(set(train) & set(test)) == 0
    assert len(train) + len(test) == 20
    assert len(test) == 5


def test_train_test_split_invalid_fraction():
    with pytest.raises(ValueError):
        train_test_split_indices(10, 1.5, rng=0)


def test_split_table_partitions_records(city_table):
    train, test = split_table(city_table, 0.34, rng=1)
    assert len(train) + len(test) == len(city_table)
    assert train.schema == city_table.schema
    assert len(test) >= 1
