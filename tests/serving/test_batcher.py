"""Unit tests for the micro-batching scheduler."""

import asyncio
import time

import pytest

from repro.llm import EchoLLM
from repro.serving import MicroBatcher


class RecordingLLM(EchoLLM):
    """Echo model that records every batch it executes."""

    def __init__(self, reply: str = "ok", delay: float = 0.0):
        super().__init__(reply=reply)
        self.batches: list[tuple[str, list[str]]] = []
        self.delay = delay

    def complete_batch(self, prompts, kind="other"):
        if self.delay:
            time.sleep(self.delay)
        self.batches.append((kind, list(prompts)))
        return super().complete_batch(prompts, kind=kind)


def run(coro):
    return asyncio.run(coro)


def test_size_trigger_coalesces_full_batches():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=4, max_wait=10.0)
        return await asyncio.gather(
            *(batcher.submit(f"p{i}", "answer") for i in range(8))
        )

    completions = run(scenario())
    assert [c.prompt for c in completions] == [f"p{i}" for i in range(8)]
    assert all(c.text == "ok" for c in completions)
    assert [len(prompts) for _, prompts in llm.batches] == [4, 4]


def test_idle_trigger_flushes_partial_batch_without_waiting():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=100, max_wait=30.0)
        return await asyncio.gather(*(batcher.submit(f"p{i}") for i in range(3)))

    started = time.perf_counter()
    completions = run(scenario())
    elapsed = time.perf_counter() - started
    assert len(completions) == 3
    # One coalesced batch, dispatched by the idle heuristic, not the 30s timer.
    assert [len(prompts) for _, prompts in llm.batches] == [3]
    assert elapsed < 5.0
    assert llm.batches and llm.batches[0][1] == ["p0", "p1", "p2"]


def test_kinds_never_mix_within_a_batch():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=8, max_wait=10.0)
        await asyncio.gather(
            batcher.submit("a1", "p_rm"),
            batcher.submit("b1", "p_dp"),
            batcher.submit("a2", "p_rm"),
            batcher.submit("b2", "p_dp"),
        )
        return batcher.stats

    stats = run(scenario())
    for kind, prompts in llm.batches:
        assert all(p.startswith("a" if kind == "p_rm" else "b") for p in prompts)
    assert stats.by_kind == {"p_rm": 2, "p_dp": 2}
    assert stats.requests == 4


def test_stats_track_batch_shapes():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=2, max_wait=10.0)
        await asyncio.gather(*(batcher.submit(f"p{i}", "answer") for i in range(5)))
        return batcher.stats

    stats = run(scenario())
    assert stats.requests == 5
    assert stats.max_batch == 2
    assert stats.batches >= 3
    assert stats.mean_batch == pytest.approx(5 / stats.batches)


def test_usage_accounting_flows_to_the_model():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=4, max_wait=10.0)
        await asyncio.gather(*(batcher.submit(f"p{i}", "p_cq") for i in range(4)))

    run(scenario())
    assert llm.usage.calls == 4
    assert set(llm.usage.per_prompt_kind) == {"p_cq"}


def test_backend_errors_propagate_to_every_waiter():
    class FailingLLM(EchoLLM):
        def complete_batch(self, prompts, kind="other"):
            raise RuntimeError("backend down")

    async def scenario():
        batcher = MicroBatcher(FailingLLM(), max_batch_size=2, max_wait=10.0)
        results = await asyncio.gather(
            batcher.submit("a"), batcher.submit("b"), return_exceptions=True
        )
        return results

    results = run(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)


def test_submissions_after_a_flush_form_new_batches():
    llm = RecordingLLM()

    async def scenario():
        batcher = MicroBatcher(llm, max_batch_size=4, max_wait=10.0)
        await asyncio.gather(*(batcher.submit(f"x{i}") for i in range(4)))
        await asyncio.gather(*(batcher.submit(f"y{i}") for i in range(2)))

    run(scenario())
    assert [len(prompts) for _, prompts in llm.batches] == [4, 2]


def test_validates_configuration():
    with pytest.raises(ValueError):
        MicroBatcher(EchoLLM(), max_batch_size=0)
    with pytest.raises(ValueError):
        MicroBatcher(EchoLLM(), max_wait=-1.0)
