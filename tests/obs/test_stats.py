"""The stats surface: wire type, Client.stats(), cluster snapshot, CLI.

Acceptance criterion of the observability PR: after a mixed cluster
workload, a ``Client.stats()`` snapshot shows nonzero batcher / cache /
router counters with histogram percentiles.
"""

import asyncio
import json
import sys
import threading

import pytest

from repro.api import Client, StatsSpec, TransformationSpec
from repro.serving import build_service

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


def _mixed_specs():
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent.parent / "cluster"))
    from cluster_testing import make_mixed_specs

    return make_mixed_specs()


# ------------------------------------------------------------------- wire type
def test_stats_spec_round_trips_and_refuses_to_task():
    from repro.api import spec_from_request

    spec = spec_from_request({"type": "stats", "prefix": "batcher"})
    assert isinstance(spec, StatsSpec) and spec.prefix == "batcher"
    with pytest.raises(ValueError):
        spec.to_task()


def test_stats_request_over_the_raw_line_protocol():
    service = build_service(seed=0)
    service.handle_batch([{"v": 2, "id": 0, "task": SPEC.to_request() | {"type": "transformation"}}])
    response = service.handle_batch([{"v": 2, "id": 1, "task": {"type": "stats"}}])[0]
    assert response["ok"] is True
    answer = response["result"]["answer"]
    assert answer["service"]["requests_served"] >= 1
    assert "counters" in answer["metrics"]


# ---------------------------------------------------------------- local client
def test_local_client_stats_shows_engine_and_batcher_activity():
    with Client.local(seed=0) as client:
        client.submit_many([SPEC, SPEC])
        snapshot = client.stats()
    counters = snapshot["metrics"]["counters"]
    assert counters.get("batcher.requests", 0) > 0
    assert counters.get("batcher.batches", 0) > 0
    assert sum(v for k, v in counters.items() if k.startswith("engine.tasks.")) > 0
    histograms = snapshot["metrics"]["histograms"]
    assert "batcher.queue_wait" in histograms
    for key in ("p50", "p95", "p99"):
        assert histograms["batcher.queue_wait"][key] >= 0


def test_client_stats_reset_zeroes_the_next_snapshot():
    with Client.local(seed=0) as client:
        client.submit_many([SPEC, SPEC])
        before = client.stats(reset=True)
        assert before["metrics"]["counters"].get("batcher.requests", 0) > 0
        after = client.stats()
    counters = after["metrics"]["counters"]
    # The reset zeroed the registry *after* the first snapshot was taken, so
    # the second one reports only what happened since (nothing engine-side).
    assert counters.get("batcher.requests", 0) == 0
    assert sum(v for k, v in counters.items() if k.startswith("engine.tasks.")) == 0


def test_stats_prefix_filters_the_metrics_section():
    with Client.local(seed=0) as client:
        client.submit(SPEC)
        snapshot = client.stats(prefix="batcher")
    names = (
        list(snapshot["metrics"]["counters"])
        + list(snapshot["metrics"]["gauges"])
        + list(snapshot["metrics"]["histograms"])
    )
    assert names and all(name.startswith("batcher") for name in names)


# --------------------------------------------------------------------- remote
def test_remote_client_stats_matches_local_shape():
    service = build_service(seed=0, batch_size=4, workers=4)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(service.start_tcp("127.0.0.1", 0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    try:
        with Client.remote("127.0.0.1", holder["port"]) as client:
            client.submit(SPEC)
            snapshot = client.stats()
        assert snapshot["service"]["requests_served"] >= 1
        assert "counters" in snapshot["metrics"]
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)


# --------------------------------------------------------------------- cluster
def test_cluster_stats_shows_batcher_cache_router_counters():
    specs = _mixed_specs()
    with Client.cluster(workers=3, seed=0) as client:
        results = client.submit_many(specs)
        assert all(result.error is None for result in results)
        # Repeat once so the worker caches see hits.
        client.submit_many(specs)
        snapshot = client.stats()

    assert snapshot["cluster"]["routed"] >= len(specs)
    assert snapshot["cluster"]["alive_workers"] == 3
    counters = snapshot["metrics"]["counters"]
    assert counters.get("batcher.requests", 0) > 0, "batcher counters missing"
    assert counters.get("cache.hits", 0) > 0, "cache counters missing"
    routed = {
        name: value
        for name, value in counters.items()
        if name.startswith("router.routed.")
    }
    assert routed and sum(routed.values()) >= len(specs), "router counters missing"
    histograms = snapshot["metrics"]["histograms"]
    assert "batcher.batch_size" in histograms
    assert histograms["batcher.batch_size"]["p95"] >= 1
    # The snapshot is plain JSON end to end.
    json.dumps(snapshot)


def test_router_answers_stats_specs_itself():
    from repro.cluster.router import Router

    with Router.local(2, seed=0) as router:
        result = router.submit_specs([StatsSpec()])[0]
        assert result.task_type == "stats"
        assert result.answer["cluster"]["alive_workers"] == 2


# ------------------------------------------------------------------------- CLI
def test_cli_stats_reads_a_live_service(capsys):
    from repro.__main__ import main

    service = build_service(seed=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(service.start_tcp("127.0.0.1", 0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10)
    try:
        assert main(["stats", "--port", str(holder["port"])]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload and "service" in payload
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)


def test_cli_stats_reads_the_side_channel():
    from repro.__main__ import main
    from repro.obs import serve_stats_in_thread

    service = build_service(seed=0)
    port = serve_stats_in_thread(service.stats_snapshot, "127.0.0.1", 0)
    assert port is not None
    assert main(["stats", "--stats-port", str(port)]) == 0


def test_cli_stats_unreachable_service_fails_cleanly(capsys):
    from repro.__main__ import main

    assert main(["stats", "--port", "1", "--timeout", "0.2"]) == 1
    assert "cannot reach" in capsys.readouterr().err
