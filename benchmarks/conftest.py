"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's tables/figures at a reduced task
count (so ``pytest benchmarks/ --benchmark-only`` finishes in minutes) and
checks the qualitative shape the paper reports — who wins and by roughly what
margin — rather than absolute numbers.
"""

from __future__ import annotations

import pytest

#: Task cap applied to every benchmarked experiment run.
BENCH_MAX_TASKS = 16


@pytest.fixture
def bench_max_tasks() -> int:
    return BENCH_MAX_TASKS


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def scores_by_method(rows, dataset=None, key="score"):
    """Index experiment rows as {method: score}, optionally for one dataset."""
    out = {}
    for row in rows:
        if dataset is not None and row.get("dataset") != dataset:
            continue
        out[row["method"]] = row[key]
    return out
