"""Declarative SLOs with multi-window burn-rate alerts, plus health probes.

The time-series layer (:mod:`repro.obs.timeseries`) answers "what happened
over the last 10s/1m/5m"; this module interprets it.  An :class:`SLOSpec`
declares one objective:

* ``kind="latency"`` — a percentile of a latency histogram must stay at or
  under ``threshold`` seconds (e.g. *p99 of ``tenant.alice.latency`` ≤
  250 ms*);
* ``kind="error_rate"`` — the fraction of bad outcomes (a counter) over
  total outcomes must not burn the error ``budget`` faster than
  ``burn_rate`` times its sustainable pace (the classic SRE multi-window
  burn-rate rule).

Objectives are evaluated over **every** configured window and fire only
when all of them breach together: the short window proves the problem is
happening *now* (fast recovery detection), the long one that it is
*significant* (no flapping on a single slow request).  Transitions emit
``slo.breach`` / ``slo.recovered`` events and bump ``slo.*`` metrics, and
the firing set is exported as the ``alerts`` section of stats snapshots.

Per-tenant objectives ride the existing metric naming: ``tenant="alice"``
defaults the latency metric to ``tenant.alice.latency`` and the error-rate
counters to ``tenant.alice.rate_limited`` over
``tenant.alice.admitted + tenant.alice.rate_limited`` — nothing new is
instrumented, the SLO layer just reads what tenancy already records.

:class:`HealthMonitor` bundles one sampler + one engine behind the three
operational questions a supervisor asks: *alive?* (:meth:`health`),
*should I route traffic here?* (:meth:`ready` — not overloaded, no
page-severity alert firing, workers alive in cluster mode) and *what is
going on?* (:meth:`sections`, merged into stats snapshots).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from .events import emit_event
from .metrics import MetricsRegistry, get_default_registry
from .timeseries import TimeSeriesSampler, parse_window

#: Severities, most urgent first.  ``page`` gates readiness; ``ticket``
#: only surfaces in stats/`repro top`.
SEVERITIES = ("page", "ticket")

#: Knobs the serialized SLO forms accept.
_SPEC_KEYS = (
    "kind",
    "metric",
    "total",
    "percentile",
    "threshold",
    "budget",
    "burn_rate",
    "severity",
    "tenant",
    "windows",
)


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective (see the module docstring for semantics)."""

    name: str
    kind: str = "latency"
    #: Latency: histogram metric name.  Error rate: the *bad* counter.
    metric: str = ""
    #: Error rate only: ``+``-joined counter names forming the total.
    total: str = ""
    #: Latency only: the tracked percentile, as a fraction in (0, 1).
    percentile: float = 0.99
    #: Latency only: breach when the windowed percentile exceeds this (s).
    threshold: float | None = None
    #: Error rate only: tolerated bad fraction (the error budget).
    budget: float = 0.01
    #: Error rate only: firing multiple of the budget (burn >= this fires).
    burn_rate: float = 1.0
    severity: str = "page"
    #: Optional tenant; defaults metric names onto ``tenant.<name>.*``.
    tenant: str = ""
    windows: tuple[str, ...] = ("10s", "1m")

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("SLO name must be a non-empty string")
        if self.kind not in ("latency", "error_rate"):
            raise ValueError(
                f"SLO {self.name!r}: kind must be 'latency' or 'error_rate', "
                f"got {self.kind!r}"
            )
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"SLO {self.name!r}: severity must be one of {list(SEVERITIES)}"
            )
        if not 0.0 < self.percentile < 1.0:
            raise ValueError(f"SLO {self.name!r}: percentile must be in (0, 1)")
        if self.kind == "latency" and (self.threshold is None or self.threshold <= 0):
            raise ValueError(f"SLO {self.name!r}: latency SLOs need threshold > 0")
        if self.kind == "error_rate" and not 0.0 < self.budget <= 1.0:
            raise ValueError(f"SLO {self.name!r}: budget must be in (0, 1]")
        if self.burn_rate <= 0:
            raise ValueError(f"SLO {self.name!r}: burn_rate must be positive")
        if not self.windows:
            raise ValueError(f"SLO {self.name!r}: at least one window required")
        for label in self.windows:
            parse_window(label)  # raises on malformed labels
        if not self.resolved_metric():
            raise ValueError(
                f"SLO {self.name!r}: metric required (or tenant= to default it)"
            )

    # ------------------------------------------------------------- resolution
    def resolved_metric(self) -> str:
        """The histogram (latency) / bad-counter (error rate) metric name."""
        if self.metric:
            return self.metric
        if self.tenant:
            suffix = "latency" if self.kind == "latency" else "rate_limited"
            return f"tenant.{self.tenant}.{suffix}"
        return ""

    def resolved_total(self) -> tuple[str, ...]:
        """The counters summing to the total population (error rate only)."""
        if self.total:
            return tuple(part.strip() for part in self.total.split("+") if part.strip())
        if self.tenant:
            return (
                f"tenant.{self.tenant}.admitted",
                f"tenant.{self.tenant}.rate_limited",
            )
        return ()

    def window_seconds(self) -> tuple[tuple[str, float], ...]:
        return tuple((label, parse_window(label)) for label in self.windows)

    # ----------------------------------------------------------- serialization
    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "kind": self.kind,
            "metric": self.resolved_metric(),
            "severity": self.severity,
            "windows": list(self.windows),
        }
        if self.tenant:
            payload["tenant"] = self.tenant
        if self.kind == "latency":
            payload["percentile"] = self.percentile
            payload["threshold"] = self.threshold
        else:
            payload["total"] = "+".join(self.resolved_total())
            payload["budget"] = self.budget
            payload["burn_rate"] = self.burn_rate
        return payload

    @classmethod
    def from_payload(cls, name: str, payload: Mapping[str, Any]) -> "SLOSpec":
        if not isinstance(payload, Mapping):
            raise ValueError(f"SLO {name!r}: config must be an object")
        unknown = set(payload) - set(_SPEC_KEYS)
        if unknown:
            raise ValueError(
                f"SLO {name!r}: unknown config keys {sorted(unknown)}; "
                f"expected {list(_SPEC_KEYS)}"
            )
        knobs = dict(payload)
        if "percentile" in knobs:
            knobs["percentile"] = _fraction(name, knobs["percentile"])
        if "windows" in knobs:
            windows = knobs["windows"]
            if isinstance(windows, str):
                windows = windows.replace(":", " ").split()
            knobs["windows"] = tuple(str(label) for label in windows)
        return cls(name=name, **knobs)

    @classmethod
    def parse_inline(cls, text: str) -> "SLOSpec":
        """Parse the CLI form ``name[,knob=value,...]``.

        Window lists use ``:`` between labels (``windows=10s:1m``) since
        ``,`` separates knobs.  Percentiles accept both fractions and
        percents (``percentile=0.99`` ≡ ``percentile=99``).
        """
        parts = [part.strip() for part in text.split(",") if part.strip()]
        if not parts:
            raise ValueError("empty SLO specification")
        name, payload = parts[0], {}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(f"SLO {name!r}: expected knob=value, got {part!r}")
            key = key.strip()
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"SLO {name!r}: unknown knob {key!r}; "
                    f"expected one of {list(_SPEC_KEYS)}"
                )
            if key in ("percentile", "threshold", "budget", "burn_rate"):
                try:
                    payload[key] = float(value)
                except ValueError:
                    raise ValueError(
                        f"SLO {name!r}: {key} must be numeric, got {value!r}"
                    ) from None
            else:
                payload[key] = value.strip()
        return cls.from_payload(name, payload)


def _fraction(name: str, value: Any) -> float:
    """Accept percentiles as fractions (0.99) or percents (99)."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"SLO {name!r}: percentile must be numeric") from None
    if number >= 1.0:
        number /= 100.0
    return number


def load_slos(path: str | Path) -> list[SLOSpec]:
    """Load the JSON-file form: ``{"name": {knobs...}, ...}``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"SLOs file {path}: bad JSON: {exc}") from None
    if not isinstance(payload, Mapping):
        raise ValueError(f"SLOs file {path}: must be an object mapping name -> knobs")
    return [SLOSpec.from_payload(name, knobs) for name, knobs in payload.items()]


@dataclass
class _ObjectiveState:
    """Mutable evaluation state of one SLO."""

    spec: SLOSpec
    firing: bool = False
    since: float | None = None  # monotonic time of the last transition
    values: dict[str, Any] = field(default_factory=dict)
    budget_remaining: float | None = None


class SLOEngine:
    """Evaluates a set of objectives against a sampler's rolling windows.

    ``evaluate()`` is idempotent per sample: it recomputes every objective,
    flips alert states on threshold crossings, emits transition events and
    keeps per-objective current values for the stats payload.  It never
    raises on missing series — an objective whose metric has no data yet
    simply is not breaching.
    """

    def __init__(
        self,
        sampler: TimeSeriesSampler,
        slos: Sequence[SLOSpec] = (),
        *,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
        events: Callable[..., Any] = emit_event,
    ):
        names = [spec.name for spec in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {sorted(names)}")
        self.sampler = sampler
        self._clock = clock
        self._emit = events
        metrics = metrics or get_default_registry()
        self._m_breaches = metrics.counter("slo.breaches")
        self._m_recoveries = metrics.counter("slo.recoveries")
        self._m_firing = metrics.gauge("slo.firing")
        self._states = {spec.name: _ObjectiveState(spec) for spec in slos}
        self._lock = threading.Lock()

    @property
    def specs(self) -> list[SLOSpec]:
        return [state.spec for state in self._states.values()]

    # -------------------------------------------------------------- evaluation
    def evaluate(self) -> list[dict[str, Any]]:
        """Re-evaluate every objective; returns the firing alerts payload."""
        now = self._clock()
        with self._lock:
            for state in self._states.values():
                breaching = self._evaluate_one(state)
                if breaching and not state.firing:
                    state.firing = True
                    state.since = now
                    self._m_breaches.inc()
                    self._emit_safe("slo.breach", state)
                elif not breaching and state.firing:
                    state.firing = False
                    state.since = now
                    self._m_recoveries.inc()
                    self._emit_safe("slo.recovered", state)
            firing = sum(1 for state in self._states.values() if state.firing)
            self._m_firing.set(firing)
            return self._alerts_locked(now)

    def _evaluate_one(self, state: _ObjectiveState) -> bool:
        spec = state.spec
        values: dict[str, Any] = {}
        breaches: list[bool] = []
        for label, seconds in spec.window_seconds():
            if spec.kind == "latency":
                value = self.sampler.quantile(
                    spec.resolved_metric(), spec.percentile, seconds
                )
                values[label] = None if value is None else round(value, 9)
                breaches.append(
                    value is not None
                    and spec.threshold is not None
                    and value > spec.threshold
                )
            else:
                bad = self.sampler.counter_delta(spec.resolved_metric(), seconds)
                total = 0.0
                for counter in spec.resolved_total():
                    total += self.sampler.counter_delta(counter, seconds) or 0.0
                if bad is None or total <= 0:
                    values[label] = None
                    breaches.append(False)
                    continue
                ratio = bad / total
                burn = ratio / spec.budget
                values[label] = {
                    "bad": bad,
                    "total": total,
                    "ratio": round(ratio, 9),
                    "burn": round(burn, 9),
                }
                breaches.append(burn >= spec.burn_rate)
        state.values = values
        if spec.kind == "error_rate":
            # Budget remaining over the longest window: the headroom figure
            # `repro top` renders per tenant.
            longest = values.get(spec.windows[-1])
            if isinstance(longest, dict):
                state.budget_remaining = round(
                    min(1.0, max(0.0, 1.0 - longest["burn"])), 9
                )
            else:
                state.budget_remaining = 1.0
        # Multi-window rule: every configured window must breach at once.
        return bool(breaches) and all(breaches)

    def _emit_safe(self, event: str, state: _ObjectiveState) -> None:
        """Emit a transition event; a broken sink never breaks evaluation.

        The state flip already happened — losing one event line beats
        killing the monitor tick (and with it probes and alerting).
        """
        try:
            self._emit(event, **self._transition_fields(state))
        except Exception:  # pragma: no cover - defensive
            pass

    def _transition_fields(self, state: _ObjectiveState) -> dict[str, Any]:
        spec = state.spec
        # ``slo_kind``, not ``kind``: the latter is the event's own type slot.
        fields: dict[str, Any] = {
            "slo": spec.name,
            "slo_kind": spec.kind,
            "severity": spec.severity,
            "metric": spec.resolved_metric(),
            "windows": dict(state.values),
        }
        if spec.tenant:
            fields["tenant"] = spec.tenant
        if spec.kind == "latency":
            fields["percentile"] = spec.percentile
            fields["threshold"] = spec.threshold
        else:
            fields["budget"] = spec.budget
            fields["burn_rate"] = spec.burn_rate
        return fields

    # ----------------------------------------------------------------- queries
    def alerts(self) -> list[dict[str, Any]]:
        """The firing alerts (most urgent severity first)."""
        with self._lock:
            return self._alerts_locked(self._clock())

    def _alerts_locked(self, now: float) -> list[dict[str, Any]]:
        alerts = []
        for state in self._states.values():
            if not state.firing:
                continue
            alert = self._transition_fields(state)
            alert["state"] = "firing"
            alert["for_s"] = round(now - (state.since or now), 3)
            alerts.append(alert)
        alerts.sort(key=lambda a: SEVERITIES.index(a["severity"]))
        return alerts

    def page_firing(self) -> bool:
        """Whether any page-severity alert is currently firing."""
        with self._lock:
            return any(
                state.firing and state.spec.severity == "page"
                for state in self._states.values()
            )

    def payload(self) -> dict[str, Any]:
        """Every objective's declaration + current evaluation (stats section)."""
        with self._lock:
            objectives = {}
            for state in self._states.values():
                entry = state.spec.to_payload()
                entry["state"] = "firing" if state.firing else "ok"
                entry["values"] = dict(state.values)
                if state.budget_remaining is not None:
                    entry["budget_remaining"] = state.budget_remaining
                objectives[state.spec.name] = entry
            return objectives


class HealthMonitor:
    """One sampler + one SLO engine behind liveness/readiness answers.

    Parameters
    ----------
    registry:
        Metrics registry to sample (process default when ``None``).
    slos:
        Objectives to evaluate (may be empty — the time-series layer and
        the probes are useful on their own).
    interval:
        Sampling/evaluation period of the background loop and the
        freshness bound of on-demand ticks.
    admission:
        The front door's :class:`~repro.obs.admission.AdmissionController`;
        readiness reports *not ready* while it is saturated.
    workers_alive:
        Cluster mode: zero-argument callable returning ``(live, total)``
        worker counts; readiness requires every *expected* worker alive.
        The ring is elastic: planned joins/leaves adjust ``total`` in step
        (a draining worker is expected-absent), so only a crash — a worker
        off the ring that is not draining — degrades readiness, until the
        Supervisor revives it.
    clock:
        Monotonic seconds source shared with the sampler/engine.
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        interval: float = 1.0,
        admission: Any = None,
        workers_alive: Callable[[], tuple[int, int]] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sampler: TimeSeriesSampler | None = None,
    ):
        self.sampler = sampler or TimeSeriesSampler(
            registry, interval=interval, clock=clock
        )
        self.engine = SLOEngine(
            self.sampler, slos, clock=clock, metrics=registry
        )
        self.admission = admission
        self.workers_alive = workers_alive
        self.interval = interval
        self._clock = clock
        self._started_at = clock()
        self._ticks = 0
        self._last_tick: float | None = None
        self._tick_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------- ticks
    def tick(self) -> None:
        """One sample + one SLO evaluation (the unit of monitoring time)."""
        with self._tick_lock:
            self.sampler.sample()
            self.engine.evaluate()
            self._ticks += 1
            self._last_tick = self._clock()

    def ensure_fresh(self) -> None:
        """Tick now unless the background loop ticked within one interval."""
        last = self._last_tick
        if last is not None and self._clock() - last < self.interval:
            return
        self.tick()

    def start(self) -> None:
        """Run the tick loop on a daemon thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.tick()
                except Exception:  # pragma: no cover - defensive
                    # A transient evaluation error must not kill the ticker:
                    # probes and alerting depend on this thread staying up.
                    continue

        self._thread = threading.Thread(target=run, daemon=True, name="repro-slo")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # ------------------------------------------------------------------ probes
    def health(self) -> dict[str, Any]:
        """Liveness: the process is up and monitoring is running."""
        return {
            "status": "ok",
            "uptime_s": round(self._clock() - self._started_at, 3),
            "ticks": self._ticks,
            "alerts_firing": len(self.engine.alerts()),
        }

    def ready(self) -> tuple[bool, dict[str, Any]]:
        """Readiness: ``(ok, detail)`` — should traffic be routed here?

        Not ready while (a) a page-severity alert is firing, (b) admission
        control is saturated (pending at or past capacity), or (c) any
        cluster worker has died.  ``detail["reasons"]`` names every failing
        condition so a probe log explains itself.
        """
        self.ensure_fresh()
        reasons: list[str] = []
        if self.engine.page_firing():
            firing = [
                alert["slo"]
                for alert in self.engine.alerts()
                if alert["severity"] == "page"
            ]
            reasons.append(f"page alert firing: {', '.join(firing)}")
        detail: dict[str, Any] = {}
        admission = self.admission
        if admission is not None and admission.capacity is not None:
            pending = admission.pending
            detail["admission"] = {"pending": pending, "capacity": admission.capacity}
            if pending >= admission.capacity:
                reasons.append(
                    f"overloaded: {pending} pending of {admission.capacity} capacity"
                )
        if self.workers_alive is not None:
            live, total = self.workers_alive()
            detail["workers"] = {"live": live, "total": total}
            if live < total or live == 0:
                reasons.append(f"workers dead: {live} of {total} alive")
        ok = not reasons
        detail["ready"] = ok
        detail["reasons"] = reasons
        return ok, detail

    # ------------------------------------------------------------------- stats
    def sections(self, prefix: str = "") -> dict[str, Any]:
        """The monitor-derived sections merged into a stats snapshot.

        ``prefix`` narrows the (potentially large) time-series section the
        way metric snapshots narrow; alerts and SLO states are always
        reported in full — a firing page should never be filtered away.
        """
        self.ensure_fresh()
        ok, ready_detail = self.ready()
        health = self.health()
        health["ready"] = ok
        health["reasons"] = ready_detail["reasons"]
        if "workers" in ready_detail:
            # Cluster mode: surface the live/total worker count so clients
            # and ``repro top`` can render elasticity without a second probe.
            health["workers"] = ready_detail["workers"]
        if not ok:
            health["status"] = "degraded"
        return {
            "alerts": self.engine.alerts(),
            "slos": self.engine.payload(),
            "timeseries": self.sampler.windows_payload(prefix=prefix),
            "health": health,
        }


def monitor_for(
    *,
    registry: MetricsRegistry | None = None,
    slos: Sequence[SLOSpec] = (),
    interval: float = 1.0,
    admission: Any = None,
    workers_alive: Callable[[], tuple[int, int]] | None = None,
) -> HealthMonitor:
    """Convenience assembly used by ``build_service`` and the serve CLI."""
    return HealthMonitor(
        registry=registry,
        slos=slos,
        interval=interval,
        admission=admission,
        workers_alive=workers_alive,
    )


__all__ = [
    "HealthMonitor",
    "SEVERITIES",
    "SLOEngine",
    "SLOSpec",
    "load_slos",
    "monitor_for",
]
