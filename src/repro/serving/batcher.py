"""Micro-batching scheduler for LLM calls.

Concurrent task executions each need small, latency-sensitive LLM calls.  The
:class:`MicroBatcher` sits between the async task coroutines and the
synchronous :class:`~repro.llm.base.LanguageModel`: coroutines ``submit()``
individual prompts and await their completions, while the batcher coalesces
pending **same-kind** prompts into one ``complete_batch`` call.

A batch is dispatched when the first of three triggers fires:

* **size** — a kind accumulates ``max_batch_size`` pending prompts;
* **idle** — the event loop drains its ready queue without any new
  submission arriving (every in-flight task is blocked), so waiting longer
  cannot grow the batch;
* **timeout** — ``max_wait`` seconds elapsed since the oldest pending prompt
  (the formal progress guarantee behind the idle heuristic).

Batches execute on a worker thread pool so the event loop stays responsive;
bounding that pool (``llm_threads``) is the backpressure knob towards the
backend, just as the engine's worker semaphore bounds in-flight tasks.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import Executor
from dataclasses import dataclass, field
from functools import partial

from typing import Any

from ..llm.base import Completion, LanguageModel
from ..obs.export import get_default_exemplars
from ..obs.metrics import MetricsRegistry, SIZE_BUCKETS, get_default_registry
from ..obs.span import Span
from ..obs.trace import Trace

#: The spec (route) key of the task currently executing, set by the engine
#: around each task coroutine.  ``submit`` reads it to attribute every
#: prompt to the spec that issued it — the attribution the cluster's
#: shard-migration path needs, captured here because this is the last layer
#: where a prompt still belongs to exactly one task (batches mix tasks).
ROUTE_KEY: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_route_key", default=None
)


@dataclass
class _Request:
    prompt: str
    kind: str
    future: asyncio.Future
    #: ``perf_counter`` at submission; queue wait is measured at dispatch.
    enqueued: float = 0.0
    #: ``batcher.wait`` span opened at submission (None when unsampled).
    span: "Span | None" = None


@dataclass
class BatcherStats:
    """Counters describing how well coalescing worked during one run."""

    requests: int = 0
    batches: int = 0
    max_batch: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def note(self, kind: str, size: int) -> None:
        self.requests += size
        self.batches += 1
        self.max_batch = max(self.max_batch, size)
        self.by_kind[kind] = self.by_kind.get(kind, 0) + size


class MicroBatcher:
    """Coalesces concurrent same-kind prompts into batched LLM calls.

    Must be used from a single running event loop; batch execution happens on
    ``executor`` (falls back to the loop's default executor when ``None``).
    """

    def __init__(
        self,
        llm: LanguageModel,
        max_batch_size: int = 8,
        max_wait: float = 0.002,
        executor: Executor | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.llm = llm
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait
        self.stats = BatcherStats()
        # Metric handles resolved once (the registry lock must stay off the
        # per-submission path); per-kind latency histograms resolve lazily.
        metrics = metrics or get_default_registry()
        self._metrics = metrics
        self._m_requests = metrics.counter("batcher.requests")
        self._m_batches = metrics.counter("batcher.batches")
        self._m_flush = {
            reason: metrics.counter(f"batcher.flush.{reason}")
            for reason in ("size", "idle", "timeout")
        }
        self._m_batch_size = metrics.histogram("batcher.batch_size", SIZE_BUCKETS)
        self._m_queue_wait = metrics.histogram("batcher.queue_wait")
        self._m_llm_latency: dict[str, Any] = {}
        self._executor = executor
        self._pending: dict[str, list[_Request]] = {}
        self._generation = 0
        self._timer: asyncio.TimerHandle | None = None

    # ----------------------------------------------------------------- client
    async def submit(self, prompt: str, kind: str = "other") -> Completion:
        """Enqueue one prompt and await its completion.

        The whole stay in the batcher — coalesce wait plus the batched LLM
        call — is timed under a per-request ``batcher.wait`` span (parented
        by the submitting task's span via the ambient context).
        """
        loop = asyncio.get_running_loop()
        route = ROUTE_KEY.get()
        if route is not None:
            note = getattr(self.llm, "note_route", None)
            if note is not None:
                note(prompt, route)
        wait_span = Span.begin("batcher.wait", attrs={"kind": kind})
        request = _Request(
            prompt, kind, loop.create_future(), time.perf_counter(), wait_span
        )
        queue = self._pending.setdefault(kind, [])
        queue.append(request)
        self._generation += 1
        self._m_requests.inc()
        if len(queue) >= self.max_batch_size:
            self._flush_kind(loop, kind, reason="size")
        else:
            self._arm(loop)
        try:
            completion = await request.future
        except BaseException:
            if wait_span is not None:
                wait_span.finish(status="error")
            raise
        if wait_span is not None:
            wait_span.finish()
        return completion

    # ----------------------------------------------------------------- triggers
    def _arm(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._timer is None:
            self._timer = loop.call_later(self.max_wait, partial(self._flush_all, loop))
        # Two call_soon hops let every currently-runnable coroutine advance to
        # its next await; if no new submission arrived by then, nothing can
        # grow the batch and waiting out max_wait would be pure latency.
        loop.call_soon(self._idle_check, loop, self._generation, 0)

    def _idle_check(
        self, loop: asyncio.AbstractEventLoop, generation: int, phase: int
    ) -> None:
        if generation != self._generation or not self._pending:
            return  # superseded by a newer submission, or nothing to do
        if phase == 0:
            loop.call_soon(self._idle_check, loop, generation, 1)
        else:
            self._flush_all(loop, reason="idle")

    # ----------------------------------------------------------------- flushing
    def _flush_all(self, loop: asyncio.AbstractEventLoop, reason: str = "timeout") -> None:
        self._cancel_timer()
        for kind in list(self._pending):
            while self._pending.get(kind):
                self._flush_kind(loop, kind, reason=reason)

    def _flush_kind(
        self, loop: asyncio.AbstractEventLoop, kind: str, reason: str = "size"
    ) -> None:
        queue = self._pending.get(kind, [])
        batch, rest = queue[: self.max_batch_size], queue[self.max_batch_size :]
        if rest:
            self._pending[kind] = rest
        else:
            self._pending.pop(kind, None)
            if not self._pending:
                self._cancel_timer()
        if batch:
            self.stats.note(kind, len(batch))
            self._m_batches.inc()
            self._m_flush[reason].inc()
            self._m_batch_size.observe(len(batch))
            now = time.perf_counter()
            for request in batch:
                self._m_queue_wait.observe(now - request.enqueued)
            loop.create_task(self._execute(loop, kind, batch))

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    async def _execute(
        self, loop: asyncio.AbstractEventLoop, kind: str, batch: list[_Request]
    ) -> None:
        prompts = [request.prompt for request in batch]
        # One llm.call span per dispatched batch.  It is parented by the
        # first waiter's batcher.wait span — a batch belongs to all its
        # waiters, but a tree needs one parent, and the first waiter is the
        # one whose coalesce wait the batch closed out.
        first_span = next(
            (request.span for request in batch if request.span is not None), None
        )
        call_span = (
            Span.begin(
                "llm.call",
                trace_id=first_span.trace_id,
                parent_id=first_span.span_id,
                attrs={"kind": kind, "batch": len(batch)},
            )
            if first_span is not None
            else None
        )
        started = time.perf_counter()
        try:
            if call_span is not None:
                # run_in_executor does NOT propagate contextvars; capture the
                # context under the call span so spans opened inside the LLM
                # stack (cache.lookup, llm.backend) nest beneath it.
                with call_span.bind():
                    context = contextvars.copy_context()
                call = partial(
                    context.run, partial(self.llm.complete_batch, prompts, kind)
                )
            else:
                call = partial(self.llm.complete_batch, prompts, kind)
            completions = await loop.run_in_executor(self._executor, call)
            latency = self._m_llm_latency.get(kind)
            if latency is None:
                latency = self._metrics.histogram(f"batcher.llm_latency.{kind}")
                self._m_llm_latency[kind] = latency
            latency.observe(time.perf_counter() - started)
            get_default_exemplars().note(
                f"batcher.llm_latency.{kind}", Trace.current_id()
            )
        except Exception as exc:  # propagate to every waiter of this batch
            if call_span is not None:
                call_span.finish(status="error")
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        if call_span is not None:
            call_span.finish()
        for request, completion in zip(batch, completions):
            if not request.future.done():
                request.future.set_result(completion)
