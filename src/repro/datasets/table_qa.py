"""Table question answering dataset (WikiTableQuestions style, Appendix C).

Small tables with aggregation questions ("how many gold medals did Australia
and Switzerland total?").  The paper only uses TableQA as a worked example of
generality (Figure 3), so the dataset is modest in size; it exists to exercise
the end-to-end pipeline on table-level (rather than cell-level) queries.
"""

from __future__ import annotations

from ..core.tasks.table_qa import TableQATask
from ..core.types import TaskType
from ..datalake.schema import Attribute, AttributeType, Schema
from ..datalake.table import Table
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder

_NATIONS = [
    "Australia (AUS)", "Italy (ITA)", "Germany (EUA)", "Soviet Union (URS)",
    "Switzerland (SUI)", "United States (USA)", "Great Britain (GBR)",
    "France (FRA)", "Canada (CAN)", "Japan (JPN)", "Norway (NOR)", "Sweden (SWE)",
]


class WikiTableQuestionsDataset(DatasetBuilder):
    """Medal-table style tables with sum / count / lookup questions."""

    name = "wiki_table_questions"
    task_type = TaskType.TABLE_QA

    def __init__(self, seed: int = 0, n_tables: int = 6, nations_per_table: int = 8):
        super().__init__(seed)
        self.n_tables = n_tables
        self.nations_per_table = nations_per_table

    def _make_table(self, index: int) -> Table:
        schema = Schema(
            [
                Attribute("nation", primary_key=True, domain="geography.nation"),
                Attribute("gold", AttributeType.NUMERIC),
                Attribute("silver", AttributeType.NUMERIC),
                Attribute("bronze", AttributeType.NUMERIC),
                Attribute("total", AttributeType.NUMERIC),
            ]
        )
        table = Table(f"medals_{index}", schema, description="Olympic medal table")
        for nation in self.sample(_NATIONS, self.nations_per_table):
            gold = int(self.rng.integers(0, 5))
            silver = int(self.rng.integers(0, 5))
            bronze = int(self.rng.integers(0, 5))
            table.append(
                {
                    "nation": nation,
                    "gold": gold,
                    "silver": silver,
                    "bronze": bronze,
                    "total": gold + silver + bronze,
                }
            )
        return table

    def build(self) -> BenchmarkDataset:
        knowledge = WorldKnowledge()
        knowledge.set_relation_template("gold", "{subject} won {value} gold medals")
        knowledge.set_relation_template("silver", "{subject} won {value} silver medals")
        knowledge.set_relation_template("bronze", "{subject} won {value} bronze medals")
        knowledge.set_relation_template("total", "{subject} won {value} medals in total")
        for medal in ("gold", "silver", "bronze", "total"):
            knowledge.add_attribute_link("nation", medal, 0.6)
        knowledge.add_attribute_link("gold", "total", 0.8)

        tables: dict[str, Table] = {}
        tasks: list[TableQATask] = []
        ground_truth: list[str] = []
        for index in range(self.n_tables):
            table = self._make_table(index)
            tables[table.name] = table
            records = table.records
            # Question 1: total golds of two specific nations.
            pair = self.sample(records, 2)
            question = (
                f"how many gold medals did {pair[0]['nation']} and "
                f"{pair[1]['nation']} total?"
            )
            tasks.append(TableQATask(table, question))
            ground_truth.append(str(int(pair[0]["gold"]) + int(pair[1]["gold"])))
            # Question 2: golds of one nation.
            one = self.choice(records)
            tasks.append(TableQATask(table, f"how many gold medals did {one['nation']} win?"))
            ground_truth.append(str(int(one["gold"])))

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables=tables,
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
        )
