"""Serialisation of tables and lakes to CSV / JSON.

The reproduction ships synthetic generators rather than the original benchmark
downloads, but a real deployment ingests files sitting in object storage, so
the substrate still provides round-trippable CSV and JSON persistence.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any

from .lake import DataLake
from .schema import Attribute, AttributeType, Schema
from .table import Table, is_missing


def table_to_csv(table: Table, path: str | Path) -> Path:
    """Write a table as a CSV file with a header row; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        for record in table:
            writer.writerow(
                ["" if is_missing(v) else v for v in record.values()]
            )
    return path


def table_from_csv(
    path: str | Path,
    name: str | None = None,
    schema: Schema | None = None,
) -> Table:
    """Load a CSV file (header row required) into a Table."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"CSV file {path} is empty")
    header, body = rows[0], rows[1:]
    if schema is None:
        schema = Schema([Attribute(h) for h in header])
    table = Table(name or path.stem, schema)
    for row in body:
        values = {h: (v if v != "" else None) for h, v in zip(header, row)}
        table.append({k: values.get(k) for k in schema.names})
    return table


def table_to_json(table: Table, path: str | Path | None = None) -> str:
    """Serialise a table (schema + rows) to a JSON string, optionally to disk."""
    payload: dict[str, Any] = {
        "name": table.name,
        "description": table.description,
        "schema": [
            {
                "name": a.name,
                "type": a.type.value,
                "primary_key": a.primary_key,
                "description": a.description,
                "domain": a.domain,
            }
            for a in table.schema
        ],
        "records": table.to_dicts(),
    }
    text = json.dumps(payload, indent=2, default=str)
    if path is not None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
    return text


def table_from_json(source: str | Path) -> Table:
    """Load a table from a JSON string or file produced by :func:`table_to_json`."""
    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".json")
    ):
        text = Path(source).read_text(encoding="utf-8")
    else:
        text = str(source)
    payload = json.loads(text)
    schema = Schema(
        [
            Attribute(
                name=a["name"],
                type=AttributeType(a.get("type", "text")),
                primary_key=a.get("primary_key", False),
                description=a.get("description", ""),
                domain=a.get("domain", ""),
            )
            for a in payload["schema"]
        ]
    )
    table = Table(payload["name"], schema, description=payload.get("description", ""))
    for row in payload["records"]:
        table.append({k: row.get(k) for k in schema.names})
    return table


def lake_to_directory(lake: DataLake, directory: str | Path) -> Path:
    """Persist every table of a lake as ``<directory>/<table>.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in lake.tables:
        table_to_json(table, directory / f"{table.name}.json")
    return directory


def lake_from_directory(directory: str | Path, name: str = "lake") -> DataLake:
    """Load every ``*.json`` table in a directory into a DataLake."""
    directory = Path(directory)
    lake = DataLake(name=name)
    for path in sorted(directory.glob("*.json")):
        lake.add(table_from_json(path))
    return lake
