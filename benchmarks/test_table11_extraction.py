"""Benchmark: regenerate Table 11 (information extraction text F1)."""

from conftest import run_once

from repro.experiments import table11_extraction


def test_table11_extraction(benchmark):
    rows = run_once(benchmark, table11_extraction.run, seed=0, max_tasks=80)
    scores = {row["method"]: row["score"] for row in rows}
    # Paper shape: the single-function Evaporate-code trails both UniDM and the
    # function ensemble; the ensemble is the strongest or close to it.
    assert scores["Evaporate-code"] < scores["UniDM"]
    assert scores["Evaporate-code"] < scores["Evaporate-code+"]
    assert scores["Evaporate-code+"] >= scores["UniDM"] - 20
