"""Elastic cluster transitions, proven under deterministic fault injection.

Every transition the elastic ring supports — live join, drained leave,
crash + supervised restart, autoscale up/down — must leave results
bit-identical to a single engine's ``run_many`` (the parity contract of
``tests/cluster/test_parity.py`` extended to *moving* worker sets), migrate
only the consistent-hash-minimal shard entries, and keep readiness healthy.
The :class:`repro.cluster.FaultInjector` harness drives the failure modes
on a schedule (seeded, reproducible) instead of waiting for luck.
"""

import threading
import time

import pytest

from cluster_testing import RNG_FREE, PromptPureLLM, fingerprint, make_mixed_specs

from repro.cluster import (
    ClusterError,
    Autoscaler,
    FaultInjector,
    Router,
    Supervisor,
)
from repro.obs import configure_default_event_log
from repro.obs.metrics import get_default_registry


def make_router(n_workers: int = 2, **overrides) -> Router:
    options = dict(
        llm_factory=lambda i: PromptPureLLM(),
        config=RNG_FREE,
        health_interval=None,  # deterministic: no background sweep
    )
    options.update(overrides)
    return Router.local(n_workers, **options)


def reference_fingerprint(specs) -> list:
    """What a single-engine run answers — the bit-parity oracle."""
    with make_router(1) as router:
        return fingerprint(router.submit_specs(specs))


def llm_calls() -> int:
    return int(get_default_registry().counter("llm.calls").value)


# ------------------------------------------------------------------ live join
def test_live_join_is_bit_identical_and_migrates_entries(tmp_path, mixed_specs):
    reference = reference_fingerprint(mixed_specs)
    with make_router(2, cache_dir=str(tmp_path)) as router:
        assert fingerprint(router.submit_specs(mixed_specs)) == reference
        joined = router.add_worker()
        assert joined in router.live_workers
        assert len(router.live_workers) == 3
        # The joiner's shard was warmed by migration before it opened, so
        # re-running the workload recomputes nothing anywhere.
        before = llm_calls()
        assert fingerprint(router.submit_specs(mixed_specs)) == reference
        assert llm_calls() == before
        stats = router.stats()
        assert stats.resizes == 1
        assert stats.migrations > 0
        assert router.monitor.ready()[0]


def test_join_migration_is_hash_minimal(tmp_path, mixed_specs):
    with make_router(2, cache_dir=str(tmp_path)) as router:
        router.submit_specs(mixed_specs)
        total_entries = sum(
            row.cache_entries
            for row in router.stats().workers
            if row.cache_entries > 0
        )
        migrated = 0
        router.add_worker()
        migrated = router.stats().migrations
        # Consistent hashing moves ~1/3 of the keys to a third worker —
        # far below the ~2/3 a naive mod-N resharding would relocate.
        assert 0 < migrated <= 0.6 * total_entries


def test_join_under_inflight_load_loses_nothing(tmp_path, mixed_specs):
    reference = reference_fingerprint(mixed_specs)
    with make_router(2, cache_dir=str(tmp_path)) as router:
        results: list = []
        errors: list = []

        def pound() -> None:
            for _ in range(6):
                batch = router.submit_specs(mixed_specs)
                results.append(fingerprint(batch))
                errors.extend(r for r in batch if r.error is not None)

        load = threading.Thread(target=pound)
        load.start()
        router.add_worker()
        load.join(timeout=60)
        assert not load.is_alive()
        assert not errors, "a resize failed in-flight requests"
        assert all(item == reference for item in results)


# -------------------------------------------------------------- drained leave
def test_drained_leave_migrates_shard_to_survivors(tmp_path, mixed_specs):
    reference = reference_fingerprint(mixed_specs)
    with make_router(3, cache_dir=str(tmp_path)) as router:
        assert fingerprint(router.submit_specs(mixed_specs)) == reference
        victim = sorted(router.live_workers)[-1]
        migrated = router.remove_worker(victim, drain=True)
        assert victim not in router.workers
        assert len(router.live_workers) == 2
        assert router.stats().draining == 0
        # Whatever the leaver owned now lives on the survivors: rerunning
        # the workload is all cache hits, zero backend calls.
        before = llm_calls()
        assert fingerprint(router.submit_specs(mixed_specs)) == reference
        assert llm_calls() == before
        assert migrated >= 0
        assert router.monitor.ready()[0]


def test_leave_waits_for_slow_inflight_work(tmp_path, mixed_specs):
    injector = FaultInjector(seed=3)
    with make_router(
        2,
        cache_dir=str(tmp_path),
        worker_decorator=injector.wrap,
        faults=injector,
    ) as router:
        reference = fingerprint(router.submit_specs(mixed_specs))
        victim = sorted(router.live_workers)[0]
        injector.slow_drain(victim, 0.2)
        outcome: dict = {}

        def pound() -> None:
            outcome["fp"] = fingerprint(router.submit_specs(mixed_specs))

        load = threading.Thread(target=pound)
        load.start()
        time.sleep(0.05)  # let the slow submit reach the victim
        router.remove_worker(victim, drain=True, drain_timeout=30.0)
        load.join(timeout=60)
        assert not load.is_alive()
        assert outcome["fp"] == reference
        assert any(entry["fault"] == "slow_drain" for entry in injector.log)


def test_last_live_worker_cannot_be_removed():
    with make_router(1) as router:
        (only,) = router.live_workers
        with pytest.raises(ClusterError):
            router.remove_worker(only)


# ---------------------------------------------------------- crash + restart
def test_crash_mid_pipeline_requeues_exactly_once(tmp_path, mixed_specs):
    # Oracle: a cold 2-worker run with no faults makes exactly this many
    # backend calls for the workload.
    with make_router(2, cache_dir=str(tmp_path / "oracle")) as router:
        before = llm_calls()
        reference = fingerprint(router.submit_specs(mixed_specs))
        cold_calls = llm_calls() - before

    injector = FaultInjector(seed=11)
    log = configure_default_event_log(capacity=8192)
    try:
        with make_router(
            2,
            cache_dir=str(tmp_path / "faulty"),
            worker_decorator=injector.wrap,
            faults=injector,
        ) as router:
            victim, nth = injector.plan_kill(router.live_workers, max_submit=1)
            before = llm_calls()
            results = router.submit_specs(mixed_specs)
            # Bit-identical despite the crash, and exactly once: the victim
            # died *before* any backend work and the requeued group ran once
            # on the survivor, so the crash run can never call the backend
            # more than the crash-free oracle (it may call *less*: a prompt
            # two shards would each compute is computed once when one
            # survivor owns everything).
            assert fingerprint(results) == reference
            assert 0 < llm_calls() - before <= cold_calls
            stats = router.stats()
            assert stats.deaths == 1
            assert stats.requeues > 0
            requeues = log.events(kind="router.requeue")
            assert len(requeues) == 1
            assert requeues[0]["worker"] == victim
            assert injector.log == [
                {"fault": "kill_at_submit", "worker": victim, "submit": nth}
            ]
    finally:
        configure_default_event_log(capacity=8192)


def test_supervisor_restart_replays_shard_with_zero_misses(tmp_path, mixed_specs):
    injector = FaultInjector(seed=11)
    log = configure_default_event_log(capacity=8192)
    try:
        with make_router(
            2,
            cache_dir=str(tmp_path),
            worker_decorator=injector.wrap,
            faults=injector,
        ) as router:
            reference = fingerprint(router.submit_specs(mixed_specs))
            victim, _ = injector.plan_kill(router.live_workers, max_submit=1)
            router.submit_specs(mixed_specs)  # the crash + requeue round
            assert victim not in router.live_workers
            ready, detail = router.monitor.ready()
            assert not ready  # a crash (unlike a drain) degrades readiness
            assert detail["workers"]["live"] == 1

            supervisor = Supervisor(router)
            assert supervisor.check_once() == [victim]
            assert victim in router.live_workers
            assert router.monitor.ready()[0]
            assert router.stats().restarts == 1
            restarts = log.events(kind="cluster.restart")
            assert [e["worker"] for e in restarts] == [victim]

            # Warm-restart replay: the revived worker re-opened its shard,
            # so re-submitting the workload costs zero backend calls.
            before = llm_calls()
            assert fingerprint(router.submit_specs(mixed_specs)) == reference
            assert llm_calls() == before
    finally:
        configure_default_event_log(capacity=8192)


def test_supervisor_backoff_caps_and_gives_up():
    clock = {"now": 100.0}
    with make_router(2) as router:
        supervisor = Supervisor(
            router,
            backoff_base=0.5,
            backoff_cap=4.0,
            max_restarts=3,
            clock=lambda: clock["now"],
        )
        assert supervisor.backoff(1) == 0.5
        assert supervisor.backoff(2) == 1.0
        assert supervisor.backoff(4) == 4.0  # capped
        victim = sorted(router.live_workers)[0]
        for expected_attempts in (1, 2, 3):
            router.workers[victim].kill()
            assert supervisor.check_once() == [victim]
            assert supervisor._attempts[victim] == expected_attempts
            clock["now"] += 60.0  # past any backoff window
        router.workers[victim].kill()
        assert supervisor.check_once() == []  # max_restarts reached


def test_supervisor_respects_backoff_window():
    clock = {"now": 0.0}
    with make_router(2) as router:
        supervisor = Supervisor(
            router, backoff_base=10.0, clock=lambda: clock["now"]
        )
        victim = sorted(router.live_workers)[0]
        router.workers[victim].kill()
        assert supervisor.check_once() == [victim]
        router.workers[victim].kill()
        assert supervisor.check_once() == []  # inside the 10s window
        clock["now"] = 11.0
        assert supervisor.check_once() == [victim]


def test_death_detection_is_idempotent_across_sweep_and_submit(mixed_specs):
    # Satellite: a sweep and a failed submit can discover the same corpse;
    # the death must be counted once, and a revived worker must be immune
    # to stale reports from before its restart.
    with make_router(2) as router:
        victim = sorted(router.live_workers)[0]
        stale_generation = router._generation[victim]
        router.workers[victim].kill()
        router.submit_specs(mixed_specs)  # failed submit discovers it
        router.check_health()  # ...and so does a sweep, concurrently-ish
        router.check_health()
        assert router.stats().deaths == 1
        revived = Supervisor(router).check_once()
        assert revived == [victim]
        # A stale report captured before the restart is inert.
        router._mark_dead(victim, stale_generation)
        assert victim in router.live_workers
        assert router.stats().deaths == 1


def test_close_joins_the_health_sweep_thread(mixed_specs):
    router = make_router(2, health_interval=0.05)
    thread = router._sweep_thread
    assert thread is not None and thread.is_alive()
    router.submit_specs(mixed_specs)
    router.close()
    assert not thread.is_alive()
    assert router._sweep_thread is None


# ------------------------------------------------------------------ autoscale
def autoscaling_router(tmp_path, clock) -> "tuple[Router, Autoscaler]":
    router = make_router(2, cache_dir=str(tmp_path))
    autoscaler = Autoscaler(
        router,
        min_workers=1,
        max_workers=3,
        scale_up_at=4.0,
        scale_down_at=0.5,
        window="10s",
        cooldown=30.0,
        clock=lambda: clock["now"],
    )
    return router, autoscaler


def drive_load_signal(router: Router, inflight: float) -> None:
    """Pin the load gauge and take enough samples to fill a window."""
    gauge = get_default_registry().gauge("router.inflight")
    gauge.set(inflight)
    router.monitor.sampler.sample()
    router.monitor.sampler.sample()


def test_autoscaler_scales_up_then_down_with_cooldown(tmp_path, mixed_specs):
    reference = reference_fingerprint(mixed_specs)
    clock = {"now": 1000.0}
    with make_router(2, cache_dir=str(tmp_path)) as router:
        # One fake clock drives both the cooldown and the sampler windows,
        # so advancing it really ages the old load samples out of view.
        router.monitor.sampler._clock = lambda: clock["now"]
        autoscaler = Autoscaler(
            router,
            min_workers=1,
            max_workers=3,
            scale_up_at=4.0,
            scale_down_at=0.5,
            cooldown=30.0,
            clock=lambda: clock["now"],
        )
        router.submit_specs(mixed_specs)

        drive_load_signal(router, inflight=20.0)  # 10 per live worker
        assert autoscaler.decide() == "up"
        assert autoscaler.tick() == "up"
        assert len(router.live_workers) == 3
        assert router.monitor.ready()[0]

        # Cooldown: another saturated tick does nothing yet.
        assert autoscaler.tick() is None
        assert len(router.live_workers) == 3

        clock["now"] += 31.0
        drive_load_signal(router, inflight=20.0)
        assert autoscaler.tick() is None  # at max_workers already

        clock["now"] += 31.0
        drive_load_signal(router, inflight=0.0)
        assert autoscaler.decide() == "down"
        assert autoscaler.tick() == "down"
        assert len(router.live_workers) == 2
        assert router.monitor.ready()[0]
        # Results stay bit-identical across the whole up/down cycle.
        assert fingerprint(router.submit_specs(mixed_specs)) == reference


def test_autoscaler_holds_inside_the_hysteresis_band(tmp_path):
    clock = {"now": 0.0}
    with make_router(2, cache_dir=str(tmp_path)) as router:
        autoscaler = Autoscaler(
            router,
            min_workers=1,
            max_workers=3,
            scale_up_at=4.0,
            scale_down_at=0.5,
            cooldown=0.0,
            clock=lambda: clock["now"],
        )
        drive_load_signal(router, inflight=4.0)  # 2 per worker: in the band
        assert autoscaler.decide() is None
        assert autoscaler.tick() is None
        assert len(router.live_workers) == 2


def test_autoscaler_rejects_inverted_thresholds():
    with make_router(1) as router:
        with pytest.raises(ValueError):
            Autoscaler(router, scale_up_at=1.0, scale_down_at=2.0)


# ------------------------------------------------------------ fault injection
def test_plan_kill_is_seed_reproducible():
    workers = {"worker-00", "worker-01", "worker-02"}
    plans = [FaultInjector(seed=7).plan_kill(workers) for _ in range(3)]
    assert len(set(plans)) == 1  # same seed, same schedule, every time
    other = FaultInjector(seed=8).plan_kill(workers)
    assert isinstance(other[0], str) and 1 <= other[1] <= 5


def test_torn_migration_costs_at_most_one_entry(tmp_path, mixed_specs):
    reference = reference_fingerprint(mixed_specs)
    injector = FaultInjector(seed=5)
    with make_router(
        2, cache_dir=str(tmp_path), faults=injector
    ) as router:
        router.submit_specs(mixed_specs)
        injector.torn_migration()
        router.add_worker()
        torn = [e for e in injector.log if e["fault"] == "torn_migration"]
        assert len(torn) == 1
        # The torn trailing line is skipped by the loader: results stay
        # bit-identical, and at most one entry needs recomputation.
        assert fingerprint(router.submit_specs(mixed_specs)) == reference


def test_hang_ping_does_not_kill_a_live_worker(tmp_path):
    injector = FaultInjector(seed=2)
    with make_router(
        2, worker_decorator=injector.wrap, faults=injector
    ) as router:
        victim = sorted(router.live_workers)[0]
        injector.hang_ping(victim, 0.2)
        started = time.monotonic()
        alive = router.check_health()
        assert time.monotonic() - started >= 0.2  # the stall really happened
        assert alive[victim] is True  # gray failure, not a death
        assert victim in router.live_workers
        assert any(entry["fault"] == "hang_ping" for entry in injector.log)
