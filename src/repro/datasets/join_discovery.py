"""Join discovery dataset (NextiaJD style, Appendix D / Figure 5).

The benchmark labels pairs of columns (drawn from different tables) as
joinable or not.  Joinability comes in two flavours:

* **value-overlap joins** — the two columns literally share values
  (``city`` <-> ``city_name``), which embedding baselines such as WarpGate can
  detect;
* **semantic joins** — the columns are linked through an equivalence the LLM
  knows (``country`` <-> ISO-3 code, ``state`` <-> abbreviation), which is
  where UniDM's knowledge-driven pipeline gains over pure embeddings
  (Figure 5's gap).

Non-joinable pairs mix unrelated columns and *near-miss* columns of the same
type but disjoint vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tasks.join_discovery import CONTAINS_ATTR, JoinDiscoveryTask
from ..core.types import TaskType
from ..datalake.schema import Attribute, Schema
from ..datalake.table import Table
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder
from .transformation import COUNTRY_ISO3, US_STATE_ABBREV

_CITIES = [
    "madrid", "lisbon", "vienna", "prague", "dublin", "helsinki", "warsaw",
    "athens", "oslo", "zurich", "brussels", "budapest", "copenhagen", "rome",
]
_PRODUCTS = [
    "laptop", "monitor", "keyboard", "printer", "router", "webcam", "tablet",
    "speaker", "mouse", "headset", "charger", "projector",
]
_DEPARTMENTS = [
    "engineering", "marketing", "finance", "operations", "legal", "research",
    "support", "design",
]
_COLORS = ["red", "blue", "green", "amber", "violet", "teal", "ivory", "slate"]


@dataclass(frozen=True)
class ColumnPair:
    """One labelled candidate pair for join discovery."""

    table_a: str
    column_a: str
    table_b: str
    column_b: str
    joinable: bool
    kind: str  # "overlap" | "semantic" | "negative"


class NextiaJDDataset(DatasetBuilder):
    """Synthetic NextiaJD-style join discovery benchmark."""

    name = "nextiajd"
    task_type = TaskType.JOIN_DISCOVERY

    def __init__(
        self,
        seed: int = 0,
        n_pairs: int = 120,
        positive_fraction: float = 0.5,
        semantic_fraction: float = 0.5,
        rows_per_table: int = 12,
    ):
        super().__init__(seed)
        self.n_pairs = n_pairs
        self.positive_fraction = positive_fraction
        self.semantic_fraction = semantic_fraction
        self.rows_per_table = rows_per_table

    # -- table builders -----------------------------------------------------------
    def _two_column_table(
        self, name: str, col_a: str, col_b: str, rows: list[tuple[str, str]]
    ) -> Table:
        schema = Schema([Attribute(col_a, primary_key=True), Attribute(col_b)])
        return Table(name, schema, [{col_a: a, col_b: b} for a, b in rows])

    def _build_tables(self, knowledge: WorldKnowledge) -> dict[str, Table]:
        tables: dict[str, Table] = {}

        countries = self.sample(sorted(COUNTRY_ISO3), self.rows_per_table)
        tables["fifa_ranking"] = self._two_column_table(
            "fifa_ranking",
            "country_full",
            "country_abrv",
            [(c.title(), COUNTRY_ISO3[c]) for c in countries],
        )
        other_countries = self.sample(sorted(COUNTRY_ISO3), self.rows_per_table)
        tables["countries_and_continents"] = self._two_column_table(
            "countries_and_continents",
            "name",
            "ISO",
            [(c.title(), COUNTRY_ISO3[c]) for c in other_countries],
        )

        states = self.sample(sorted(US_STATE_ABBREV), min(self.rows_per_table, len(US_STATE_ABBREV)))
        tables["us_census"] = self._two_column_table(
            "us_census",
            "state_name",
            "state_code",
            [(s.title(), US_STATE_ABBREV[s]) for s in states],
        )
        tables["weather_stations"] = self._two_column_table(
            "weather_stations",
            "station_city",
            "state",
            [(self.choice(_CITIES).title(), US_STATE_ABBREV[s]) for s in states],
        )

        cities_a = self.sample(_CITIES, self.rows_per_table)
        cities_b = self.sample(_CITIES, self.rows_per_table)
        tables["airports"] = self._two_column_table(
            "airports", "city", "iata", [(c.title(), c[:3].upper()) for c in cities_a]
        )
        tables["hotels"] = self._two_column_table(
            "hotels", "city_name", "stars", [(c.title(), str(int(self.rng.integers(1, 6)))) for c in cities_b]
        )

        tables["inventory"] = self._two_column_table(
            "inventory",
            "product",
            "quantity",
            [(p, str(int(self.rng.integers(1, 500)))) for p in self.sample(_PRODUCTS, self.rows_per_table)],
        )
        tables["orders"] = self._two_column_table(
            "orders",
            "item_name",
            "order_id",
            [(p, f"o{int(self.rng.integers(1000, 9999))}") for p in self.sample(_PRODUCTS, self.rows_per_table)],
        )
        tables["staff"] = self._two_column_table(
            "staff",
            "department",
            "headcount",
            [(d, str(int(self.rng.integers(3, 80)))) for d in _DEPARTMENTS],
        )
        tables["palette"] = self._two_column_table(
            "palette",
            "color",
            "hex",
            [(c, f"#{int(self.rng.integers(0, 0xFFFFFF)):06x}") for c in _COLORS],
        )

        # Relation templates: abbreviation-style columns read naturally as
        # '"Germany" is abbreviated as "GER"', which is the evidence the final
        # prompt needs (Figure 4).
        for abbr_col in ("country_abrv", "ISO", "state_code", "state", "iata"):
            knowledge.set_relation_template(
                abbr_col, "{subject} is abbreviated as {value}"
            )
        knowledge.set_relation_template(
            CONTAINS_ATTR, 'Column "{subject}" contains {value}'
        )
        # Equivalences the LLM "knows" from pre-training.
        for country, iso in COUNTRY_ISO3.items():
            knowledge.add_equivalence(country, iso)
            knowledge.add_equivalence(country.title(), iso)
        for state, code in US_STATE_ABBREV.items():
            knowledge.add_equivalence(state, code)
            knowledge.add_equivalence(state.title(), code)
        return tables

    # -- pair construction -----------------------------------------------------------
    def _candidate_pairs(self) -> tuple[list[ColumnPair], list[ColumnPair]]:
        semantic_positive = [
            ColumnPair("fifa_ranking", "country_abrv", "countries_and_continents", "ISO", True, "semantic"),
            ColumnPair("fifa_ranking", "country_full", "countries_and_continents", "ISO", True, "semantic"),
            ColumnPair("us_census", "state_name", "weather_stations", "state", True, "semantic"),
            ColumnPair("us_census", "state_code", "weather_stations", "state", True, "overlap"),
            ColumnPair("fifa_ranking", "country_full", "countries_and_continents", "name", True, "overlap"),
            ColumnPair("airports", "city", "hotels", "city_name", True, "overlap"),
            ColumnPair("inventory", "product", "orders", "item_name", True, "overlap"),
        ]
        negative = [
            ColumnPair("fifa_ranking", "country_abrv", "palette", "color", False, "negative"),
            ColumnPair("airports", "iata", "orders", "order_id", False, "negative"),
            ColumnPair("inventory", "quantity", "hotels", "stars", False, "negative"),
            ColumnPair("staff", "department", "inventory", "product", False, "negative"),
            ColumnPair("palette", "hex", "orders", "order_id", False, "negative"),
            ColumnPair("us_census", "state_name", "palette", "color", False, "negative"),
            ColumnPair("airports", "city", "staff", "department", False, "negative"),
            ColumnPair("hotels", "stars", "staff", "headcount", False, "negative"),
        ]
        return semantic_positive, negative

    def build(self) -> BenchmarkDataset:
        knowledge = WorldKnowledge()
        tables = self._build_tables(knowledge)
        positives, negatives = self._candidate_pairs()

        n_pos = int(round(self.n_pairs * self.positive_fraction))
        n_neg = self.n_pairs - n_pos
        chosen: list[ColumnPair] = []
        for i in range(n_pos):
            chosen.append(positives[i % len(positives)])
        for i in range(n_neg):
            chosen.append(negatives[i % len(negatives)])
        chosen = self.shuffled(chosen)

        tasks: list[JoinDiscoveryTask] = []
        ground_truth: list[bool] = []
        for index, pair in enumerate(chosen):
            tasks.append(
                JoinDiscoveryTask(
                    tables[pair.table_a],
                    pair.column_a,
                    tables[pair.table_b],
                    pair.column_b,
                    seed=self.seed * 10_000 + index,
                )
            )
            ground_truth.append(pair.joinable)

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables=tables,
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"pairs": chosen},
        )
