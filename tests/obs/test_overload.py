"""Overload behavior: admission control sheds, recovers, and stays consistent.

The satellite acceptance scenario: a service (and a cluster router) under
``max_queue_depth=1`` answers excess load with a valid v2 ``overloaded``
error envelope (retry-after hint), goes back to serving once the queue
drains, and its metrics counters stay consistent under concurrent load
(admitted + shed == submitted).  Priorities are honored at dequeue.
"""

import threading
import time

import pytest

from repro.api import Client, TransformationSpec, encode_request
from repro.api.protocol import decode_response
from repro.core import UniDM, UniDMConfig
from repro.llm import CachedLLM, LanguageModel, SimulatedLLM
from repro.obs import AdmissionController, MetricsRegistry, PriorityLock
from repro.cluster.router import Router
from repro.cluster.workers import ThreadWorker
from repro.serving.service import ServingService

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


class SlowLLM(LanguageModel):
    """A simulated backend with a fixed per-call delay (forces queueing)."""

    def __init__(self, delay: float = 0.05, seed: int = 0):
        inner = SimulatedLLM(seed=seed)
        super().__init__(tokenizer=inner.tokenizer)
        self.inner = inner
        self.delay = delay
        self.name = f"slow({inner.name})"

    def _complete_text(self, prompt: str) -> str:
        time.sleep(self.delay)
        return self.inner._complete_text(prompt)


def make_service(registry=None, delay=0.05, **admission):
    registry = registry if registry is not None else MetricsRegistry()
    llm = CachedLLM(SlowLLM(delay=delay), metrics=registry)
    pipeline = UniDM(llm, UniDMConfig.full(seed=0))
    return ServingService(pipeline, metrics=registry, **admission)


# ------------------------------------------------------------------ controller
def test_admission_controller_capacity_semantics():
    controller = AdmissionController(
        max_inflight=2, max_queue_depth=1, metrics=MetricsRegistry()
    )
    assert controller.capacity == 3
    assert controller.try_acquire(3)
    assert not controller.try_acquire(1)
    controller.release(2)
    assert controller.try_acquire(2)
    assert controller.pending == 3


def test_admission_controller_unbounded_by_default():
    controller = AdmissionController(metrics=MetricsRegistry())
    assert controller.capacity is None
    assert controller.try_acquire(10_000)


def test_oversized_batch_is_admitted_when_idle():
    # A batch larger than the whole capacity must not be shed forever: with
    # nothing pending it is admitted (the bound is on concurrent work).
    controller = AdmissionController(max_queue_depth=2, metrics=MetricsRegistry())
    assert controller.try_acquire(10)
    assert not controller.try_acquire(1)  # saturated while it runs
    controller.release(10)
    assert controller.try_acquire(1)


def test_service_serves_oversized_batch_instead_of_starving():
    service = make_service(delay=0.0, max_inflight=1, max_queue_depth=1)
    requests = [encode_request(SPEC, request_id=i) for i in range(5)]
    responses = service.handle_batch(requests)
    assert all(response["ok"] for response in responses)


def test_admission_controller_context_manager_releases():
    registry = MetricsRegistry()
    controller = AdmissionController(max_queue_depth=1, metrics=registry)
    with controller.admitted(1) as ok:
        assert ok
        with controller.admitted(1) as nested:
            assert not nested
    assert controller.pending == 0
    assert registry.counter("admission.admitted").value == 1
    assert registry.counter("admission.shed").value == 1


def test_admission_controller_rejects_bad_knobs():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=-1)
    with pytest.raises(ValueError):
        AdmissionController(retry_after=-0.1)


# --------------------------------------------------------------- service shed
def test_service_sheds_with_valid_v2_envelope_and_recovers():
    registry = MetricsRegistry()
    service = make_service(registry, delay=0.05, max_queue_depth=1)
    n_threads = 6
    responses = {}

    def call(index):
        responses[index] = service.handle_batch(
            [encode_request(SPEC, request_id=index)]
        )[0]

    threads = [threading.Thread(target=call, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    shed = [r for r in responses.values() if not r["ok"]]
    served = [r for r in responses.values() if r["ok"]]
    assert served, "at least one request must be admitted"
    assert shed, "bounded queue under concurrent load must shed something"
    for response in shed:
        # A valid v2 error envelope with the structured overloaded error.
        assert response["v"] == 2
        assert response["ok"] is False
        assert response["error"]["code"] == "overloaded"
        assert response["error"]["retry_after"] > 0
        # The controller's state at shed time rides along for observability.
        details = response["error"]["details"]
        assert details["capacity"] == 1
        assert details["pending"] >= 1
        assert details["inflight"] >= 0 and details["queue_depth"] >= 0
        assert details["inflight"] + details["queue_depth"] == details["pending"]
        result = decode_response(response)
        assert result.error is not None and result.error.code == "overloaded"
        assert result.error.details == details

    # Recovery: after the queue drains, the same request is served again.
    recovered = service.handle_batch([encode_request(SPEC, request_id=99)])[0]
    assert recovered["ok"] is True

    # Counter consistency: every submitted spec was either admitted or shed,
    # and every admitted spec executed exactly one engine task.
    counters = registry.snapshot()["counters"]
    admitted = counters.get("service.admission.admitted", 0)
    shed_count = counters.get("service.admission.shed", 0)
    assert admitted + shed_count == n_threads + 1
    engine_tasks = sum(
        value for name, value in counters.items() if name.startswith("engine.tasks.")
    )
    assert engine_tasks == admitted == len(served) + 1
    assert counters["service.requests"] == n_threads + 1
    assert service.admission.pending == 0


def test_stats_requests_are_answered_even_when_saturated():
    registry = MetricsRegistry()
    service = make_service(registry, delay=0.2, max_queue_depth=1)
    started = threading.Event()

    def saturate():
        started.set()
        service.handle_batch([encode_request(SPEC, request_id=0)])

    thread = threading.Thread(target=saturate)
    thread.start()
    started.wait(5)
    time.sleep(0.05)  # let the batch reach the engine
    # A stats request bypasses admission and the batch lock entirely.
    response = service.handle_batch(
        [{"v": 2, "id": 1, "task": {"type": "stats"}}]
    )[0]
    assert response["ok"] is True
    assert "metrics" in response["result"]["answer"]
    thread.join()


# ---------------------------------------------------------------- router shed
def test_router_sheds_and_recovers_under_bounded_queue():
    def llm_factory(index):
        return SlowLLM(delay=0.05, seed=0)

    with Router.local(
        2, llm_factory=llm_factory, max_queue_depth=1
    ) as router:
        n_threads = 6
        outcomes = {}

        def call(index):
            outcomes[index] = router.submit_specs([SPEC])[0]

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        shed = [r for r in outcomes.values() if r.error is not None]
        served = [r for r in outcomes.values() if r.error is None]
        assert served and shed
        for result in shed:
            assert result.error.code == "overloaded"
            assert result.error.retry_after > 0
        # Recovery after drain.
        assert router.submit_specs([SPEC])[0].error is None
        assert router.admission.pending == 0
        assert router.requests_served == n_threads + 1


def test_cluster_client_surfaces_overloaded_error_code():
    from repro.api import OverloadedError, TransformationSpec

    def llm_factory(index):
        return SlowLLM(delay=0.1, seed=0)

    hold_specs = [
        TransformationSpec(value=f"1999041{i}", examples=[["20000101", "2000-01-01"]])
        for i in range(3)
    ]
    router = Router.local(1, llm_factory=llm_factory, max_queue_depth=1)
    with Client.cluster(router=router) as client:
        hold = threading.Thread(target=lambda: client.submit_many(hold_specs))
        hold.start()
        # Wait until the hold batch actually occupies admission capacity.
        deadline = time.monotonic() + 5.0
        while router.admission.pending == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert router.admission.pending > 0, "hold batch never got admitted"
        try:
            outcomes = [client.submit_many([SPEC]) for _ in range(3)]
        finally:
            hold.join()
        flat = [r for batch in outcomes for r in batch]
        errors = [r.error for r in flat if r.error is not None]
        assert errors, "submissions against a saturated router must shed"
        assert all(e.code == "overloaded" for e in errors)
        shed_result = next(r for r in flat if r.error is not None)
        with pytest.raises(OverloadedError) as excinfo:
            shed_result.unwrap()
        assert excinfo.value.retry_after > 0


# ------------------------------------------------------------------ priorities
def test_priority_lock_orders_waiters_by_priority_then_fifo():
    lock = PriorityLock()
    order = []
    lock.acquire()

    def waiter(priority, tag):
        lock.acquire(priority=priority)
        order.append(tag)
        lock.release()

    threads = []
    for priority, tag in [(0, "low-1"), (0, "low-2"), (5, "high"), (2, "mid")]:
        thread = threading.Thread(target=waiter, args=(priority, tag))
        thread.start()
        threads.append(thread)
        time.sleep(0.05)  # deterministic arrival order
    lock.release()
    for thread in threads:
        thread.join()
    assert order == ["high", "mid", "low-1", "low-2"]


def test_priority_lock_release_requires_holder():
    with pytest.raises(RuntimeError):
        PriorityLock().release()


def test_thread_worker_dequeues_highest_priority_first():
    hold = threading.Event()
    processing = threading.Event()

    class Stub:
        def __init__(self):
            self.order = []

        def handle_batch(self, requests):
            tag = requests[0]["tag"]
            if tag == "first":
                processing.set()
                hold.wait(5)
            self.order.append(tag)
            return [{"tag": tag}]

    stub = Stub()
    worker = ThreadWorker("w", stub, queue_depth=8, metrics=MetricsRegistry())
    try:
        threads = [
            threading.Thread(
                target=worker.submit, args=([{"tag": "first"}],), kwargs={"priority": 0}
            )
        ]
        threads[0].start()
        assert processing.wait(5)  # "first" is busy; the queue now backs up
        for tag, priority in [("low", 0), ("high", 5)]:
            thread = threading.Thread(
                target=worker.submit, args=([{"tag": tag}],), kwargs={"priority": priority}
            )
            thread.start()
            threads.append(thread)
            time.sleep(0.05)
        hold.set()
        for thread in threads:
            thread.join()
        assert stub.order == ["first", "high", "low"]
    finally:
        hold.set()
        worker.close()
