"""String transformation operators and by-example program search."""

from .operators import OPERATOR_LIBRARY, OPERATORS_BY_NAME, TransformOperator
from .search import ProgramSearcher, SearchResult, TransformProgram, infer_program

__all__ = [
    "OPERATOR_LIBRARY",
    "OPERATORS_BY_NAME",
    "ProgramSearcher",
    "SearchResult",
    "TransformOperator",
    "TransformProgram",
    "infer_program",
]
