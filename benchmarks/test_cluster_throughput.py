"""Benchmark: sharded cluster throughput vs a single worker.

The cluster acceptance claim: on a mixed-spec workload against a
latency-bearing backend (one round-trip per ``complete_batch`` call, as for
a remote completion API), routing across 4 workers — each with its own
engine, micro-batcher and cache shard — must deliver at least 2x the
throughput of the same stack with 1 worker.  Each worker batches its own
shard's prompts and its round-trips overlap with every other worker's,
which is exactly the parallelism a single engine (one batcher, one backend
connection) cannot express.

Bit-parity across worker counts is enforced separately under the
deterministic regime in ``tests/cluster/test_parity.py``; this benchmark
measures wall-clock only.  Results land in ``BENCH_cluster.json``.
"""

import time

from conftest import run_once
from report import write_bench

from repro.api import (
    Client,
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ImputationSpec,
    TransformationSpec,
)
from repro.datasets import load_dataset
from repro.llm import LanguageModel, SimulatedLLM

#: Simulated network round-trip cost of one batched LLM call.
LATENCY = 0.020
N_WORKERS = 4


class LatencyLLM(LanguageModel):
    """A fixed per-round-trip latency in front of a simulated backend."""

    def __init__(self, inner: SimulatedLLM, latency: float):
        super().__init__(tokenizer=inner.tokenizer)
        self.inner = inner
        self.latency = latency
        self.name = f"latency({inner.name})"
        self.round_trips = 0

    def _complete_text(self, prompt: str) -> str:
        self.round_trips += 1
        time.sleep(self.latency)
        return self.inner._complete_text(prompt)

    def complete_batch(self, prompts, kind="other"):
        self.round_trips += 1
        time.sleep(self.latency)
        return [
            self._record(prompt, self.inner._complete_text(prompt), kind)
            for prompt in prompts
        ]


def _mixed_workload():
    """Mixed specs over the Restaurant benchmark: all shards get real work."""
    dataset = load_dataset("restaurant", seed=0, n_records=32, n_tasks=16)
    rows = dataset.table.to_dicts()
    specs = []
    for task in dataset.tasks:  # 16 imputation specs (masked city)
        specs.append(
            ImputationSpec(
                rows=rows, target=task.record.to_dict(), attribute=task.attribute
            )
        )
    for index, row in enumerate(rows[:16]):  # 16 phone-format transformations
        specs.append(
            TransformationSpec(
                value=str(row["phone"]),
                examples=[["212-555-0199", "(212) 555 0199"]],
                name=f"phone-{index}",
            )
        )
    for row in rows[:8]:  # 8 self-pair resolutions
        variant = dict(row)
        variant["name"] = str(row["name"]).upper()
        specs.append(EntityResolutionSpec(record_a=row, record_b=variant))
    for row in rows[8:16]:  # 8 error-detection probes
        specs.append(
            ErrorDetectionSpec(rows=rows, target=row, attribute="phone")
        )
    return dataset, specs


def _run_cluster(n_workers: int, dataset, specs):
    """One cold cluster run; returns (elapsed, results, stats, round_trips)."""
    backends = []

    def llm_factory(index: int) -> LatencyLLM:
        backend = LatencyLLM(
            SimulatedLLM(knowledge=dataset.knowledge, seed=0), LATENCY
        )
        backends.append(backend)
        return backend

    with Client.cluster(
        workers=n_workers, llm_factory=llm_factory, batch_size=8
    ) as client:
        started = time.perf_counter()
        results = client.submit_many(specs)
        elapsed = time.perf_counter() - started
        stats = client.router.stats()
    return elapsed, results, stats, sum(b.round_trips for b in backends)


def test_four_workers_double_throughput_over_one(benchmark):
    dataset, specs = _mixed_workload()

    t_single, single_results, _, single_trips = _run_cluster(1, dataset, specs)
    assert all(result.error is None for result in single_results)

    t_cluster = None

    def sharded():
        nonlocal t_cluster
        elapsed, results, stats, trips = _run_cluster(N_WORKERS, dataset, specs)
        t_cluster = (elapsed, results, stats, trips)
        return results

    run_once(benchmark, sharded)
    elapsed, cluster_results, stats, cluster_trips = t_cluster

    assert all(result.error is None for result in cluster_results)
    assert len(cluster_results) == len(single_results) == len(specs)
    busy_workers = [row for row in stats.workers if row.routed]
    assert len(busy_workers) >= 3, "workload failed to spread over the shards"

    throughput_single = len(specs) / t_single
    throughput_cluster = len(specs) / elapsed
    speedup = throughput_cluster / throughput_single
    # The acceptance claim: >= 2x throughput with 4 workers vs 1.
    assert speedup >= 2.0, (
        f"{N_WORKERS} workers: {throughput_cluster:.1f} specs/s vs "
        f"1 worker: {throughput_single:.1f} specs/s (speedup {speedup:.2f}x)"
    )

    payload = {
        "workload": {
            "specs": len(specs),
            "mix": {
                "imputation": 16,
                "transformation": 16,
                "entity_resolution": 8,
                "error_detection": 8,
            },
            "backend_latency_s": LATENCY,
        },
        "single_worker": {
            "elapsed_s": round(t_single, 4),
            "specs_per_s": round(throughput_single, 2),
            "llm_round_trips": single_trips,
        },
        "cluster": {
            "workers": N_WORKERS,
            "elapsed_s": round(elapsed, 4),
            "specs_per_s": round(throughput_cluster, 2),
            "llm_round_trips": cluster_trips,
            "routed_per_worker": {
                row.worker_id: row.routed for row in stats.workers
            },
        },
        "speedup": round(speedup, 3),
    }
    write_bench("cluster", payload)


def test_scale_up_under_load_migrates_minimally(benchmark, tmp_path):
    """Elastic arm: live 2 -> 4 resize mid-benchmark, zero failed requests.

    A warmed 2-worker cluster keeps serving the mixed workload while two
    workers join one after the other.  The gates (``scripts/check_bench.py``):

    * ``elastic.resize_error_rate`` == 0 — no request fails across resizes;
    * ``elastic.migration_fraction`` <= 0.6 — the *average per-resize*
      fraction of cache entries that relocated.  Consistent hashing moves
      ~1/(N+1) per join (~0.29 averaged over 2->3->4); a naive mod-N
      resharding would move ~0.7 and trip the cap.
    """
    import threading

    dataset, specs = _mixed_workload()

    def llm_factory(index: int) -> LatencyLLM:
        return LatencyLLM(
            SimulatedLLM(knowledge=dataset.knowledge, seed=0), LATENCY
        )

    outcome = {}

    def elastic_run():
        with Client.cluster(
            workers=2,
            llm_factory=llm_factory,
            batch_size=8,
            cache_dir=str(tmp_path / "shards"),
        ) as client:
            client.submit_many(specs)  # warm every shard
            entries_before = sum(
                row.cache_entries
                for row in client.router.stats().workers
                if row.cache_entries > 0
            )
            results: list = []
            stop = threading.Event()

            def pound() -> None:
                while not stop.is_set():
                    results.extend(client.submit_many(specs))

            load = threading.Thread(target=pound)
            started = time.perf_counter()
            load.start()
            try:
                for _ in range(2):  # 2 -> 3 -> 4, requests in flight
                    client.router.add_worker()
            finally:
                stop.set()
                load.join(timeout=120)
            elapsed = time.perf_counter() - started
            assert not load.is_alive()
            stats = client.router.stats()
            outcome.update(
                elapsed=elapsed,
                entries_before=entries_before,
                results=results,
                stats=stats,
                workers=client.workers(),
            )
        return results

    run_once(benchmark, elastic_run)

    stats = outcome["stats"]
    results = outcome["results"]
    assert results, "the load thread never completed a batch"
    errors = [r for r in results if r.error is not None]
    resize_error_rate = len(errors) / len(results)
    assert resize_error_rate == 0.0, f"{len(errors)} requests failed mid-resize"
    assert stats.resizes == 2
    assert outcome["workers"] == (4, 4)
    migration_fraction = (
        stats.migrations / (stats.resizes * outcome["entries_before"])
        if outcome["entries_before"]
        else 0.0
    )
    assert 0.0 < migration_fraction <= 0.6

    from report import load_bench

    payload = load_bench("cluster")
    payload["elastic"] = {
        "workers_before": 2,
        "workers_after": 4,
        "elapsed_s": round(outcome["elapsed"], 4),
        "requests_during_resize": len(results),
        "resize_error_rate": resize_error_rate,
        "entries_before": outcome["entries_before"],
        "entries_migrated": stats.migrations,
        "migration_fraction": round(migration_fraction, 4),
    }
    write_bench("cluster", payload)
