"""Data lake substrate: schemas, tables, records, lakes, IO and text utilities."""

from .lake import DataLake
from .schema import Attribute, AttributeType, Schema
from .table import MISSING_VALUES, Record, Table, is_missing
from .sampling import (
    make_rng,
    sample_items,
    sample_records,
    split_table,
    train_test_split_indices,
)
from .io import (
    lake_from_directory,
    lake_to_directory,
    table_from_csv,
    table_from_json,
    table_to_csv,
    table_to_json,
)
from . import text

__all__ = [
    "Attribute",
    "AttributeType",
    "DataLake",
    "MISSING_VALUES",
    "Record",
    "Schema",
    "Table",
    "is_missing",
    "lake_from_directory",
    "lake_to_directory",
    "make_rng",
    "sample_items",
    "sample_records",
    "split_table",
    "table_from_csv",
    "table_from_json",
    "table_to_csv",
    "table_to_json",
    "text",
    "train_test_split_indices",
]
