"""Error detection benchmarks: Hospital and Adult (HoloClean / HoloDetect).

Both datasets start from a clean synthetic table, register each attribute's
clean value domain in the knowledge store (the "domain knowledge" an LLM or a
rule system could consult), then corrupt 5% of the cells with realistic typos
(the paper's error rate).  A task instance asks whether one specific cell is
erroneous; ground truth is the injection record.
"""

from __future__ import annotations

from ..core.tasks.error_detection import ErrorDetectionTask
from ..core.types import TaskType
from ..datalake.schema import Attribute, AttributeType, Schema
from ..datalake.table import Table
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder
from .corruption import inject_errors

# --------------------------------------------------------------------------
# Hospital
# --------------------------------------------------------------------------

_HOSPITAL_CITIES = [
    ("birmingham", "al", "jefferson"),
    ("sheffield", "al", "colbert"),
    ("boaz", "al", "marshall"),
    ("dothan", "al", "houston"),
    ("florence", "al", "lauderdale"),
    ("huntsville", "al", "madison"),
    ("mobile", "al", "mobile"),
    ("montgomery", "al", "montgomery"),
    ("tuscaloosa", "al", "tuscaloosa"),
    ("gadsden", "al", "etowah"),
]

_HOSPITAL_NAMES = [
    "regional medical center", "community hospital", "baptist medical center",
    "memorial hospital", "general hospital", "health center",
]

_MEASURES = [
    ("AMI-1", "aspirin at arrival"),
    ("AMI-2", "aspirin prescribed at discharge"),
    ("HF-1", "discharge instructions"),
    ("HF-2", "evaluation of lvs function"),
    ("PN-2", "pneumococcal vaccination"),
    ("SCIP-INF-1", "prophylactic antibiotic received within one hour"),
]


class HospitalDataset(DatasetBuilder):
    """Synthetic counterpart of the Hospital data-cleaning benchmark."""

    name = "hospital"
    task_type = TaskType.ERROR_DETECTION

    #: Attributes that receive injected errors and are checked by tasks.
    checked_attributes = ("city", "county", "hospital_name", "measure_name")

    def __init__(self, seed: int = 0, n_records: int = 120, error_rate: float = 0.05):
        super().__init__(seed)
        self.n_records = n_records
        self.error_rate = error_rate

    def build(self) -> BenchmarkDataset:
        schema = Schema(
            [
                Attribute("provider_number", AttributeType.IDENTIFIER, primary_key=True),
                Attribute("hospital_name", domain="healthcare"),
                Attribute("address", domain="healthcare.address"),
                Attribute("city", AttributeType.CATEGORICAL, domain="geography.city"),
                Attribute("state", AttributeType.CATEGORICAL, domain="geography.state"),
                Attribute("zip", AttributeType.IDENTIFIER),
                Attribute("county", AttributeType.CATEGORICAL, domain="geography.county"),
                Attribute("phone", domain="healthcare.phone"),
                Attribute("measure_code", AttributeType.CATEGORICAL),
                Attribute("measure_name", AttributeType.CATEGORICAL, domain="healthcare.measure"),
            ]
        )
        table = Table("hospital", schema, description="CMS hospital quality measures")
        knowledge = WorldKnowledge()
        self._register_templates(knowledge)

        for index in range(self.n_records):
            city, state, county = self.choice(_HOSPITAL_CITIES)
            hospital = f"{city} {self.choice(_HOSPITAL_NAMES)}"
            measure_code, measure_name = self.choice(_MEASURES)
            table.append(
                {
                    "provider_number": f"1{index:04d}",
                    "hospital_name": hospital,
                    "address": f"{int(self.rng.integers(100, 9999))} u s highway "
                    f"{int(self.rng.integers(1, 500))} north",
                    "city": city,
                    "state": state,
                    "zip": f"35{int(self.rng.integers(100, 999)):03d}",
                    "county": county,
                    "phone": f"256{int(self.rng.integers(1000000, 9999999))}",
                    "measure_code": measure_code,
                    "measure_name": measure_name,
                }
            )

        # Register the clean domains BEFORE corrupting cells.
        for attribute in self.checked_attributes:
            knowledge.add_domain_values(attribute, [str(v) for v in table.distinct(attribute)])

        errors = inject_errors(table, self.checked_attributes, self.error_rate, self.rng)
        error_cells = {(e.record_index, e.attribute) for e in errors}

        tasks: list[ErrorDetectionTask] = []
        ground_truth: list[bool] = []
        records = table.records
        for record_index, record in enumerate(records):
            for attribute in self.checked_attributes:
                tasks.append(ErrorDetectionTask(table, record, attribute))
                ground_truth.append((record_index, attribute) in error_cells)

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={table.name: table},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"errors": errors, "checked_attributes": self.checked_attributes},
        )

    @staticmethod
    def _register_templates(knowledge: WorldKnowledge) -> None:
        knowledge.set_relation_template("city", "{subject} is located in the city of {value}")
        knowledge.set_relation_template("county", "{subject} belongs to the county of {value}")
        knowledge.set_relation_template("measure_name", "{subject} reports the measure {value}")
        knowledge.add_attribute_link("city", "county", 0.85)
        knowledge.add_attribute_link("city", "zip", 0.60)
        knowledge.add_attribute_link("hospital_name", "city", 0.70)
        knowledge.add_attribute_link("measure_code", "measure_name", 0.90)


# --------------------------------------------------------------------------
# Adult
# --------------------------------------------------------------------------

_WORKCLASSES = ["private", "self-emp-not-inc", "self-emp-inc", "federal-gov", "local-gov", "state-gov"]
_EDUCATION = ["bachelors", "hs-grad", "11th", "masters", "some-college", "assoc-acdm", "doctorate"]
_MARITAL = ["married-civ-spouse", "divorced", "never-married", "separated", "widowed"]
_OCCUPATIONS = [
    "tech-support", "craft-repair", "sales", "exec-managerial", "prof-specialty",
    "handlers-cleaners", "machine-op-inspct", "adm-clerical", "farming-fishing",
]
#: Legitimate but rare categories; they appear only once or twice, which is
#: what trips purely frequency-based detectors (HoloClean) into false alarms.
_RARE_OCCUPATIONS = ["armed-forces", "priv-house-serv", "protective-serv"]
_RARE_WORKCLASSES = ["without-pay", "never-worked"]
_RACES = ["white", "black", "asian-pac-islander", "amer-indian-eskimo", "other"]
_SEXES = ["male", "female"]
_INCOME = ["<=50k", ">50k"]


class AdultDataset(DatasetBuilder):
    """Synthetic counterpart of the Adult (census) error-detection benchmark."""

    name = "adult"
    task_type = TaskType.ERROR_DETECTION

    checked_attributes = ("workclass", "education", "occupation", "marital_status")

    def __init__(self, seed: int = 0, n_records: int = 150, error_rate: float = 0.05):
        super().__init__(seed)
        self.n_records = n_records
        self.error_rate = error_rate

    def build(self) -> BenchmarkDataset:
        schema = Schema(
            [
                Attribute("record_id", AttributeType.IDENTIFIER, primary_key=True),
                Attribute("age", AttributeType.NUMERIC),
                Attribute("workclass", AttributeType.CATEGORICAL, domain="census"),
                Attribute("education", AttributeType.CATEGORICAL, domain="census"),
                Attribute("marital_status", AttributeType.CATEGORICAL, domain="census"),
                Attribute("occupation", AttributeType.CATEGORICAL, domain="census"),
                Attribute("race", AttributeType.CATEGORICAL, domain="census"),
                Attribute("sex", AttributeType.CATEGORICAL, domain="census"),
                Attribute("hours_per_week", AttributeType.NUMERIC),
                Attribute("income", AttributeType.CATEGORICAL, domain="census"),
            ]
        )
        table = Table("adult", schema, description="Census income records")
        knowledge = WorldKnowledge()
        knowledge.set_relation_template("occupation", "{subject} works as {value}")
        knowledge.set_relation_template("education", "{subject} holds a {value} education")
        knowledge.add_attribute_link("occupation", "education", 0.6)
        knowledge.add_attribute_link("workclass", "occupation", 0.6)
        knowledge.add_attribute_link("income", "education", 0.5)

        for index in range(self.n_records):
            occupation = (
                self.choice(_RARE_OCCUPATIONS)
                if self.rng.random() < 0.03
                else self.choice(_OCCUPATIONS)
            )
            workclass = (
                self.choice(_RARE_WORKCLASSES)
                if self.rng.random() < 0.02
                else self.choice(_WORKCLASSES)
            )
            table.append(
                {
                    "record_id": f"a{index:05d}",
                    "age": int(self.rng.integers(18, 80)),
                    "workclass": workclass,
                    "education": self.choice(_EDUCATION),
                    "marital_status": self.choice(_MARITAL),
                    "occupation": occupation,
                    "race": self.choice(_RACES),
                    "sex": self.choice(_SEXES),
                    "hours_per_week": int(self.rng.integers(10, 80)),
                    "income": self.choice(_INCOME),
                }
            )

        for attribute in self.checked_attributes:
            knowledge.add_domain_values(attribute, [str(v) for v in table.distinct(attribute)])
        # The paper notes the Adult result benefits from data-source information:
        # the full category vocabulary is public, so register it as well.
        knowledge.add_domain_values("workclass", _WORKCLASSES + _RARE_WORKCLASSES)
        knowledge.add_domain_values("education", _EDUCATION)
        knowledge.add_domain_values("occupation", _OCCUPATIONS + _RARE_OCCUPATIONS)
        knowledge.add_domain_values("marital_status", _MARITAL)

        errors = inject_errors(table, self.checked_attributes, self.error_rate, self.rng)
        error_cells = {(e.record_index, e.attribute) for e in errors}

        tasks: list[ErrorDetectionTask] = []
        ground_truth: list[bool] = []
        for record_index, record in enumerate(table.records):
            for attribute in self.checked_attributes:
                tasks.append(ErrorDetectionTask(table, record, attribute))
                ground_truth.append((record_index, attribute) in error_cells)

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={table.name: table},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=ground_truth,
            extra={"errors": errors, "checked_attributes": self.checked_attributes},
        )
