"""Property-based tests for metrics and the serialization round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialization import serialize_record
from repro.datalake import Attribute, Record, Schema
from repro.eval import accuracy, confusion, text_f1
from repro.llm.prompt_parser import parse_pairs

labels = st.lists(st.booleans(), min_size=1, max_size=50)


@given(labels)
@settings(max_examples=60)
def test_perfect_predictions_maximise_metrics(truth):
    assert accuracy(truth, truth) == 1.0
    matrix = confusion(truth, truth)
    assert matrix.fp == 0 and matrix.fn == 0
    if any(truth):
        assert matrix.f1 == 1.0


@given(labels, labels)
@settings(max_examples=60)
def test_confusion_counts_partition_the_examples(a, b):
    n = min(len(a), len(b))
    matrix = confusion(a[:n], b[:n])
    assert matrix.tp + matrix.fp + matrix.fn + matrix.tn == n
    assert 0.0 <= matrix.f1 <= 1.0
    assert 0.0 <= matrix.accuracy <= 1.0


@given(st.text(max_size=30), st.text(max_size=30))
@settings(max_examples=60)
def test_text_f1_bounded_and_symmetric_on_identity(a, b):
    score = text_f1(a, b)
    assert 0.0 <= score <= 1.0
    assert text_f1(a, a) == 1.0


# Values without the separator characters used by the pair syntax.
clean_values = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=0x7F),
    min_size=1,
    max_size=12,
)


@given(st.lists(clean_values, min_size=2, max_size=5, unique=True))
@settings(max_examples=50)
def test_serialize_then_parse_pairs_round_trip(values):
    from hypothesis import assume

    from repro.datalake import is_missing

    # Missing-value sentinels ("NA", "null", ...) are intentionally dropped by
    # serialization, so they are out of scope for the round-trip property.
    assume(not any(is_missing(v) for v in values))
    names = [f"attr{i}" for i in range(len(values))]
    schema = Schema([Attribute(n) for n in names])
    record = Record(schema, dict(zip(names, values)))
    serialized = serialize_record(record)
    parsed = dict(parse_pairs(serialized))
    for name, value in zip(names, values):
        assert parsed[name] == value
