"""Table 7 — per-query token consumption of FM vs UniDM.

UniDM's automation is paid for in tokens: instance-wise retrieval scores a
50-record candidate pool and the cloze-construction prompt carries the
demonstration bank, so a UniDM query costs an order of magnitude more tokens
than an FM query.  The experiment reports tokens per query on the imputation
benchmarks for FM, UniDM without retrieval, and full UniDM.
"""

from __future__ import annotations

from ..core.config import UniDMConfig
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_fm, make_unidm

PAPER_RESULTS: dict[str, dict[str, float]] = {
    "restaurant": {"FM": 174, "UniDM (w/o retrieval)": 325, "UniDM": 6860},
    "buy": {"FM": 246, "UniDM (w/o retrieval)": 384, "UniDM": 7323},
}

DATASETS = ("restaurant", "buy")


def methods_for(dataset, seed: int):
    return [
        ("FM", make_fm(dataset, "manual", seed=seed + 1, name="FM")),
        (
            "UniDM (w/o retrieval)",
            make_unidm(
                dataset,
                UniDMConfig.no_retrieval(seed=seed + 2),
                seed=seed + 2,
                name="UniDM (w/o retrieval)",
            ),
        ),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = 20) -> list[dict]:
    """Token accounting only needs a handful of queries, hence the small default."""
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        for method_name, method in methods_for(dataset, seed):
            result = evaluate(method, dataset, max_tasks=max_tasks)
            rows.append(
                {
                    "dataset": dataset_name,
                    "method": method_name,
                    "tokens_per_query": result.tokens_per_query,
                    "llm_calls_per_query": result.llm_calls / max(result.n_tasks, 1),
                    "paper": PAPER_RESULTS[dataset_name][method_name],
                }
            )
    return rows


def main(seed: int = 0, max_tasks: int | None = 20) -> str:
    table = format_table(
        run(seed=seed, max_tasks=max_tasks),
        columns=["dataset", "method", "tokens_per_query", "llm_calls_per_query", "paper"],
        title="Table 7 — Per-query token consumption",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
