"""Unit tests for Record and Table."""

import pytest

from repro.datalake import Record, Schema, Table, is_missing


def test_is_missing_values():
    assert is_missing(None)
    assert is_missing("")
    assert is_missing("?")
    assert is_missing("NaN")
    assert is_missing(float("nan"))
    assert not is_missing("value")
    assert not is_missing(0)


def test_record_from_mapping(city_schema):
    record = Record(city_schema, {"city": "Oslo", "country": "Norway"})
    assert record["city"] == "Oslo"
    assert record["population"] is None
    assert record.get("unknown", "x") == "x"


def test_record_from_sequence_length_check(city_schema):
    with pytest.raises(ValueError):
        Record(city_schema, ["only", "three", "values"])


def test_record_unknown_attribute_rejected(city_schema):
    with pytest.raises(KeyError):
        Record(city_schema, {"nope": 1})


def test_record_setitem_and_missing_attributes(city_schema):
    record = Record(city_schema, {"city": "Oslo"})
    record["country"] = "Norway"
    assert record["country"] == "Norway"
    assert "population" in record.missing_attributes()
    assert "country" not in record.missing_attributes()


def test_record_project_and_copy(city_schema):
    record = Record(city_schema, {"city": "Oslo", "country": "Norway"}, record_id=3)
    projected = record.project(["country"])
    assert projected.to_dict() == {"country": "Norway"}
    clone = record.copy()
    clone["city"] = "Bergen"
    assert record["city"] == "Oslo"
    assert clone.record_id == 3


def test_record_with_value_returns_new_record(city_schema):
    record = Record(city_schema, {"city": "Oslo"})
    updated = record.with_value("country", "Norway")
    assert updated["country"] == "Norway"
    assert record["country"] is None


def test_record_equality(city_schema):
    a = Record(city_schema, {"city": "Oslo"})
    b = Record(city_schema, {"city": "Oslo"})
    assert a == b
    assert hash(a) == hash(b)


def test_table_append_assigns_record_ids(city_table):
    ids = [record.record_id for record in city_table]
    assert ids == list(range(len(city_table)))


def test_table_column_and_distinct(city_table):
    countries = city_table.column("country")
    assert "Italy" in countries
    distinct = city_table.distinct("timezone")
    assert "Central European Time" in distinct
    assert None not in distinct  # missing dropped


def test_table_select_and_project(city_table):
    cet = city_table.select(lambda r: r["timezone"] == "Central European Time")
    assert len(cet) == 3
    projected = city_table.project(["city", "country"])
    assert projected.schema.names == ["city", "country"]
    assert len(projected) == len(city_table)


def test_table_head_and_copy_are_independent(city_table):
    head = city_table.head(2)
    assert len(head) == 2
    clone = city_table.copy()
    clone[0]["city"] = "CHANGED"
    assert city_table[0]["city"] != "CHANGED"


def test_table_missing_count(city_table):
    assert city_table.missing_count("timezone") == 1
    assert city_table.missing_count() >= 1


def test_table_value_counts_and_mode(city_table):
    counts = city_table.value_counts("timezone")
    assert counts["Central European Time"] == 3
    assert city_table.mode("timezone") == "Central European Time"
    assert Table("empty", city_table.schema).mode("timezone") is None


def test_table_from_dicts_infers_schema():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    table = Table.from_dicts("t", rows)
    assert table.schema.names == ["a", "b"]
    assert table.schema["a"].type.is_numeric()
    assert not table.schema["b"].type.is_numeric()


def test_table_append_coerces_foreign_record(city_table, city_schema):
    other_schema = Schema(list(city_schema.attributes))
    record = Record(other_schema, {"city": "Oslo", "country": "Norway"})
    appended = city_table.append(record)
    assert appended["city"] == "Oslo"


def test_table_requires_name(city_schema):
    with pytest.raises(ValueError):
        Table("", city_schema)


# -- partitioning and derived columns (the flow substrate) -----------------------
def test_partitions_chunk_rows_and_keep_record_ids(city_table):
    parts = list(city_table.partitions(4))
    assert [len(p) for p in parts] == [4, 2]
    assert [r.record_id for p in parts for r in p] == list(range(6))
    # Partition rows are copies: mutating one leaves the source intact.
    parts[0][0]["city"] = "CHANGED"
    assert city_table[0]["city"] != "CHANGED"
    with pytest.raises(ValueError):
        list(city_table.partitions(0))


def test_concat_restitches_partitions(city_table):
    parts = list(city_table.partitions(4))
    merged = Table.concat(parts)
    assert merged.to_dicts() == city_table.to_dicts()
    assert merged.name == city_table.name
    with pytest.raises(ValueError):
        Table.concat([])
    with pytest.raises(ValueError):
        Table.concat([city_table, city_table.project(["city"])])


def test_with_column_adds_replaces_and_validates(city_table):
    flagged = city_table.with_column("dirty", default=False)
    assert flagged.schema.names == city_table.schema.names + ["dirty"]
    assert flagged.column("dirty") == [False] * len(city_table)
    assert [r.record_id for r in flagged] == [r.record_id for r in city_table]

    replaced = flagged.with_column("dirty", values=[True] + [False] * 5)
    assert replaced.schema.names == flagged.schema.names  # replaced, not added
    assert replaced.column("dirty")[0] is True

    with pytest.raises(ValueError):
        city_table.with_column("dirty", values=[True])  # misaligned values
