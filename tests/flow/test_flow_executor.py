"""End-to-end execution of pipelines through local clients.

The deterministic backends here are pure functions of the prompt (no noise
stream), so the executor's structural choices — dedup, partitioning, wave
fusion — must not change any answer.
"""

import pytest

from repro.api import Client
from repro.datalake import Table
from repro.flow import (
    Ask,
    DetectErrors,
    Filter,
    FlowError,
    FlowExecutor,
    Impute,
    Join,
    Partition,
    Pipeline,
    Select,
    Transform,
)
from repro.llm.base import LanguageModel


class PromptHashLLM(LanguageModel):
    """Deterministic pure-function backend: the reply depends only on the prompt."""

    name = "prompt-hash"

    def _complete_text(self, prompt: str) -> str:
        if "Yes or No" in prompt:
            return "Yes" if len(prompt) % 2 else "No"
        return f"v{sum(ord(c) for c in prompt) % 97}"


@pytest.fixture
def client():
    with Client.local(llm=PromptHashLLM(), batch_size=4, workers=4) as c:
        yield c


@pytest.fixture
def table():
    # Duplicate rows on purpose: dedup must collapse their specs.
    rows = [
        {"name": "ada", "city": "rome", "phone": "06-1"},
        {"name": "bob", "city": None, "phone": "06-2"},
        {"name": "bob", "city": None, "phone": "06-2"},
        {"name": "cyd", "city": "pisa", "phone": "06-3"},
    ]
    return Table.from_dicts("shops", rows)


def test_multi_stage_pipeline_end_to_end(client, table):
    flow = Pipeline(
        [
            DetectErrors("phone"),
            Impute("city"),
            Transform("phone", examples=[["06-1", "+39 06 1"]], output_column="intl"),
        ]
    )
    result = flow.run(table, client=client)
    out = result.table
    assert out.schema.names == ["name", "city", "phone", "phone_error", "intl"]
    assert len(out) == 4
    # Every missing city was imputed, every phone transformed and flagged.
    assert all(v is not None for v in out.column("city"))
    assert all(v is not None for v in out.column("intl"))
    assert all(isinstance(v, bool) for v in out.column("phone_error"))
    # The duplicated rows must come out identical.
    assert out[1].to_dict() == out[2].to_dict()
    report = result.report
    assert report.rows_in == report.rows_out == 4
    assert report.specs > report.submitted  # dedup actually happened
    assert [s.op for s in report.stages] == ["detect_errors", "impute", "transform"]


def test_partitioned_run_matches_whole_table_run(client, table):
    stages = lambda: [  # noqa: E731 - tiny local factory
        Impute("city"),
        Transform("phone", examples=[["06-1", "+39 06 1"]], output_column="intl"),
    ]
    whole = Pipeline(stages()).run(table, client=client)
    parts = Pipeline(stages(), partition_size=2).run(table, client=client)
    # The backend is a pure function of the prompt and imputation evidence is
    # the partition, so values agree wherever the evidence agrees; shape and
    # metrics must be consistent regardless.
    assert parts.table.schema.names == whole.table.schema.names
    assert len(parts.table) == len(whole.table)
    assert parts.report.specs == whole.report.specs
    # Transform specs do not embed the partition, so they dedup across runs:
    assert parts.table.column("intl") == whole.table.column("intl")


def test_partition_marker_changes_chunking_mid_pipeline(client, table):
    flow = Pipeline(
        [
            Transform("phone", examples=[["06-1", "+39 06 1"]], output_column="intl"),
            Partition(1),
            Impute("city"),
        ]
    )
    result = flow.run(table, client=client)
    impute_metrics = result.report.stages[2]
    # Partition(1): one chunk per row; the marker itself never executes.
    assert impute_metrics.partitions == 4
    assert result.report.stages[1].partitions == 0
    # Two identical single-row partitions -> identical imputation specs dedup.
    assert impute_metrics.items == 2
    assert impute_metrics.submitted == 1
    assert impute_metrics.reused == 1


def test_relational_stages_and_barriers_compose(client, table):
    regions = Table.from_dicts(
        "regions",
        [{"town": "rome", "region": "lazio"}, {"town": "pisa", "region": "tuscany"}],
    )
    flow = Pipeline(
        [
            Filter("city", "not_missing"),
            Join(regions, on="city", other_on="town"),
            Ask("how many shops?", name="n_shops"),
            Select(["name", "city", "region"]),
        ]
    )
    result = flow.run(table, client=client)
    assert result.table.schema.names == ["name", "city", "region"]
    assert len(result.table) == 2  # the two bob rows were filtered out
    assert "n_shops" in result.answers
    assert "join:city~regions.town" in result.answers
    if result.answers["join:city~regions.town"]:
        assert result.table.column("region") == ["lazio", "tuscany"]
    else:
        assert result.table.column("region") == [None, None]


def test_filter_can_empty_the_table_without_breaking_later_stages(client, table):
    flow = Pipeline(
        [
            Filter("name", "equals", value="nobody"),
            DetectErrors("phone"),
            Select(["name", "phone", "phone_error"]),
        ]
    )
    result = flow.run(table, client=client)
    assert len(result.table) == 0
    assert result.table.schema.names == ["name", "phone", "phone_error"]
    assert result.report.submitted == 0


def test_dedup_cache_spans_stages(client):
    # Two transform stages over columns with overlapping values: the shared
    # values must be submitted once, then reused across stages.
    table = Table.from_dicts(
        "t",
        [{"a": "x", "b": "x"}, {"a": "y", "b": "x"}],
    )
    examples = [["p", "P"]]
    flow = Pipeline(
        [
            Transform("a", examples=examples, output_column="a2"),
            Transform("b", examples=examples, output_column="b2"),
        ]
    )
    result = flow.run(table, client=client)
    assert result.report.specs == 4
    assert result.report.submitted == 2  # "x" and "y", once each
    assert result.report.reused == 2
    assert result.report.dedup_factor == 2.0
    # Same value -> same answer, wherever it sat.
    out = result.table
    assert out.column("a2")[0] == out.column("b2")[0] == out.column("b2")[1]


def test_failed_item_raises_flow_error_naming_the_stage(table):
    from repro.api.errors import ErrorInfo
    from repro.api.results import TaskResult

    def failing_backend(specs):
        return [
            TaskResult(answer=None, error=ErrorInfo(code="boom", message="backend down"))
            for _ in specs
        ]

    executor = FlowExecutor(failing_backend)
    with pytest.raises(FlowError, match=r"stage 0 \(impute\).*boom"):
        executor.run(Pipeline([Impute("city")]), table)


def test_backend_answer_count_mismatch_is_an_error(table):
    executor = FlowExecutor(lambda specs: [])
    with pytest.raises(FlowError, match="answered 0 results"):
        executor.run(Pipeline([Impute("city")]), table)


def test_pipeline_run_with_default_client_owns_and_closes_it(table):
    # No client passed: the pipeline assembles (and closes) a local stack.
    result = Pipeline([DetectErrors("phone")]).run(table.head(1), seed=0)
    assert result.table.column("phone_error") == [False] or result.table.column(
        "phone_error"
    ) == [True]


def test_validation_failure_happens_before_any_submission(client, table):
    calls = []

    def spy(specs):
        calls.append(specs)
        return client.submit_many(specs)

    executor = FlowExecutor(spy)
    with pytest.raises(FlowError):
        executor.run(Pipeline([Impute("zipcode")]), table)
    assert calls == []
