"""IMP baseline (Mei et al. 2021) — pre-trained-LM style semantic imputation.

IMP encodes records with a pre-trained language model and imputes a missing
cell from the most similar complete records.  Offline, the encoder is replaced
by hashed character n-gram embeddings of the serialized record; the rest of the
method (k-nearest-neighbour retrieval + similarity-weighted vote over the
target attribute) follows the original.  Because the embedding does capture
surface cues (street tokens, phone prefixes, product-line names) the baseline
sits between the purely statistical methods and the LLM pipelines, as in
Table 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

import numpy as np

from ..core.serialization import serialize_record
from ..core.tasks.imputation import ImputationTask
from ..core.types import TaskType
from ..datalake.table import Table, is_missing
from ..datalake.text import embed_values
from ..datasets.base import BenchmarkDataset
from .base import Baseline


class IMPImputer(Baseline):
    """k-NN over record embeddings with a similarity-weighted vote."""

    name = "IMP"

    def __init__(self, seed: int = 0, k_neighbors: int = 7):
        super().__init__(seed)
        self.k_neighbors = k_neighbors

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.DATA_IMPUTATION)
        cache: dict[tuple[str, str], _FittedIndex] = {}
        predictions: list[Any] = []
        for task in dataset.tasks:
            if not isinstance(task, ImputationTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            key = (task.table().name, task.attribute)
            if key not in cache:
                cache[key] = self._fit(task.table(), task.attribute)
            predictions.append(cache[key].impute(task))
        return predictions

    def _fit(self, table: Table, target: str) -> "_FittedIndex":
        features = [n for n in table.schema.names if n != target]
        complete = [r for r in table if not is_missing(r[target])]
        vectors = embed_values([serialize_record(r, features) for r in complete])
        values = [str(r[target]) for r in complete]
        return _FittedIndex(features, vectors, values, self.k_neighbors)


class _FittedIndex:
    def __init__(self, features, vectors: np.ndarray, values: list[str], k: int):
        self.features = features
        self.vectors = vectors
        self.values = values
        self.k = k

    def impute(self, task: ImputationTask) -> str:
        if not len(self.vectors):
            return "unknown"
        query = embed_values([serialize_record(task.record, self.features)])[0]
        sims = self.vectors @ query
        top = np.argsort(-sims)[: self.k]
        votes: dict[str, float] = defaultdict(float)
        for index in top:
            votes[self.values[int(index)]] += max(float(sims[int(index)]), 0.0)
        if not votes:
            return self.values[int(top[0])]
        return max(votes.items(), key=lambda kv: kv[1])[0]
