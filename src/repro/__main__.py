"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list-datasets``
    Print the registered benchmark datasets.
``list-experiments``
    Print the experiment modules (one per paper table / figure).
``run-experiment NAME``
    Regenerate one table / figure (e.g. ``table1`` or ``figure5``).
``demo``
    Run the Figure-2 style quickstart on a freshly generated Restaurant task.
"""

from __future__ import annotations

import argparse
import sys

from .core import UniDM, UniDMConfig
from .datasets import list_datasets, load_dataset
from .experiments import ALL_EXPERIMENTS
from .llm import SimulatedLLM


def _cmd_list_datasets(_: argparse.Namespace) -> int:
    for name in list_datasets():
        print(name)
    return 0


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    for name, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name:10s} {doc}")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    if args.name not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; available: {sorted(ALL_EXPERIMENTS)}")
        return 2
    kwargs = {"seed": args.seed}
    if args.max_tasks is not None:
        kwargs["max_tasks"] = args.max_tasks
    ALL_EXPERIMENTS[args.name].main(**kwargs)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    dataset = load_dataset("restaurant", seed=args.seed, n_records=80, n_tasks=5)
    llm = SimulatedLLM(knowledge=dataset.knowledge, seed=args.seed)
    pipeline = UniDM(llm, UniDMConfig.full(seed=args.seed))
    task = dataset.tasks[0]
    result = pipeline.run(task)
    print("query        :", result.query)
    print("context      :", result.context_text)
    print("target prompt:", result.trace.target_prompt)
    print("answer       :", result.value)
    print("ground truth :", dataset.ground_truth[0])
    print("tokens       :", result.total_tokens)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-datasets").set_defaults(fn=_cmd_list_datasets)
    subparsers.add_parser("list-experiments").set_defaults(fn=_cmd_list_experiments)
    run_parser = subparsers.add_parser("run-experiment")
    run_parser.add_argument("name")
    run_parser.add_argument("--max-tasks", type=int, default=None)
    run_parser.set_defaults(fn=_cmd_run_experiment)
    subparsers.add_parser("demo").set_defaults(fn=_cmd_demo)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
