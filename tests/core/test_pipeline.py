"""Unit and integration tests for the UniDM pipeline (Algorithm 1)."""

import pytest

from repro.core import (
    ImputationTask,
    InformationExtractionTask,
    TableQATask,
    TaskType,
    TransformationTask,
    UniDM,
    UniDMConfig,
    solve,
)
from repro.llm import SimulatedLLM


@pytest.fixture
def pipeline(city_llm):
    return UniDM(city_llm, UniDMConfig.full(candidate_sample_size=5, top_k_instances=3))


def test_pipeline_runs_imputation_end_to_end(city_table, pipeline):
    task = ImputationTask(city_table, city_table[5], "timezone")
    result = pipeline.run(task)
    assert result.task_type is TaskType.DATA_IMPUTATION
    assert result.query == "Copenhagen, timezone"
    assert isinstance(result.value, str) and result.value
    assert result.usage is not None and result.usage.calls >= 3
    assert result.trace.target_prompt is not None
    assert result.total_tokens > 0


def test_pipeline_reproduces_paper_running_example(city_table, city_knowledge):
    # Figure 2: retrieval selects `country`, parsing produces fluent sentences,
    # the cloze asks for Copenhagen's timezone, and the answer is CET.
    llm = SimulatedLLM(knowledge=city_knowledge, seed=1)
    pipeline = UniDM(llm, UniDMConfig.full(candidate_sample_size=5, top_k_instances=3))
    result = pipeline.run(ImputationTask(city_table, city_table[5], "timezone"))
    assert result.trace.meta_retrieval_output == "country"
    assert "is a city in the country" in result.context_text
    assert "The timezone of Copenhagen is __." in result.trace.target_prompt
    assert result.value == "Central European Time"


def test_pipeline_transformation_uses_task_context(pipeline):
    task = TransformationTask("19990415", [("20000101", "2000-01-01"), ("20101231", "2010-12-31")])
    result = pipeline.run(task)
    assert "can be transformed to" in result.trace.target_prompt
    assert result.value == "1999-04-15"


def test_pipeline_extraction_uses_raw_document(pipeline):
    task = InformationExtractionTask(
        "<p>Kevin Durant is an American professional basketball player.</p>", "player"
    )
    result = pipeline.run(task)
    assert "The player is __." in result.trace.target_prompt
    assert isinstance(result.value, str)


def test_pipeline_table_qa(city_table, pipeline):
    result = pipeline.run(TableQATask(city_table, "which country is Copenhagen in?"))
    assert isinstance(result.value, str)


def test_run_many_and_solve(city_table, city_llm):
    tasks = [
        ImputationTask(city_table, city_table[5], "timezone"),
        ImputationTask(city_table, city_table[0], "timezone"),
    ]
    pipeline = UniDM(city_llm, UniDMConfig.random_context(candidate_sample_size=4, top_k_instances=2))
    results = pipeline.run_many(tasks)
    assert len(results) == 2
    single = solve(tasks[0], city_llm, UniDMConfig.random_context(candidate_sample_size=4, top_k_instances=2))
    assert isinstance(single.value, str)


def test_disabled_components_reduce_llm_calls(city_table, city_knowledge):
    full_llm = SimulatedLLM(knowledge=city_knowledge, seed=3)
    UniDM(full_llm, UniDMConfig.full(candidate_sample_size=5, top_k_instances=2)).run(
        ImputationTask(city_table, city_table[5], "timezone")
    )
    minimal_llm = SimulatedLLM(knowledge=city_knowledge, seed=3)
    UniDM(minimal_llm, UniDMConfig.baseline_prompting(candidate_sample_size=5, top_k_instances=2)).run(
        ImputationTask(city_table, city_table[5], "timezone")
    )
    assert minimal_llm.usage.calls < full_llm.usage.calls
    assert minimal_llm.usage.total_tokens < full_llm.usage.total_tokens


def test_token_accounting_is_per_query(city_table, city_llm):
    pipeline = UniDM(city_llm, UniDMConfig.full(candidate_sample_size=4, top_k_instances=2))
    first = pipeline.run(ImputationTask(city_table, city_table[5], "timezone"))
    second = pipeline.run(ImputationTask(city_table, city_table[0], "country"))
    assert first.usage.total_tokens > 0
    assert second.usage.total_tokens > 0
    assert city_llm.usage.total_tokens >= first.usage.total_tokens + second.usage.total_tokens
