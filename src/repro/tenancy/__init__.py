"""Multi-tenant front door: fair scheduling, rate limits, isolation.

PR 5 gave the serving stack *global* admission control and PR 6 made it
observable, but every request was anonymous — one abusive caller could
starve everyone because shedding, priorities and inflight caps were all
process-wide.  This package adds the per-tenant layer:

* :class:`TenantRegistry` / :class:`TenantConfig` — per-tenant scheduling
  ``weight``, token-bucket ``rate``/``burst`` and ``max_inflight`` cap,
  with a catch-all ``default`` tenant for untagged traffic;
* :class:`TokenBucket` — deterministic injectable-clock rate limiter;
* :class:`WeightedFairQueue` / :class:`WeightedFairLock` /
  :class:`FairBlockingQueue` — start-time fair queueing across tenants
  (priority still breaks ties *within* a tenant, bit-identical to
  :class:`repro.obs.PriorityLock` for a single tenant);
* :class:`TenancyController` — the runtime a front door holds: bucket and
  cap enforcement at admission (structured ``rate_limited`` errors with
  ``retry_after``) plus ``tenant.<name>.*`` metrics.

Requests claim a tenant via the v2 envelope's ``"tenant"`` key
(``Client.submit(..., tenant=...)``); both :class:`~repro.serving.service.
ServingService` and the cluster :class:`~repro.cluster.router.Router`
enforce the registry when one is passed, and run untagged/unconfigured
exactly as before.  See ``docs/tenancy.md``.
"""

from .bucket import TokenBucket
from .controller import TenancyController
from .fairqueue import (
    DEFAULT_TENANT,
    FairBlockingQueue,
    WeightedFairLock,
    WeightedFairQueue,
)
from .registry import TenantConfig, TenantRegistry

__all__ = [
    "DEFAULT_TENANT",
    "FairBlockingQueue",
    "TenancyController",
    "TenantConfig",
    "TenantRegistry",
    "TokenBucket",
    "WeightedFairLock",
    "WeightedFairQueue",
]
