"""Evaluation metrics: accuracy, precision/recall/F1 and text-overlap F1.

The paper reports accuracy for imputation and transformation (fraction of
correct repairs), F1 for error detection and entity resolution, precision /
recall / F1 curves for join discovery, and text F1 for information extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..datalake.text import normalize, tokenize


def values_match(prediction: Any, truth: Any) -> bool:
    """Normalised string equality used by the accuracy metric."""
    return normalize(prediction) == normalize(truth)


def accuracy(predictions: Sequence[Any], ground_truth: Sequence[Any]) -> float:
    """Fraction of predictions equal to the ground truth (normalised)."""
    _check_lengths(predictions, ground_truth)
    if not predictions:
        return 0.0
    correct = sum(
        1 for p, t in zip(predictions, ground_truth) if values_match(p, t)
    )
    return correct / len(predictions)


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive class = True)."""

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def precision(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 0.0

    @property
    def recall(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.fn + self.tn
        return (self.tp + self.tn) / total if total else 0.0


def confusion(predictions: Sequence[bool], ground_truth: Sequence[bool]) -> ConfusionMatrix:
    _check_lengths(predictions, ground_truth)
    tp = fp = fn = tn = 0
    for p, t in zip(predictions, ground_truth):
        p, t = bool(p), bool(t)
        if p and t:
            tp += 1
        elif p and not t:
            fp += 1
        elif not p and t:
            fn += 1
        else:
            tn += 1
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)


def precision(predictions: Sequence[bool], ground_truth: Sequence[bool]) -> float:
    return confusion(predictions, ground_truth).precision


def recall(predictions: Sequence[bool], ground_truth: Sequence[bool]) -> float:
    return confusion(predictions, ground_truth).recall


def f1_score(predictions: Sequence[bool], ground_truth: Sequence[bool]) -> float:
    return confusion(predictions, ground_truth).f1


def text_f1(prediction: Any, truth: Any) -> float:
    """Token-overlap F1 between a predicted string and the reference string."""
    pred_tokens = tokenize(prediction)
    true_tokens = tokenize(truth)
    if not pred_tokens and not true_tokens:
        return 1.0
    if not pred_tokens or not true_tokens:
        return 0.0
    counts_true: dict[str, int] = {}
    for token in true_tokens:
        counts_true[token] = counts_true.get(token, 0) + 1
    overlap = 0
    for token in pred_tokens:
        if counts_true.get(token, 0) > 0:
            counts_true[token] -= 1
            overlap += 1
    if overlap == 0:
        return 0.0
    p = overlap / len(pred_tokens)
    r = overlap / len(true_tokens)
    return 2 * p * r / (p + r)


def mean_text_f1(predictions: Sequence[Any], ground_truth: Sequence[Any]) -> float:
    """Average per-example text F1 (the SWDE extraction metric)."""
    _check_lengths(predictions, ground_truth)
    if not predictions:
        return 0.0
    return sum(text_f1(p, t) for p, t in zip(predictions, ground_truth)) / len(predictions)


def _check_lengths(a: Sequence[Any], b: Sequence[Any]) -> None:
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} predictions vs {len(b)} labels")
