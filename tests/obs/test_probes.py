"""Probe and diagnostics tests: /healthz, /readyz, /doctor, HealthMonitor.

Tentpole acceptance: the stats side channel answers liveness and readiness
over plain HTTP (503 while a page-severity alert fires or admission is
saturated — no JSON parsing needed by supervisors), and the one-shot
diagnostic bundle carries config, alerts, rolling windows, recent events
and thread stacks even while the service is degraded.
"""

import json

import pytest

from repro.obs import EventLog, MetricsRegistry, serve_stats_in_thread
from repro.obs.diagnostics import build_bundle, thread_stacks
from repro.obs.slo import HealthMonitor, SLOSpec
from repro.cli.fetch import StatsUnreachable, fetch_probe, http_get


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def breach_shed(registry, monitor, clock, *, severity="page"):
    """Drive tenant.acme shed counters until the configured SLO fires."""
    admitted = registry.counter("tenant.acme.admitted")
    limited = registry.counter("tenant.acme.rate_limited")
    for _ in range(12):
        admitted.inc(10)
        limited.inc(90)
        clock.advance(1.0)
        monitor.tick()


def make_monitor(**kwargs):
    registry = MetricsRegistry()
    clock = FakeClock()
    slos = kwargs.pop(
        "slos",
        [
            SLOSpec(
                name="shed",
                kind="error_rate",
                tenant="acme",
                budget=0.1,
                windows=("10s",),
                severity=kwargs.pop("severity", "page"),
            )
        ],
    )
    monitor = HealthMonitor(registry=registry, slos=slos, clock=clock, **kwargs)
    return monitor, registry, clock


# -------------------------------------------------------------- health monitor
def test_ready_flips_on_page_alert_and_recovers():
    monitor, registry, clock = make_monitor()
    clock.advance(1.0)
    monitor.tick()
    ok, detail = monitor.ready()
    assert ok and detail["reasons"] == []

    breach_shed(registry, monitor, clock)
    ok, detail = monitor.ready()
    assert not ok
    assert any("page alert firing" in reason for reason in detail["reasons"])

    # Quiet traffic ages the breach out of the window.
    admitted = registry.counter("tenant.acme.admitted")
    for _ in range(15):
        admitted.inc(100)
        clock.advance(1.0)
        monitor.tick()
    ok, detail = monitor.ready()
    assert ok and detail["reasons"] == []


def test_ticket_severity_does_not_flip_readiness():
    monitor, registry, clock = make_monitor(severity="ticket")
    breach_shed(registry, monitor, clock)
    assert monitor.engine.alerts()  # firing...
    ok, _ = monitor.ready()
    assert ok  # ...but only pages gate readiness


def test_dead_workers_flip_readiness():
    monitor, registry, clock = make_monitor(
        slos=[], workers_alive=lambda: (1, 4)
    )
    clock.advance(1.0)
    monitor.tick()
    ok, detail = monitor.ready()
    assert not ok
    assert any("workers dead" in reason for reason in detail["reasons"])


def test_sections_merge_into_snapshots():
    monitor, registry, clock = make_monitor()
    breach_shed(registry, monitor, clock)
    sections = monitor.sections()
    assert sections["health"]["status"] == "degraded"
    assert sections["health"]["ready"] is False
    assert [a["slo"] for a in sections["alerts"]] == ["shed"]
    assert "shed" in sections["slos"]
    assert "tenant.acme.rate_limited" in sections["timeseries"]["series"]


# ----------------------------------------------------------------- HTTP routes
@pytest.fixture()
def degraded_port():
    """A stats server whose monitor has a firing page alert."""
    monitor, registry, clock = make_monitor()
    breach_shed(registry, monitor, clock)
    log = EventLog(capacity=16)
    log.emit("span", name="x")

    def snapshot():
        return {"metrics": registry.snapshot(), **monitor.sections()}

    def doctor():
        return build_bundle(
            snapshot_fn=snapshot,
            monitor=monitor,
            config={"command": "test"},
            event_log=log,
        )

    port = serve_stats_in_thread(
        snapshot, "127.0.0.1", 0, monitor=monitor, doctor_fn=doctor
    )
    assert port is not None
    return port


def test_healthz_is_200_even_when_degraded(degraded_port):
    status, payload = fetch_probe("127.0.0.1", degraded_port, "/healthz")
    assert status == 200
    assert payload["alerts_firing"] == 1


def test_readyz_answers_503_with_reasons(degraded_port):
    status, payload = fetch_probe("127.0.0.1", degraded_port, "/readyz")
    assert status == 503
    assert payload["ready"] is False
    assert any("page alert" in reason for reason in payload["reasons"])


def test_doctor_route_serves_the_bundle(degraded_port):
    status, bundle = fetch_probe("127.0.0.1", degraded_port, "/doctor")
    assert status == 200
    assert bundle["bundle"] == "repro-doctor"
    assert bundle["config"] == {"command": "test"}
    assert [a["slo"] for a in bundle["alerts"]] == ["shed"]
    assert bundle["timeseries"]["series"]
    assert [e["kind"] for e in bundle["events"]] == ["span"]
    assert "Thread" in bundle["thread_stacks"]


def test_default_routes_without_monitor_stay_compatible():
    registry = MetricsRegistry()
    port = serve_stats_in_thread(lambda: {"metrics": registry.snapshot()}, "127.0.0.1", 0)
    status, payload = fetch_probe("127.0.0.1", port, "/healthz")
    assert (status, payload) == (200, {"status": "ok"})
    status, payload = fetch_probe("127.0.0.1", port, "/readyz")
    assert (status, payload) == (200, {"ready": True})


def test_unreachable_probe_raises(tmp_path):
    with pytest.raises(StatsUnreachable):
        http_get("127.0.0.1", 1, "/healthz", timeout=0.2)


# ----------------------------------------------------------------- diagnostics
def test_thread_stacks_mention_this_thread():
    stacks = thread_stacks()
    assert "test_thread_stacks_mention_this_thread" in stacks


def test_bundle_survives_broken_sections():
    def explode():
        raise RuntimeError("snapshot down")

    bundle = build_bundle(snapshot_fn=explode)
    assert bundle["bundle"] == "repro-doctor"
    assert "snapshot" in bundle["errors"]
    json.dumps(bundle)  # still JSON-able


def test_bundle_tails_events():
    log = EventLog(capacity=600)
    for index in range(500):
        log.emit("tick", index=index)
    bundle = build_bundle(event_log=log, max_events=100)
    events = bundle["events"]
    assert len(events) == 100
    assert events[-1]["index"] == 499


# ------------------------------------------------------------- client surfaces
def test_client_health_and_alerts_on_local_service():
    from repro.api import Client

    with Client.local(seed=0) as client:
        health = client.health()
        assert health["status"] in ("ok", "degraded")
        assert isinstance(client.alerts(), list)
