"""Evaporate baselines (Arora et al. 2023) — code synthesis for extraction.

Evaporate-code asks an LLM to synthesise one extraction function per attribute
from a few sample documents and applies it to the rest; Evaporate-code+
synthesises many candidate functions from different samples and aggregates
their outputs by weak supervision.  The reproduction synthesises the functions
the same way those generated functions actually look — template-anchored
regular expressions — so:

* **Evaporate-code** learns its regex from documents of a single template and
  fails on documents rendered with other templates (Table 11's ~40 F1);
* **Evaporate-code+** keeps one function per template seen in its sample and
  takes a majority/first-hit vote, generalising much better (~85 F1).
"""

from __future__ import annotations

import re
from typing import Any, Callable

from ..core.tasks.information_extraction import InformationExtractionTask, strip_markup
from ..core.types import TaskType
from ..datasets.base import BenchmarkDataset
from .base import Baseline

ExtractorFn = Callable[[str], str | None]


def _synthesize_extractor(document: str, attribute: str, value: str) -> ExtractorFn | None:
    """Build a regex extractor anchored on the text surrounding ``value``.

    This mimics what LLM-synthesised extraction code looks like in practice:
    find the literal label or the characters immediately before the value in
    this document, and capture what follows it in other documents.
    """
    text = strip_markup(document)
    position = text.find(value)
    if position < 0:
        return None
    value_token_count = max(1, len(value.split()))
    prefix = text[max(0, position - 28) : position].strip()
    anchor_words = prefix.split()[-3:]

    if anchor_words:
        # Anchor on the words immediately before the value.
        anchor = r"\s+".join(re.escape(word) for word in anchor_words)
        pattern = re.compile(anchor + r"\s+([A-Za-z0-9][\w .'-]*)", re.IGNORECASE)
        group_is_prefix = False
    else:
        # The value opens the document (e.g. a page whose title is the entity):
        # anchor on the words that follow it and capture what precedes them.
        suffix = text[position + len(value) :].strip()
        # Pages often repeat the title immediately (heading then first
        # sentence); skip the repetitions so the anchor generalises.
        while suffix.startswith(value):
            suffix = suffix[len(value) :].strip()
        suffix_words = suffix.split()[:3]
        if not suffix_words:
            return None
        anchor = r"\s+".join(re.escape(word) for word in suffix_words)
        pattern = re.compile(r"^\s*([A-Za-z0-9][\w .'-]*?)\s+" + anchor, re.IGNORECASE)
        group_is_prefix = True

    def extractor(other_document: str) -> str | None:
        match = pattern.search(strip_markup(other_document))
        if not match:
            return None
        captured = match.group(1).strip()
        # Generated functions typically trim trailing sentence fragments and
        # keep as many tokens as the example value had.
        captured = re.split(r"[.;]|\s(?:He|She|They)\b", captured)[0].strip()
        tokens = captured.split()
        if group_is_prefix:
            captured = " ".join(tokens[-value_token_count:])
        else:
            captured = " ".join(tokens[:value_token_count])
        return captured or None

    return extractor


class EvaporateCode(Baseline):
    """Single synthesised extraction function per attribute."""

    name = "Evaporate-code"

    def __init__(self, seed: int = 0, n_sample_documents: int = 2):
        super().__init__(seed)
        self.n_sample_documents = n_sample_documents

    def _sample_documents(self, dataset: BenchmarkDataset) -> list:
        documents = dataset.extra.get("documents", [])
        if not documents:
            raise ValueError("dataset does not carry source documents")
        k = min(self.n_sample_documents, len(documents))
        indices = self.rng.choice(len(documents), size=k, replace=False)
        return [documents[int(i)] for i in indices]

    def _build_extractors(self, dataset: BenchmarkDataset) -> dict[str, list[ExtractorFn]]:
        extractors: dict[str, list[ExtractorFn]] = {}
        for doc in self._sample_documents(dataset):
            for attribute, value in doc.values.items():
                fn = _synthesize_extractor(doc.document, attribute, str(value))
                if fn is not None:
                    extractors.setdefault(attribute, []).append(fn)
        return extractors

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.INFORMATION_EXTRACTION)
        extractors = self._build_extractors(dataset)
        predictions: list[str] = []
        for task in dataset.tasks:
            if not isinstance(task, InformationExtractionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            functions = extractors.get(task.attribute, [])
            value = None
            for fn in functions[:1]:  # code: a single function per attribute
                value = fn(task.document)
                if value:
                    break
            predictions.append(value or "")
        return predictions


class EvaporateCodePlus(EvaporateCode):
    """Ensemble of synthesised functions with first-hit aggregation."""

    name = "Evaporate-code+"

    def __init__(self, seed: int = 0, n_sample_documents: int = 14):
        super().__init__(seed=seed, n_sample_documents=n_sample_documents)

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.INFORMATION_EXTRACTION)
        extractors = self._build_extractors(dataset)
        predictions: list[str] = []
        for task in dataset.tasks:
            if not isinstance(task, InformationExtractionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            votes: dict[str, int] = {}
            for fn in extractors.get(task.attribute, []):
                value = fn(task.document)
                if value:
                    votes[value] = votes.get(value, 0) + 1
            if votes:
                predictions.append(max(votes.items(), key=lambda kv: kv[1])[0])
            else:
                predictions.append("")
        return predictions
