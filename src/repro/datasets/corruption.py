"""Error-injection utilities for the data-cleaning benchmarks.

The Hospital and Adult error-detection benchmarks corrupt a fixed fraction of
cells (5% in the paper); the corruptions here follow the typo patterns those
benchmarks exhibit (character substitution — classically an ``x`` — deletions,
transpositions, and category swaps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..datalake.table import Table, is_missing


def substitute_char(value: str, rng: np.random.Generator, replacement: str = "x") -> str:
    """Replace one alphabetic character with ``replacement`` (Hospital-style typo)."""
    value = str(value)
    positions = [i for i, c in enumerate(value) if c.isalpha() and c.lower() != replacement]
    if not positions:
        return value + replacement
    index = int(positions[int(rng.integers(len(positions)))])
    return value[:index] + replacement + value[index + 1 :]


def delete_char(value: str, rng: np.random.Generator) -> str:
    value = str(value)
    if len(value) <= 1:
        return value
    index = int(rng.integers(len(value)))
    return value[:index] + value[index + 1 :]


def transpose_chars(value: str, rng: np.random.Generator) -> str:
    value = str(value)
    if len(value) < 2:
        return value
    index = int(rng.integers(len(value) - 1))
    return value[:index] + value[index + 1] + value[index] + value[index + 2 :]


def duplicate_char(value: str, rng: np.random.Generator) -> str:
    value = str(value)
    if not value:
        return value
    index = int(rng.integers(len(value)))
    return value[: index + 1] + value[index] * 3 + value[index + 1 :]


def corrupt_value(value: str, rng: np.random.Generator) -> str:
    """Apply one randomly chosen typo; guaranteed to differ from the input."""
    corruptions = (substitute_char, delete_char, transpose_chars, duplicate_char)
    for _ in range(5):
        fn = corruptions[int(rng.integers(len(corruptions)))]
        corrupted = fn(value, rng)
        if corrupted != str(value):
            return corrupted
    return str(value) + "x"


@dataclass(frozen=True)
class InjectedError:
    """Bookkeeping for one corrupted cell."""

    record_index: int
    attribute: str
    clean_value: str
    dirty_value: str


def inject_errors(
    table: Table,
    attributes: Sequence[str],
    error_rate: float,
    rng: np.random.Generator,
) -> list[InjectedError]:
    """Corrupt ``error_rate`` of the cells of ``attributes`` in place.

    Returns the list of injected errors (the ground truth for error detection).
    The table is modified in place, mirroring how a dirty dataset arrives with
    no clean copy attached.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError("error_rate must be in [0, 1]")
    cells = [
        (i, attr)
        for i, record in enumerate(table.records)
        for attr in attributes
        if not is_missing(record[attr])
    ]
    n_errors = int(round(error_rate * len(cells)))
    if n_errors == 0:
        return []
    chosen = rng.choice(len(cells), size=n_errors, replace=False)
    errors: list[InjectedError] = []
    records = table.records
    for flat_index in np.atleast_1d(chosen):
        record_index, attribute = cells[int(flat_index)]
        clean = str(records[record_index][attribute])
        dirty = corrupt_value(clean, rng)
        records[record_index][attribute] = dirty
        errors.append(
            InjectedError(
                record_index=record_index,
                attribute=attribute,
                clean_value=clean,
                dirty_value=dirty,
            )
        )
    return errors
