"""Shared fixtures: a small cities table, its world knowledge, and cached datasets."""

from __future__ import annotations

import pytest

from repro.datalake import Attribute, AttributeType, Schema, Table
from repro.datasets import load_dataset
from repro.llm import SimulatedLLM, WorldKnowledge

CITY_ROWS = [
    {"city": "Florence", "country": "Italy", "population": 382000, "timezone": "Central European Time"},
    {"city": "Alicante", "country": "Spain", "population": 337482, "timezone": "Central European Time"},
    {"city": "Antwerp", "country": "Belgium", "population": 530000, "timezone": "Central European Time"},
    {"city": "London", "country": "United Kingdom", "population": 8900000, "timezone": "Greenwich Mean Time"},
    {"city": "Helsinki", "country": "Finland", "population": 656000, "timezone": "Eastern European Time"},
    {"city": "Copenhagen", "country": "Denmark", "population": 809314, "timezone": None},
]


def build_city_schema() -> Schema:
    return Schema(
        [
            Attribute("city", primary_key=True, domain="geography.city"),
            Attribute("country", domain="geography.country"),
            Attribute("population", AttributeType.NUMERIC),
            Attribute("timezone", AttributeType.CATEGORICAL, domain="geography.timezone"),
        ]
    )


def build_city_table() -> Table:
    return Table("cities", build_city_schema(), [dict(row) for row in CITY_ROWS])


def build_city_knowledge() -> WorldKnowledge:
    knowledge = WorldKnowledge()
    knowledge.set_relation_template("country", "{subject} is a city in the country {value}")
    knowledge.set_relation_template("timezone", "{subject} is in the timezone {value}")
    knowledge.add_attribute_link("country", "timezone", 0.9)
    knowledge.add_attribute_link("population", "timezone", 0.1)
    for row in CITY_ROWS:
        knowledge.add_fact(row["city"], "country", row["country"], 0.95, "geography")
        if row["timezone"]:
            knowledge.add_fact(row["city"], "timezone", row["timezone"], 0.9, "geography")
        knowledge.add_domain_value("country", row["country"])
        if row["timezone"]:
            knowledge.add_domain_value("timezone", row["timezone"])
    knowledge.add_fact("Copenhagen", "timezone", "Central European Time", 0.9, "geography")
    return knowledge


@pytest.fixture
def city_table() -> Table:
    return build_city_table()


@pytest.fixture
def city_schema() -> Schema:
    return build_city_schema()


@pytest.fixture
def city_knowledge() -> WorldKnowledge:
    return build_city_knowledge()


@pytest.fixture
def city_llm(city_knowledge) -> SimulatedLLM:
    return SimulatedLLM(knowledge=city_knowledge, seed=7)


# -- cached benchmark datasets (built once per test session) ---------------------

@pytest.fixture(scope="session")
def restaurant_dataset():
    return load_dataset("restaurant", seed=0, n_records=80, n_tasks=20)


@pytest.fixture(scope="session")
def buy_dataset():
    return load_dataset("buy", seed=0, n_records=60, n_tasks=15)


@pytest.fixture(scope="session")
def hospital_dataset():
    return load_dataset("hospital", seed=0, n_records=50)


@pytest.fixture(scope="session")
def stackoverflow_dataset():
    return load_dataset("stackoverflow", seed=0, n_cases=40)


@pytest.fixture(scope="session")
def beer_dataset():
    return load_dataset("beer", seed=0, n_entities=40, n_pairs=60, n_train_pairs=60)


@pytest.fixture(scope="session")
def walmart_dataset():
    return load_dataset("walmart_amazon", seed=0, n_entities=40, n_pairs=60, n_train_pairs=120)


@pytest.fixture(scope="session")
def nextiajd_dataset():
    return load_dataset("nextiajd", seed=0, n_pairs=20)


@pytest.fixture(scope="session")
def nba_dataset():
    return load_dataset("nba_players", seed=0, n_documents=20)


@pytest.fixture(scope="session")
def tableqa_dataset():
    return load_dataset("wiki_table_questions", seed=0, n_tables=3)
