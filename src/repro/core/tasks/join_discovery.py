"""Join discovery task adapter (Appendix D of the paper).

Given a column in each of two tables, decide whether the columns are
semantically joinable.  The query names the two columns
(``"fifa_ranking.country_abrv VERSUS countries_and_continents.ISO"``); the
context carries sample records from both tables plus the sampled values of the
two columns, which — once parsed into sentences such as
``"Germany" is abbreviated as "GER"`` — give the LLM the evidence it needs.
"""

from __future__ import annotations

import numpy as np

from ...datalake.sampling import sample_records
from ...datalake.table import Table, is_missing
from ..types import TaskType
from .base import Task, parse_yes_no

#: Pseudo-attributes used for the "column X contains ..." context rows; the
#: dataset layer registers a sentence template for ``CONTAINS_ATTR``.
COLUMN_ATTR = "column"
CONTAINS_ATTR = "contains"


class JoinDiscoveryTask(Task):
    """Decide whether ``table_a.column_a`` joins with ``table_b.column_b``."""

    task_type = TaskType.JOIN_DISCOVERY

    def __init__(
        self,
        table_a: Table,
        column_a: str,
        table_b: Table,
        column_b: str,
        n_sample_values: int = 6,
        n_sample_records: int = 2,
        seed: int = 0,
    ):
        for table, column in ((table_a, column_a), (table_b, column_b)):
            if column not in table.schema:
                raise KeyError(f"column {column!r} not in table {table.name!r}")
        self.table_a, self.column_a = table_a, column_a
        self.table_b, self.column_b = table_b, column_b
        self.n_sample_values = n_sample_values
        self.n_sample_records = n_sample_records
        self.seed = seed

    @property
    def needs_retrieval(self) -> bool:
        return False

    def qualified_a(self) -> str:
        return f"{self.table_a.name}.{self.column_a}"

    def qualified_b(self) -> str:
        return f"{self.table_b.name}.{self.column_b}"

    def query(self) -> str:
        return f"{self.qualified_a()} VERSUS {self.qualified_b()}"

    def target_attributes(self) -> list[str]:
        return [self.column_a, self.column_b]

    def _companion_attribute(self, table: Table, column: str) -> str | None:
        """A descriptive attribute to pair with the join column in context rows."""
        for name in table.schema.names:
            if name != column and not table.schema[name].type.is_numeric():
                return name
        return None

    def _sample_values(self, table: Table, column: str, rng: np.random.Generator) -> list[str]:
        values = [v for v in table.distinct(column) if not is_missing(v)]
        if not values:
            return []
        idx = rng.permutation(len(values))[: self.n_sample_values]
        return [str(values[int(i)]) for i in idx]

    def context_rows(self) -> list[list[tuple[str, str]]]:
        rng = np.random.default_rng(self.seed)
        rows: list[list[tuple[str, str]]] = []
        for table, column in ((self.table_a, self.column_a), (self.table_b, self.column_b)):
            companion = self._companion_attribute(table, column)
            for record in sample_records(table, self.n_sample_records, rng=rng):
                if is_missing(record[column]):
                    continue
                if companion is not None and not is_missing(record[companion]):
                    rows.append(
                        [(companion, str(record[companion])), (column, str(record[column]))]
                    )
                else:
                    rows.append([(column, str(record[column]))])
        for table, column, qualified in (
            (self.table_a, self.column_a, self.qualified_a()),
            (self.table_b, self.column_b, self.qualified_b()),
        ):
            values = self._sample_values(table, column, rng)
            if values:
                rows.append(
                    [(COLUMN_ATTR, qualified), (CONTAINS_ATTR, " and ".join(values))]
                )
        return rows

    def parse_answer(self, text: str) -> bool:
        """True when the columns are judged joinable."""
        return parse_yes_no(text)
