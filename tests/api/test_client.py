"""Tests for the Client facade over the in-process (local) backend."""

import asyncio

import pytest

from repro.api import Client, TaskFailedError, TransformationSpec
from repro.core import ImputationTask, TransformationTask
from repro.datalake import Table


@pytest.fixture
def client():
    return Client.local(seed=0, batch_size=4, workers=4)


def test_submit_answers_every_task_type(client, all_seven):
    for spec in all_seven:
        result = client.submit(spec)
        assert result.ok
        assert result.answer is not None
        assert result.task_type
        assert result.tokens > 0 and result.calls > 0
        assert result.elapsed > 0


def test_submit_is_deterministic_for_same_seed(all_seven):
    spec = all_seven[0]
    first = Client.local(seed=0).submit(spec)
    second = Client.local(seed=0).submit(spec)
    assert first.answer == second.answer == "1999-04-15"


def test_submit_many_keeps_order_and_embeds_errors(client, all_seven):
    good = TransformationSpec(value="x", examples=[["a", "A"]])
    results = client.submit_many([good, all_seven[2], good])
    assert [r.ok for r in results] == [True, True, True]
    assert results[0].answer == results[2].answer
    assert [r.id for r in results] == sorted(r.id for r in results)


def test_submit_raises_structured_error_on_failure(client):
    # A spec that validates client-side but fails service-side is hard to
    # build by construction (validation is shared); go through the service
    # with a raw bad request instead to prove the error path end-to-end.
    response = client.service.handle_request({"v": 2, "id": 1, "task": {"type": "nope"}})
    assert response["ok"] is False
    assert response["error"]["code"] == "unknown_task_type"

    class Hostile(TransformationSpec):
        def to_request(self):  # sabotage the wire form after validation
            return {"type": "transformation", "value": "x", "examples": [["x"]]}

    with pytest.raises(TaskFailedError) as excinfo:
        client.submit(Hostile(value="x", examples=[["a", "b"]]))
    assert excinfo.value.info.field == "examples"


def test_submit_many_never_raises_mid_batch(client):
    class Hostile(TransformationSpec):
        def to_request(self):
            return {"type": "transformation", "value": "x", "examples": []}

    results = client.submit_many(
        [
            TransformationSpec(value="x", examples=[["a", "A"]]),
            Hostile(value="y", examples=[["a", "b"]]),
        ]
    )
    assert results[0].ok
    assert not results[1].ok
    assert results[1].error.code == "invalid_request"
    assert results[1].error.field == "examples"


def test_submit_rejects_raw_tasks(client):
    task = TransformationTask("a", [("x", "y")])
    with pytest.raises(TypeError):
        client.submit_many([task])


def test_run_task_returns_rich_results(client):
    table = Table(
        "cities",
        ["city", "country"],
        [{"city": "Rome", "country": "Italy"}, {"city": "Oslo", "country": None}],
    )
    task = ImputationTask(table, table[1], "country")
    result = client.run_task(task)
    assert result.trace.target_prompt  # full trace, unlike the wire path
    assert result.query == "Oslo, country"


def test_asubmit_many_matches_sync(all_seven):
    specs = [all_seven[0], all_seven[2]]
    sync_results = Client.local(seed=0, batch_size=4, workers=4).submit_many(specs)
    async_client = Client.local(seed=0, batch_size=4, workers=4)
    async_results = asyncio.run(async_client.asubmit_many(specs))
    assert [r.answer for r in async_results] == [r.answer for r in sync_results]
    assert all(r.ok for r in async_results)


def test_empty_batch(client):
    assert client.submit_many([]) == []
    assert asyncio.run(client.asubmit_many([])) == []


def test_client_exposes_local_internals_and_context_manager():
    with Client.local(seed=0) as client:
        assert client.is_local
        assert client.pipeline is client.service.pipeline


def test_local_rejects_pipeline_combined_with_llm_or_config():
    from repro.core import UniDM, UniDMConfig
    from repro.llm import SimulatedLLM

    pipeline = UniDM(SimulatedLLM(seed=0), UniDMConfig.full(seed=0))
    with pytest.raises(ValueError, match="not both"):
        Client.local(pipeline=pipeline, config=UniDMConfig.full(seed=5))
    with pytest.raises(ValueError, match="not both"):
        Client.local(pipeline=pipeline, llm=SimulatedLLM(seed=1))


def test_v1_flat_requests_still_work_through_the_service(client):
    # PR 1 clients speak the flat format and expect flat responses.
    response = client.service.handle_request(
        {
            "id": 9,
            "type": "transformation",
            "value": "19990415",
            "examples": [["20000101", "2000-01-01"]],
        }
    )
    assert response["ok"] is True
    assert set(response) == {"id", "ok", "answer", "raw", "tokens", "calls"}
    assert response["id"] == 9
