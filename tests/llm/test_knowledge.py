"""Unit tests for the WorldKnowledge store."""

import pytest

from repro.llm import Fact, WorldKnowledge


def test_fact_prevalence_validation():
    with pytest.raises(ValueError):
        Fact("a", "b", "c", prevalence=1.5)


def test_add_and_exact_lookup(city_knowledge):
    fact = city_knowledge.lookup("Copenhagen", "timezone")
    assert fact is not None
    assert fact.value == "Central European Time"


def test_lookup_is_case_insensitive(city_knowledge):
    assert city_knowledge.lookup("copenhagen", "country").value == "Denmark"


def test_fuzzy_lookup_tolerates_minor_differences(city_knowledge):
    fact = city_knowledge.lookup("Copenhagen.", "country")
    assert fact is not None and fact.value == "Denmark"


def test_fuzzy_lookup_rejects_unrelated_subjects(city_knowledge):
    assert city_knowledge.lookup("completely different entity", "country") is None


def test_lookup_without_fuzzy(city_knowledge):
    assert city_knowledge.lookup("Copenhagen!", "country", fuzzy=False) is None


def test_facts_about_subject(city_knowledge):
    facts = city_knowledge.facts_about("Florence")
    relations = {f.relation for f in facts}
    assert {"country", "timezone"} <= relations


def test_contains_and_len(city_knowledge):
    assert ("Florence", "country") in city_knowledge
    assert ("Florence", "mayor") not in city_knowledge
    assert len(city_knowledge) > 5


def test_relation_template_rendering(city_knowledge):
    sentence = city_knowledge.render_fact("Florence", "country", "Italy")
    assert sentence == "Florence is a city in the country Italy"
    default = city_knowledge.render_fact("Florence", "mayor", "Nardella")
    assert "mayor" in default and "Florence" in default


def test_relation_template_validation():
    knowledge = WorldKnowledge()
    with pytest.raises(ValueError):
        knowledge.set_relation_template("x", "missing placeholders")


def test_relation_regex_round_trip(city_knowledge):
    sentence = city_knowledge.render_fact("Florence", "timezone", "Central European Time")
    match = city_knowledge.relation_regex("timezone").match(sentence)
    assert match is not None
    assert match.group("subject") == "Florence"
    assert match.group("value") == "Central European Time"


def test_attribute_links(city_knowledge):
    assert city_knowledge.attribute_link("country", "timezone") == pytest.approx(0.9)
    assert city_knowledge.attribute_link("timezone", "country") == pytest.approx(0.9)
    assert city_knowledge.attribute_link("country", "missing") == 0.0
    related = city_knowledge.related_attributes("timezone")
    assert related[0][0] == "country"


def test_attribute_link_validation():
    knowledge = WorldKnowledge()
    with pytest.raises(ValueError):
        knowledge.add_attribute_link("a", "b", 2.0)


def test_domain_values_and_validity(city_knowledge):
    assert city_knowledge.is_valid_value("country", "Italy") is True
    assert city_knowledge.is_valid_value("country", "Italyy") is False
    assert city_knowledge.is_valid_value("unknown_attribute", "x") is None
    closest = city_knowledge.closest_domain_value("country", "Itly")
    assert closest is not None and closest[0] == "italy"


def test_domain_attributes(city_knowledge):
    assert "country" in city_knowledge.domain_attributes()


def test_equivalences_and_canonicalize():
    knowledge = WorldKnowledge()
    knowledge.add_equivalence("india pale ale", "ipa")
    assert knowledge.are_equivalent("IPA", "India Pale Ale")
    assert not knowledge.are_equivalent("ipa", "stout")
    canonical_a = knowledge.canonicalize("hoppy ipa beer")
    canonical_b = knowledge.canonicalize("hoppy india pale ale beer")
    assert canonical_a == canonical_b


def test_merge_combines_stores(city_knowledge):
    other = WorldKnowledge()
    other.add_fact("Oslo", "country", "Norway", 0.9)
    other.add_domain_value("country", "Norway")
    city_knowledge.merge(other)
    assert city_knowledge.lookup("Oslo", "country").value == "Norway"
    assert "norway" in city_knowledge.domain_values("country")
