"""Tenancy through the wire: envelope echo, structured sheds, client retries."""

import threading
import time

import pytest

from repro.api import Client, ProtocolError, RateLimitedError, TransformationSpec
from repro.api.protocol import encode_request, parse_request
from repro.obs import MetricsRegistry
from repro.serving.service import ServingService
from repro.core import UniDM, UniDMConfig
from repro.llm import CachedLLM, SimulatedLLM
from repro.tenancy import TenantConfig, TenantRegistry

SPEC = TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])


def unique_spec(tag):
    return TransformationSpec(value=f"1999041{tag}", examples=[["20000101", "2000-01-01"]])


def make_service(tenants, **kwargs):
    registry = MetricsRegistry()
    pipeline = UniDM(CachedLLM(SimulatedLLM(seed=0)), UniDMConfig.full(seed=0))
    return ServingService(pipeline, metrics=registry, tenants=tenants, **kwargs)


# ------------------------------------------------------------------- envelope
def test_v2_envelope_carries_and_echoes_the_tenant():
    request = encode_request(SPEC, request_id=1, tenant="gold")
    assert request["tenant"] == "gold"
    assert parse_request(request).tenant == "gold"

    service = make_service(TenantRegistry([TenantConfig("gold")]))
    response = service.handle_request(request)
    assert response["ok"] is True
    assert response["tenant"] == "gold"


def test_non_string_tenant_is_a_protocol_error():
    request = encode_request(SPEC, request_id=1)
    request["tenant"] = 7
    with pytest.raises(ProtocolError) as excinfo:
        parse_request(request)
    assert excinfo.value.info.field == "tenant"


def test_untagged_requests_ride_the_default_tenant():
    service = make_service(
        TenantRegistry([TenantConfig("default", rate=100.0, burst=1.0)])
    )
    first = service.handle_request(encode_request(SPEC, request_id=1))
    second = service.handle_request(encode_request(SPEC, request_id=2))
    assert first["ok"] is True
    assert second["ok"] is False
    assert second["error"]["code"] == "rate_limited"
    assert second["error"]["details"]["tenant"] == "default"


def test_rate_limited_wire_shape_and_unwrap():
    service = make_service(
        TenantRegistry([TenantConfig("t", rate=50.0, burst=1.0)])
    )
    service.handle_request(encode_request(SPEC, request_id=1, tenant="t"))
    shed = service.handle_request(encode_request(SPEC, request_id=2, tenant="t"))
    assert shed["ok"] is False
    assert shed["tenant"] == "t"
    error = shed["error"]
    assert error["code"] == "rate_limited"
    assert error["retry_after"] > 0
    assert error["details"]["reason"] == "rate"

    from repro.api.protocol import decode_response

    result = decode_response(shed)
    assert result.tenant == "t"
    with pytest.raises(RateLimitedError) as excinfo:
        result.unwrap()
    assert excinfo.value.retry_after > 0


def test_mixed_tenant_batch_sheds_only_the_offender():
    service = make_service(
        TenantRegistry(
            [TenantConfig("good", rate=100.0, burst=50.0),
             TenantConfig("bad", rate=100.0, burst=1.0)]
        )
    )
    # Spend the offender's only token so its bucket is no longer full (a
    # full bucket would admit even an oversized group, at a debt).
    service.handle_request(encode_request(unique_spec(9), request_id=9, tenant="bad"))
    batch = [
        encode_request(unique_spec(0), request_id=0, tenant="good"),
        encode_request(unique_spec(1), request_id=1, tenant="bad"),
        encode_request(unique_spec(2), request_id=2, tenant="bad"),
        encode_request(unique_spec(3), request_id=3, tenant="good"),
    ]
    responses = service.handle_batch(batch)
    by_id = {response["id"]: response for response in responses}
    assert by_id[0]["ok"] and by_id[3]["ok"]
    # The offender's group of 2 cannot afford the drained bucket; it is
    # shed while the other tenant's work in the same batch is untouched.
    assert not by_id[1]["ok"] and not by_id[2]["ok"]
    assert by_id[1]["error"]["code"] == "rate_limited"


def test_tenant_metrics_and_stats_narrowing():
    service = make_service(
        TenantRegistry([TenantConfig("t", rate=100.0, burst=1.0)])
    )
    service.handle_request(encode_request(SPEC, request_id=1, tenant="t"))
    service.handle_request(encode_request(SPEC, request_id=2, tenant="t"))
    snapshot = service.stats_snapshot(tenant="t")
    assert snapshot["metrics"]["counters"] == {
        "tenant.t.admitted": 1,
        "tenant.t.rate_limited": 1,
    }
    assert snapshot["metrics"]["histograms"]["tenant.t.latency"]["count"] == 1
    assert snapshot["tenancy"]["tenants"]["t"]["admitted"] == 1
    # The un-narrowed snapshot reports every tenant.
    assert "default" in service.stats_snapshot()["tenancy"]["tenants"]


def test_tenancy_off_means_no_tenancy_section_or_limits():
    service = make_service(None)
    response = service.handle_request(encode_request(SPEC, request_id=1, tenant="x"))
    assert response["ok"] is True
    assert response["tenant"] == "x"  # echoed even without enforcement
    assert "tenancy" not in service.stats_snapshot()


# --------------------------------------------------------------------- client
def test_client_submit_tenant_and_stats_narrowing():
    tenants = TenantRegistry([TenantConfig("gold", weight=2.0, rate=100.0)])
    with Client.local(seed=0, tenants=tenants) as client:
        result = client.submit(SPEC, tenant="gold")
        assert result.ok and result.tenant == "gold"
        snapshot = client.stats(tenant="gold")
        assert list(snapshot["tenancy"]["tenants"]) == ["gold"]


def test_client_retries_honor_retry_after():
    tenants = TenantRegistry([TenantConfig("t", rate=20.0, burst=1.0)])
    with Client.local(seed=0, tenants=tenants) as client:
        client.submit_many([unique_spec(0)], tenant="t")
        started = time.monotonic()
        results = client.submit_many([unique_spec(1)], tenant="t", retries=3)
        elapsed = time.monotonic() - started
        assert results[0].ok
        # One token every 50ms: success required waiting for the refill.
        assert elapsed >= 0.01


def test_client_retries_give_up_after_the_budget():
    tenants = TenantRegistry([TenantConfig("t", rate=0.001, burst=1.0)])
    with Client.local(seed=0, tenants=tenants) as client:
        client.submit_many([unique_spec(0)], tenant="t")
        results = client.submit_many([unique_spec(1)], tenant="t", retries=0)
        assert not results[0].ok
        assert results[0].error.code == "rate_limited"


def test_client_async_retries():
    import asyncio

    tenants = TenantRegistry([TenantConfig("t", rate=20.0, burst=1.0)])
    with Client.local(seed=0, tenants=tenants) as client:
        asyncio.run(client.asubmit_many([unique_spec(0)], tenant="t"))
        results = asyncio.run(
            client.asubmit_many([unique_spec(1)], tenant="t", retries=3)
        )
        assert results[0].ok
