"""Rolling time-series tests: windows, rates, quantiles, reset safety.

Tentpole acceptance: the sampler turns cumulative counters/gauges/histogram
buckets into per-window deltas, rates and percentiles without locks on the
read path, never answers negative rates (even across a registry reset), and
its payload renders every window the SLO engine and ``repro top`` consume.
"""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_WINDOWS,
    Series,
    TimeSeriesSampler,
    counter_window,
    gauge_window,
    histogram_window,
    parse_window,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_sampler(registry, **kwargs):
    clock = FakeClock()
    sampler = TimeSeriesSampler(registry, clock=clock, **kwargs)
    return sampler, clock


# --------------------------------------------------------------- parse_window
@pytest.mark.parametrize(
    ("label", "seconds"),
    [("10s", 10.0), ("1m", 60.0), ("5m", 300.0), ("500ms", 0.5), ("2h", 7200.0)],
)
def test_parse_window(label, seconds):
    assert parse_window(label) == seconds


@pytest.mark.parametrize("label", ["", "tens", "-5s", "0s", "10x"])
def test_parse_window_rejects_garbage(label):
    with pytest.raises(ValueError):
        parse_window(label)


# -------------------------------------------------------------------- counters
def test_counter_rate_and_delta():
    registry = MetricsRegistry()
    requests = registry.counter("service.requests")
    sampler, clock = make_sampler(registry)

    sampler.sample()
    for _ in range(3):
        clock.advance(1.0)
        requests.inc(10)
        sampler.sample()

    assert sampler.counter_delta("service.requests", 10.0) == 30.0
    assert sampler.counter_rate("service.requests", 10.0) == pytest.approx(10.0)
    stats = counter_window(sampler.series("service.requests"), 10.0)
    assert stats == {"delta": 30.0, "rate": pytest.approx(10.0)}


def test_counter_needs_two_samples():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    sampler, _ = make_sampler(registry)
    assert sampler.counter_rate("c", 10.0) is None
    sampler.sample()
    assert sampler.counter_rate("c", 10.0) is None  # one point: no delta yet


def test_counter_rate_never_negative_after_reset():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    sampler, clock = make_sampler(registry)

    counter.inc(100)
    sampler.sample()
    clock.advance(1.0)
    registry.reset()  # cumulative value drops 100 -> 0
    counter.inc(1)
    sampler.sample()

    rate = sampler.counter_rate("c", 10.0)
    assert rate is not None and rate >= 0.0


# ---------------------------------------------------------------------- gauges
def test_gauge_window_latest_mean_max():
    registry = MetricsRegistry()
    pending = registry.gauge("pending")
    sampler, clock = make_sampler(registry)

    for value in (2.0, 8.0, 5.0):
        pending.set(value)
        sampler.sample()
        clock.advance(1.0)

    stats = gauge_window(sampler.series("pending"), 10.0)
    assert stats["latest"] == 5.0
    assert stats["max"] == 8.0
    assert stats["mean"] == pytest.approx(5.0)
    assert sampler.gauge_stats("pending", 10.0) == stats


# ------------------------------------------------------------------ histograms
def test_histogram_windowed_quantiles_and_rate():
    registry = MetricsRegistry()
    latency = registry.histogram("latency", bounds=(0.01, 0.1, 1.0))
    sampler, clock = make_sampler(registry)

    # Old traffic that must NOT pollute the window: all slow.
    for _ in range(50):
        latency.observe(0.5)
    sampler.sample()
    # Idle ticks age the slow traffic out of the 10s window.
    for _ in range(12):
        clock.advance(1.0)
        sampler.sample()

    # Window traffic: all fast.
    for _ in range(100):
        latency.observe(0.005)
    clock.advance(1.0)
    sampler.sample()

    p99 = sampler.quantile("latency", 0.99, 10.0)
    # Interpolated inside the fast bucket [0, 0.01] — not the stale 1.0.
    assert p99 is not None and 0.005 < p99 <= 0.01

    stats = sampler.histogram_stats("latency", 10.0)
    assert stats["count"] == 100.0
    assert stats["rate"] == pytest.approx(10.0)  # 100 obs over a 10s span
    assert stats["p50"] is not None and 0.0 < stats["p50"] <= 0.01
    window = histogram_window(sampler.series("latency"), 10.0)
    assert window == stats


def test_histogram_overflow_bucket_answers_top_bound():
    registry = MetricsRegistry()
    latency = registry.histogram("latency", bounds=(0.01, 0.1))
    sampler, clock = make_sampler(registry)

    sampler.sample()
    for _ in range(10):
        latency.observe(5.0)  # beyond every finite bucket
    clock.advance(1.0)
    sampler.sample()

    assert sampler.quantile("latency", 0.99, 10.0) == pytest.approx(0.1)


def test_histogram_empty_window_has_no_quantiles():
    registry = MetricsRegistry()
    registry.histogram("latency")
    sampler, clock = make_sampler(registry)
    sampler.sample()
    clock.advance(1.0)
    sampler.sample()
    assert sampler.quantile("latency", 0.99, 10.0) is None


# -------------------------------------------------------------------- sampler
def test_horizon_bounds_memory():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    sampler, clock = make_sampler(registry, interval=1.0, horizon=10.0)
    for _ in range(100):
        counter.inc()
        sampler.sample()
        clock.advance(1.0)
    series = sampler.series("c")
    assert isinstance(series, Series)
    assert len(series.samples()) <= 11  # horizon / interval + 1


def test_include_filters_series():
    registry = MetricsRegistry()
    registry.counter("tenant.a.admitted").inc()
    registry.counter("service.requests").inc()
    sampler, _ = make_sampler(registry, include=("tenant.",))
    sampler.sample()
    assert sampler.names() == ["tenant.a.admitted"]


def test_new_metrics_are_picked_up_mid_flight():
    registry = MetricsRegistry()
    sampler, clock = make_sampler(registry)
    sampler.sample()
    late = registry.counter("late")
    late.inc(5)
    clock.advance(1.0)
    sampler.sample()
    late.inc(5)
    clock.advance(1.0)
    sampler.sample()
    # The birth burst counts too: a counter born between samples gets a
    # zero reference backfilled at the previous sample time.
    assert sampler.counter_delta("late", 10.0) == 10.0


def test_ensure_fresh_samples_at_most_once_per_interval():
    registry = MetricsRegistry()
    registry.counter("c")
    sampler, clock = make_sampler(registry, interval=1.0)
    sampler.ensure_fresh()
    sampler.ensure_fresh()  # same instant: no second sample
    assert sampler.samples_taken == 1
    clock.advance(1.5)
    sampler.ensure_fresh()
    assert sampler.samples_taken == 2


def test_background_thread_starts_and_stops():
    registry = MetricsRegistry()
    registry.counter("c")
    sampler = TimeSeriesSampler(registry, interval=0.01)
    sampler.start()
    try:
        deadline = threading.Event()
        deadline.wait(0.2)
        assert sampler.samples_taken >= 2
    finally:
        sampler.stop()
    taken = sampler.samples_taken
    threading.Event().wait(0.05)
    assert sampler.samples_taken == taken  # ticker actually stopped


def test_windows_payload_shape():
    registry = MetricsRegistry()
    registry.counter("service.requests").inc(5)
    registry.gauge("pending").set(2)
    registry.histogram("latency").observe(0.02)
    sampler, clock = make_sampler(registry)
    sampler.sample()
    clock.advance(1.0)
    registry.counter("service.requests").inc(5)
    sampler.sample()

    payload = sampler.windows_payload()
    assert set(payload["windows"]) == set(DEFAULT_WINDOWS)
    series = payload["series"]
    assert series["service.requests"]["kind"] == "counter"
    ten_s = series["service.requests"]["windows"]["10s"]
    assert ten_s["delta"] == 5.0
    assert series["pending"]["kind"] == "gauge"
    assert series["latency"]["kind"] == "histogram"
    # JSON-safe: everything renders.
    import json

    json.dumps(payload)
