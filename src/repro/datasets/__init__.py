"""Synthetic counterparts of the paper's benchmark datasets."""

from .base import BenchmarkDataset, DatasetBuilder
from .corruption import InjectedError, corrupt_value, inject_errors
from .entity_resolution import (
    AmazonGoogleDataset,
    BeerDataset,
    ItunesAmazonDataset,
    WalmartAmazonDataset,
)
from .error_detection import AdultDataset, HospitalDataset
from .extraction import NBAPlayersDataset
from .imputation import BuyDataset, RestaurantDataset
from .join_discovery import NextiaJDDataset
from .registry import DATASET_REGISTRY, list_datasets, load_dataset
from .table_qa import WikiTableQuestionsDataset
from .transformation import (
    BingQueryLogsDataset,
    StackOverflowDataset,
    TransformationCase,
)

__all__ = [
    "AdultDataset",
    "AmazonGoogleDataset",
    "BeerDataset",
    "BenchmarkDataset",
    "BingQueryLogsDataset",
    "BuyDataset",
    "DATASET_REGISTRY",
    "DatasetBuilder",
    "HospitalDataset",
    "InjectedError",
    "ItunesAmazonDataset",
    "NBAPlayersDataset",
    "NextiaJDDataset",
    "RestaurantDataset",
    "StackOverflowDataset",
    "TransformationCase",
    "WalmartAmazonDataset",
    "WikiTableQuestionsDataset",
    "corrupt_value",
    "inject_errors",
    "list_datasets",
    "load_dataset",
]
