"""Entity resolution benchmarks: Beer, Amazon-Google, iTunes-Amazon, Walmart-Amazon.

These follow the Magellan benchmark setting: two structured tables with the
same schema, a set of candidate record pairs, and a binary label per pair.
Synthetic pairs are built from a clean entity catalogue:

* **positives** are two differently-formatted descriptions of the same entity
  (abbreviations, token reordering, typos, price formatting, edition suffixes);
* **negatives** pair different entities, with a controlled fraction of *hard*
  negatives (same brand / artist / product family) whose textual similarity
  approaches that of the positives.

The per-dataset difficulty (perturbation strength and hard-negative fraction)
reproduces the ordering of Table 4: iTunes-Amazon and Beer are easy,
Walmart-Amazon intermediate, Amazon-Google hard.  Walmart-Amazon also carries a
labelled training split used by the fine-tuning experiment (Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.serialization import serialize_record
from ..core.tasks.entity_resolution import EntityResolutionTask
from ..core.types import TaskType
from ..datalake.schema import Attribute, AttributeType, Schema
from ..datalake.table import Record, Table
from ..llm.finetune import LabeledPair
from ..llm.knowledge import WorldKnowledge
from .base import BenchmarkDataset, DatasetBuilder


@dataclass(frozen=True)
class ERDifficulty:
    """Knobs controlling how ambiguous the candidate pairs are."""

    positive_perturbation: float  # 0 (verbatim copy) .. 1 (heavy rewriting)
    hard_negative_fraction: float
    price_noise: float


def _typo(value: str, rng: np.random.Generator) -> str:
    value = str(value)
    if len(value) < 4:
        return value
    index = int(rng.integers(1, len(value) - 1))
    return value[:index] + value[index + 1 :]


def _drop_token(value: str, rng: np.random.Generator) -> str:
    tokens = str(value).split()
    if len(tokens) <= 2:
        return str(value)
    index = int(rng.integers(len(tokens)))
    return " ".join(t for i, t in enumerate(tokens) if i != index)


def _shuffle_tokens(value: str, rng: np.random.Generator) -> str:
    tokens = str(value).split()
    if len(tokens) <= 2:
        return str(value)
    head, tail = tokens[0], tokens[1:]
    rng.shuffle(tail)
    return " ".join([head] + tail)


_ABBREVIATIONS = {
    "india pale ale": "ipa",
    "imperial stout": "imp stout",
    "professional": "pro",
    "edition": "ed",
    "version": "v",
    "deluxe": "dlx",
    "anniversary": "anniv",
    "company": "co",
    "brewing": "brwg",
    "software": "sw",
    "system": "sys",
    "wireless": "wl",
}


def _abbreviate(value: str, rng: np.random.Generator) -> str:
    out = str(value)
    for long_form, short_form in _ABBREVIATIONS.items():
        if long_form in out and rng.random() < 0.7:
            out = out.replace(long_form, short_form)
    return out


def _perturb_text(value: str, strength: float, rng: np.random.Generator) -> str:
    """Apply a strength-scaled mix of perturbations to a textual value."""
    out = _abbreviate(value, rng)
    if rng.random() < strength:
        out = _drop_token(out, rng)
    if rng.random() < strength * 0.8:
        out = _shuffle_tokens(out, rng)
    if rng.random() < strength * 0.6:
        out = _typo(out, rng)
    return out


class _ERBenchmark(DatasetBuilder):
    """Shared machinery for the four ER datasets."""

    task_type = TaskType.ENTITY_RESOLUTION
    difficulty = ERDifficulty(0.35, 0.25, 0.05)
    domain = "products"
    text_attributes: tuple[str, ...] = ()
    numeric_attributes: tuple[str, ...] = ()

    def __init__(
        self,
        seed: int = 0,
        n_entities: int = 90,
        n_pairs: int = 160,
        positive_fraction: float = 0.40,
        n_train_pairs: int = 200,
    ):
        super().__init__(seed)
        self.n_entities = n_entities
        self.n_pairs = n_pairs
        self.positive_fraction = positive_fraction
        self.n_train_pairs = n_train_pairs

    # -- to be provided by subclasses ------------------------------------------------
    def schema(self) -> Schema:
        raise NotImplementedError

    def make_entity(self, index: int) -> dict[str, object]:
        raise NotImplementedError

    def hard_sibling(self, entity: dict[str, object]) -> dict[str, object]:
        """A different real-world entity that looks similar to ``entity``."""
        raise NotImplementedError

    # -- pair construction --------------------------------------------------------------
    def _perturbed_copy(self, entity: dict[str, object]) -> dict[str, object]:
        strength = self.difficulty.positive_perturbation
        out: dict[str, object] = {}
        for key, value in entity.items():
            if key in self.numeric_attributes:
                noise = 1.0 + float(self.rng.normal(0.0, self.difficulty.price_noise))
                try:
                    out[key] = round(float(value) * max(noise, 0.01), 2)
                except (TypeError, ValueError):
                    out[key] = value
            elif key in self.text_attributes:
                out[key] = _perturb_text(str(value), strength, self.rng)
            else:
                out[key] = value
        return out

    def _build_pairs(
        self, n_pairs: int
    ) -> tuple[list[tuple[dict, dict]], list[bool]]:
        entities = [self.make_entity(i) for i in range(self.n_entities)]
        pairs: list[tuple[dict, dict]] = []
        labels: list[bool] = []
        n_pos = int(round(n_pairs * self.positive_fraction))
        for _ in range(n_pos):
            entity = self.choice(entities)
            pairs.append((entity, self._perturbed_copy(entity)))
            labels.append(True)
        n_neg = n_pairs - n_pos
        n_hard = int(round(n_neg * self.difficulty.hard_negative_fraction))
        for i in range(n_neg):
            entity = self.choice(entities)
            if i < n_hard:
                other = self.hard_sibling(entity)
            else:
                other = self.choice([e for e in entities if e is not entity])
                other = self._perturbed_copy(other)
            pairs.append((entity, other))
            labels.append(False)
        order = self.rng.permutation(len(pairs))
        pairs = [pairs[int(i)] for i in order]
        labels = [labels[int(i)] for i in order]
        return pairs, labels

    # -- dataset assembly -----------------------------------------------------------------
    def build(self) -> BenchmarkDataset:
        schema = self.schema()
        table_a = Table(f"{self.name}_a", schema)
        table_b = Table(f"{self.name}_b", schema)
        knowledge = WorldKnowledge()
        self._register_knowledge(knowledge)

        pairs, labels = self._build_pairs(self.n_pairs)
        tasks: list[EntityResolutionTask] = []
        for left, right in pairs:
            record_a = table_a.append({k: left.get(k) for k in schema.names})
            record_b = table_b.append({k: right.get(k) for k in schema.names})
            tasks.append(EntityResolutionTask(record_a, record_b))

        train_pairs: list[LabeledPair] = []
        if self.n_train_pairs > 0:
            raw_pairs, raw_labels = self._build_pairs(self.n_train_pairs)
            for (left, right), label in zip(raw_pairs, raw_labels):
                record_a = Record(schema, {k: left.get(k) for k in schema.names})
                record_b = Record(schema, {k: right.get(k) for k in schema.names})
                train_pairs.append(
                    LabeledPair(
                        left=serialize_record(record_a),
                        right=serialize_record(record_b),
                        label=label,
                    )
                )

        return BenchmarkDataset(
            name=self.name,
            task_type=self.task_type,
            tables={table_a.name: table_a, table_b.name: table_b},
            knowledge=knowledge,
            tasks=tasks,
            ground_truth=labels,
            train_pairs=train_pairs,
            extra={"domain": self.domain},
        )

    def _register_knowledge(self, knowledge: WorldKnowledge) -> None:
        for long_form, short_form in _ABBREVIATIONS.items():
            knowledge.add_equivalence(long_form, short_form)


# --------------------------------------------------------------------------
# Beer
# --------------------------------------------------------------------------

_BEER_ADJECTIVES = ["hoppy", "golden", "dark", "wild", "old", "burning", "frozen", "velvet"]
_BEER_NOUNS = ["river", "fox", "anchor", "summit", "harbor", "meadow", "raven", "canyon"]
_BEER_STYLES = ["india pale ale", "imperial stout", "pilsner", "amber lager", "wheat ale", "porter"]
_BREWERIES = [
    "stone brewing company", "cascade brewing", "north coast brewing company",
    "blue point brewing", "lakefront brewing", "highland brewing company",
]


class BeerDataset(_ERBenchmark):
    """Beer ER benchmark (easy: distinctive names, light perturbation)."""

    name = "beer"
    domain = "beverages"
    difficulty = ERDifficulty(positive_perturbation=0.45, hard_negative_fraction=0.40, price_noise=0.04)
    text_attributes = ("beer_name", "brewery", "style")
    numeric_attributes = ("abv",)

    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("beer_name", primary_key=True, domain="beverages"),
                Attribute("brewery", domain="beverages"),
                Attribute("style", AttributeType.CATEGORICAL, domain="beverages"),
                Attribute("abv", AttributeType.NUMERIC),
            ]
        )

    def make_entity(self, index: int) -> dict[str, object]:
        name = (
            f"{_BEER_ADJECTIVES[index % len(_BEER_ADJECTIVES)]} "
            f"{_BEER_NOUNS[(index // len(_BEER_ADJECTIVES)) % len(_BEER_NOUNS)]} "
            f"{self.choice(_BEER_STYLES)}"
        )
        return {
            "beer_name": name,
            "brewery": self.choice(_BREWERIES),
            "style": self.choice(_BEER_STYLES),
            "abv": round(float(self.rng.uniform(4.0, 11.0)), 1),
        }

    def hard_sibling(self, entity: dict[str, object]) -> dict[str, object]:
        # Same brewery and style, but a genuinely different beer: this fools a
        # global-similarity matcher (most fields agree) while a reader that
        # attends to the beer name tells them apart.
        sibling = self.make_entity(int(self.rng.integers(self.n_entities)))
        sibling["brewery"] = entity["brewery"]
        sibling["style"] = entity["style"]
        return sibling


# --------------------------------------------------------------------------
# Amazon-Google (software products, hard)
# --------------------------------------------------------------------------

_SOFTWARE_BRANDS = ["punch software", "adobe", "microsoft", "intuit", "corel", "symantec", "nuance"]
_SOFTWARE_LINES = [
    "home design architectural series", "photoshop elements", "office small business",
    "quickbooks premier", "paint shop pro", "norton internet security", "dragon naturallyspeaking",
]
_EDITIONS = ["standard", "professional", "deluxe", "premier", "academic"]


class AmazonGoogleDataset(_ERBenchmark):
    """Amazon-Google ER benchmark (hard: near-duplicate versions and editions)."""

    name = "amazon_google"
    domain = "products.software"
    difficulty = ERDifficulty(positive_perturbation=0.75, hard_negative_fraction=0.65, price_noise=0.35)
    text_attributes = ("title", "manufacturer")
    numeric_attributes = ("price",)

    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("title", primary_key=True, domain="products.software"),
                Attribute("manufacturer", domain="products.software"),
                Attribute("price", AttributeType.NUMERIC),
            ]
        )

    def make_entity(self, index: int) -> dict[str, object]:
        brand = _SOFTWARE_BRANDS[index % len(_SOFTWARE_BRANDS)]
        line = _SOFTWARE_LINES[index % len(_SOFTWARE_LINES)]
        version = int(self.rng.integers(1, 20))
        edition = self.choice(_EDITIONS)
        return {
            "title": f"{brand} {line} {version} {edition} edition",
            "manufacturer": brand,
            "price": round(float(self.rng.uniform(19, 499)), 2),
        }

    def hard_sibling(self, entity: dict[str, object]) -> dict[str, object]:
        sibling = dict(entity)
        title = str(entity["title"])
        tokens = title.split()
        # Same product family, different version/edition: classic hard negative.
        for i, token in enumerate(tokens):
            if token.isdigit():
                tokens[i] = str(int(token) + int(self.rng.integers(1, 8)))
                break
        sibling["title"] = " ".join(tokens).replace(
            str(entity["title"]).split()[-2], self.choice(_EDITIONS)
        )
        # Vendors often list adjacent versions at the same price point, so the
        # numeric features do not give the pair away either.
        if self.rng.random() < 0.5:
            sibling["price"] = entity["price"]
        else:
            sibling["price"] = round(float(self.rng.uniform(19, 499)), 2)
        return sibling


# --------------------------------------------------------------------------
# iTunes-Amazon (songs, easy)
# --------------------------------------------------------------------------

_ARTISTS = ["the blue herons", "maya lane", "dj orbit", "static fields", "aurora kane", "the wandering"]
_SONG_WORDS = ["midnight", "river", "echoes", "golden", "fading", "summer", "shadow", "neon", "quiet"]
_ALBUMS = ["first light", "city maps", "afterglow", "paper moons", "silver lines"]


class ItunesAmazonDataset(_ERBenchmark):
    """iTunes-Amazon ER benchmark (easy: titles plus artist/album/time agree)."""

    name = "itunes_amazon"
    domain = "music"
    difficulty = ERDifficulty(positive_perturbation=0.40, hard_negative_fraction=0.35, price_noise=0.05)
    text_attributes = ("song", "artist", "album")
    numeric_attributes = ("price",)

    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("song", primary_key=True, domain="music"),
                Attribute("artist", domain="music"),
                Attribute("album", domain="music"),
                Attribute("time", domain="music"),
                Attribute("price", AttributeType.NUMERIC),
            ]
        )

    def make_entity(self, index: int) -> dict[str, object]:
        song = (
            f"{_SONG_WORDS[index % len(_SONG_WORDS)]} "
            f"{_SONG_WORDS[(index * 3 + 1) % len(_SONG_WORDS)]}"
        )
        return {
            "song": song,
            "artist": _ARTISTS[index % len(_ARTISTS)],
            "album": self.choice(_ALBUMS),
            "time": f"{int(self.rng.integers(2, 6))}:{int(self.rng.integers(0, 60)):02d}",
            "price": round(float(self.rng.uniform(0.69, 1.29)), 2),
        }

    def hard_sibling(self, entity: dict[str, object]) -> dict[str, object]:
        sibling = dict(self.make_entity(int(self.rng.integers(self.n_entities))))
        sibling["artist"] = entity["artist"]
        sibling["album"] = entity["album"]
        return sibling


# --------------------------------------------------------------------------
# Walmart-Amazon (electronics, medium) — also the fine-tuning split (Table 5)
# --------------------------------------------------------------------------

_ELECTRONICS_BRANDS = ["sony", "samsung", "hp", "dell", "canon", "garmin", "logitech", "toshiba"]
_ELECTRONICS_ITEMS = [
    "wireless mouse", "laptop computer", "digital camera", "gps navigator",
    "led monitor", "inkjet printer", "bluetooth headset", "external hard drive",
]


class WalmartAmazonDataset(_ERBenchmark):
    """Walmart-Amazon ER benchmark (medium difficulty, with a training split)."""

    name = "walmart_amazon"
    domain = "products.electronics"
    difficulty = ERDifficulty(positive_perturbation=0.60, hard_negative_fraction=0.60, price_noise=0.20)
    text_attributes = ("title", "brand")
    numeric_attributes = ("price",)

    def __init__(
        self,
        seed: int = 0,
        n_entities: int = 90,
        n_pairs: int = 160,
        positive_fraction: float = 0.40,
        n_train_pairs: int = 600,
    ):
        super().__init__(
            seed=seed,
            n_entities=n_entities,
            n_pairs=n_pairs,
            positive_fraction=positive_fraction,
            n_train_pairs=n_train_pairs,
        )

    def schema(self) -> Schema:
        return Schema(
            [
                Attribute("title", primary_key=True, domain="products.electronics"),
                Attribute("brand", domain="products.electronics"),
                Attribute("model", AttributeType.IDENTIFIER),
                Attribute("price", AttributeType.NUMERIC),
            ]
        )

    def make_entity(self, index: int) -> dict[str, object]:
        brand = _ELECTRONICS_BRANDS[index % len(_ELECTRONICS_BRANDS)]
        item = _ELECTRONICS_ITEMS[(index // len(_ELECTRONICS_BRANDS)) % len(_ELECTRONICS_ITEMS)]
        model = f"{brand[:2].upper()}-{int(self.rng.integers(100, 9999))}"
        return {
            "title": f"{brand} {item} {model}",
            "brand": brand,
            "model": model,
            "price": round(float(self.rng.uniform(15, 899)), 2),
        }

    def hard_sibling(self, entity: dict[str, object]) -> dict[str, object]:
        sibling = dict(entity)
        model = f"{str(entity['brand'])[:2].upper()}-{int(self.rng.integers(100, 9999))}"
        sibling["model"] = model
        sibling["title"] = f"{entity['brand']} {self.choice(_ELECTRONICS_ITEMS)} {model}"
        sibling["price"] = round(float(self.rng.uniform(15, 899)), 2)
        return sibling
