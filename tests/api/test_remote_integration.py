"""Integration: Client.remote against an in-process TCP service.

The acceptance contract of the API redesign: for the same seed and the same
spec, ``Client.local(...)`` and ``Client.remote(...)`` return identical
answers across **all seven** task types — the spec, not the transport, is
the request.
"""

import asyncio
import threading

import pytest

from repro.api import Client, TransformationSpec, TransportError
from repro.serving import build_service


@pytest.fixture
def remote_port():
    """A real TCP service (fresh seed-0 stack) running on a background loop."""
    service = build_service(seed=0, batch_size=4, workers=4)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    holder = {}

    def run() -> None:
        asyncio.set_event_loop(loop)
        server = loop.run_until_complete(service.start_tcp("127.0.0.1", 0))
        holder["port"] = server.sockets[0].getsockname()[1]
        ready.set()
        loop.run_forever()
        server.close()
        loop.run_until_complete(server.wait_closed())
        loop.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "TCP service did not start"
    yield holder["port"]
    loop.call_soon_threadsafe(loop.stop)
    thread.join(10)


def test_local_and_remote_agree_on_all_seven_task_types(remote_port, all_seven):
    local = Client.local(seed=0, batch_size=4, workers=4)
    remote = Client.remote("127.0.0.1", remote_port)
    for spec in all_seven:
        local_result = local.submit(spec)
        remote_result = remote.submit(spec)
        assert remote_result.answer == local_result.answer, type(spec).__name__
        assert remote_result.task_type == local_result.task_type
        assert remote_result.tokens == local_result.tokens
        assert remote_result.calls == local_result.calls
        assert remote_result.ok and local_result.ok


def test_remote_submit_many_and_async(remote_port):
    remote = Client.remote("127.0.0.1", remote_port)
    specs = [
        TransformationSpec(value="a", examples=[["x", "X"]]),
        TransformationSpec(value="b", examples=[["x", "X"]]),
    ]
    sync_results = remote.submit_many(specs)
    async_results = asyncio.run(remote.asubmit_many(specs))
    assert [r.ok for r in sync_results] == [True, True]
    # Both batches hit a warmed same-prompt cache, so answers agree.
    assert [r.answer for r in async_results] == [r.answer for r in sync_results]


def test_remote_errors_are_structured(remote_port):
    remote = Client.remote("127.0.0.1", remote_port)

    class Hostile(TransformationSpec):
        def to_request(self):
            return {"type": "transformation", "value": "x", "examples": [["only-one"]]}

    results = remote.submit_many([Hostile(value="x", examples=[["a", "b"]])])
    assert not results[0].ok
    assert results[0].error.code == "invalid_request"
    assert results[0].error.field == "examples"


def test_remote_v1_flat_request_still_served(remote_port):
    # Drive the raw v1 line protocol through the remote backend's socket path.
    remote = Client.remote("127.0.0.1", remote_port)
    responses = remote._backend.send(
        [{"id": 5, "type": "extraction", "document": "Ada wrote programs.", "attribute": "name"}]
    )
    assert responses[0]["ok"] is True
    assert "answer" in responses[0] and "result" not in responses[0]


def test_unreachable_service_raises_transport_error():
    client = Client.remote("127.0.0.1", 1, timeout=0.5)
    with pytest.raises(TransportError):
        client.submit(TransformationSpec(value="x", examples=[["a", "b"]]))
