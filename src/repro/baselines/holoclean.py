"""HoloClean baseline (Rekatsinas et al. 2017) — statistical repair & detection.

HoloClean frames cleaning as probabilistic inference over co-occurrence
statistics and integrity signals.  The reproduction keeps its algorithmic core
at laptop scale:

* **imputation**: the missing value is predicted as the value that maximises
  the product of smoothed conditional co-occurrence probabilities with the
  record's observed attribute values (a naive-Bayes style factor model learned
  from the clean part of the table);
* **error detection**: a cell is flagged when its value is a statistical
  outlier for the attribute (very low relative frequency) or conflicts with
  frequent functional pairs observed in the rest of the table.

Both use only value-level statistics (no string semantics), which is exactly
why the method trails the learned and LLM-based approaches on the benchmarks
with near-unique attribute values (Table 1) while remaining a reasonable
detector of repeated-domain typos (Table 3).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any

from ..core.tasks.error_detection import ErrorDetectionTask
from ..core.tasks.imputation import ImputationTask
from ..core.types import TaskType
from ..datalake.table import Table, is_missing
from ..datasets.base import BenchmarkDataset
from .base import Baseline


class HoloCleanImputer(Baseline):
    """Co-occurrence factor model for missing-value imputation."""

    name = "HoloClean"

    def __init__(self, seed: int = 0, smoothing: float = 0.1):
        super().__init__(seed)
        self.smoothing = smoothing

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.DATA_IMPUTATION)
        predictions: list[Any] = []
        for task in dataset.tasks:
            if not isinstance(task, ImputationTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            predictions.append(self._impute(task.table(), task))
        return predictions

    def _impute(self, table: Table, task: ImputationTask) -> str:
        target = task.attribute
        record = task.record
        candidates = [v for v in table.distinct(target)]
        if not candidates:
            return "unknown"

        # Conditional co-occurrence counts P(target | other attribute value).
        cooccurrence: dict[tuple[str, Any], Counter] = defaultdict(Counter)
        prior: Counter = Counter()
        for other in table:
            value = other[target]
            if is_missing(value):
                continue
            prior[value] += 1
            for attribute in table.schema.names:
                if attribute == target or is_missing(other[attribute]):
                    continue
                cooccurrence[(attribute, other[attribute])][value] += 1

        best_value, best_score = None, float("-inf")
        total = sum(prior.values())
        for candidate in candidates:
            score = (prior[candidate] + self.smoothing) / (total + self.smoothing * len(candidates))
            log_score = _safe_log(score)
            for attribute in table.schema.names:
                if attribute == target or is_missing(record[attribute]):
                    continue
                counts = cooccurrence.get((attribute, record[attribute]))
                if not counts:
                    continue
                conditional = (counts[candidate] + self.smoothing) / (
                    sum(counts.values()) + self.smoothing * len(candidates)
                )
                log_score += _safe_log(conditional)
            if log_score > best_score:
                best_value, best_score = candidate, log_score
        return str(best_value)


class HoloCleanDetector(Baseline):
    """Frequency / co-occurrence based error detector."""

    name = "HoloClean"

    def __init__(self, seed: int = 0, rare_threshold: int = 1):
        super().__init__(seed)
        self.rare_threshold = rare_threshold

    def predict_dataset(self, dataset: BenchmarkDataset) -> list[Any]:
        self._check_task_type(dataset, TaskType.ERROR_DETECTION)
        frequency_cache: dict[tuple[str, str], Counter] = {}
        predictions: list[Any] = []
        for task in dataset.tasks:
            if not isinstance(task, ErrorDetectionTask):
                raise TypeError(f"unexpected task type {type(task)!r}")
            table = task.table()
            key = (table.name, task.attribute)
            if key not in frequency_cache:
                frequency_cache[key] = Counter(
                    v for v in table.column(task.attribute) if not is_missing(v)
                )
            counts = frequency_cache[key]
            predictions.append(counts[task.record[task.attribute]] <= self.rare_threshold)
        return predictions


def _safe_log(x: float) -> float:
    import math

    return math.log(max(x, 1e-12))
