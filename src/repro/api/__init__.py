"""Unified client API: typed task specs, a versioned protocol, one facade.

The paper's thesis is a *single* interface to every data-manipulation task;
this package is that interface at the system level.  It has three layers:

* :mod:`repro.api.specs` — one typed ``TaskSpec`` per task (all seven),
  validating requests and round-tripping through the wire form via a single
  registry;
* :mod:`repro.api.protocol` — the versioned envelope (v2 native, v1 still
  accepted) and structured :class:`~repro.api.errors.ErrorInfo` objects;
* :mod:`repro.api.client` — the :class:`Client` facade, offering identical
  ``submit`` / ``submit_many`` / ``asubmit_many`` semantics over the
  in-process engine (``Client.local``) and the TCP service
  (``Client.remote``).

Quickstart::

    from repro.api import Client, TransformationSpec

    with Client.local(seed=0) as client:
        result = client.submit(
            TransformationSpec(value="19990415", examples=[["20000101", "2000-01-01"]])
        )
        print(result.answer)   # "1999-04-15"
"""

from .client import Client
from .errors import (
    ERROR_CODES,
    ApiError,
    ErrorInfo,
    InvalidRequestError,
    OverloadedError,
    ProtocolError,
    RateLimitedError,
    TaskFailedError,
    TransportError,
    UnknownTaskTypeError,
)
from .protocol import (
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    ParsedRequest,
    decode_response,
    encode_error,
    encode_request,
    encode_success,
    parse_request,
    request_version,
)
from .pipeline_spec import PipelineSpec
from .results import TaskResult
from .stats_spec import StatsSpec
from .specs import (
    SPEC_TYPES,
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    TableQASpec,
    TaskSpec,
    TransformationSpec,
    register_spec,
    spec_from_request,
    task_types,
)

__all__ = [
    "ApiError",
    "Client",
    "ERROR_CODES",
    "EntityResolutionSpec",
    "ErrorDetectionSpec",
    "ErrorInfo",
    "ExtractionSpec",
    "ImputationSpec",
    "InvalidRequestError",
    "JoinDiscoverySpec",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "ParsedRequest",
    "PipelineSpec",
    "ProtocolError",
    "RateLimitedError",
    "SPEC_TYPES",
    "SUPPORTED_VERSIONS",
    "StatsSpec",
    "TableQASpec",
    "TaskFailedError",
    "TaskResult",
    "TaskSpec",
    "TransformationSpec",
    "TransportError",
    "UnknownTaskTypeError",
    "decode_response",
    "encode_error",
    "encode_request",
    "encode_success",
    "parse_request",
    "request_version",
    "register_spec",
    "spec_from_request",
    "task_types",
]
