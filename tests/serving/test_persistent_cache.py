"""Unit tests for the disk-backed completion cache."""

import json

import pytest

from repro.serving import PersistentCache, prompt_key


def test_roundtrip_and_contains(tmp_path):
    cache = PersistentCache(tmp_path / "c")
    assert cache.get("p") is None
    cache.put("p", "completion")
    assert cache.get("p") == "completion"
    assert "p" in cache and "q" not in cache
    assert len(cache) == 1


def test_entries_survive_reopening(tmp_path):
    first = PersistentCache(tmp_path / "c")
    first.put("prompt one", "a")
    first.put("prompt two", "b")
    reopened = PersistentCache(tmp_path / "c")
    assert reopened.get("prompt one") == "a"
    assert reopened.get("prompt two") == "b"
    assert len(reopened) == 2


def test_last_write_wins_across_processes(tmp_path):
    cache = PersistentCache(tmp_path / "c")
    cache.put("p", "old")
    cache.put("p", "new")
    assert cache.get("p") == "new"
    assert PersistentCache(tmp_path / "c").get("p") == "new"


def test_identical_put_is_not_reappended(tmp_path):
    cache = PersistentCache(tmp_path / "c", shards=1)
    cache.put("p", "same")
    cache.put("p", "same")
    shard = tmp_path / "c" / "shard-00.jsonl"
    assert len(shard.read_text().strip().splitlines()) == 1


def test_keys_spread_over_shards(tmp_path):
    cache = PersistentCache(tmp_path / "c", shards=4)
    for i in range(40):
        cache.put(f"prompt {i}", "x")
    shards = list((tmp_path / "c").glob("shard-*.jsonl"))
    assert len(shards) > 1
    assert len(PersistentCache(tmp_path / "c", shards=4)) == 40


def test_torn_final_line_is_skipped(tmp_path):
    cache = PersistentCache(tmp_path / "c", shards=1)
    cache.put("p", "ok")
    shard = tmp_path / "c" / "shard-00.jsonl"
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"key": "abc", "te')  # simulated crash mid-write
    reopened = PersistentCache(tmp_path / "c", shards=1)
    assert reopened.get("p") == "ok"
    assert len(reopened) == 1


def test_clear_deletes_shards(tmp_path):
    cache = PersistentCache(tmp_path / "c")
    cache.put("p", "x")
    cache.clear()
    assert len(cache) == 0
    assert not list((tmp_path / "c").glob("shard-*.jsonl"))
    assert PersistentCache(tmp_path / "c").get("p") is None


def test_compact_rewrites_one_line_per_key(tmp_path):
    cache = PersistentCache(tmp_path / "c", shards=1)
    for value in ("v1", "v2", "v3"):
        cache.put("p", value)
    shard = tmp_path / "c" / "shard-00.jsonl"
    assert len(shard.read_text().strip().splitlines()) == 3
    cache.compact()
    lines = shard.read_text().strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0]) == {"key": prompt_key("p"), "text": "v3"}


def test_rejects_nonpositive_shards(tmp_path):
    with pytest.raises(ValueError):
        PersistentCache(tmp_path / "c", shards=0)


# ------------------------------------------------------- cluster shard handoff
def test_concurrent_writers_on_disjoint_shard_dirs(tmp_path):
    """Cluster regime: N workers each append to their own shard directory."""
    import threading

    def warm(worker_index: int) -> None:
        shard = PersistentCache(tmp_path / f"worker-{worker_index:02d}")
        for i in range(40):
            shard.put(f"worker {worker_index} prompt {i}", f"answer {i}")

    threads = [threading.Thread(target=warm, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for worker_index in range(4):
        reopened = PersistentCache(tmp_path / f"worker-{worker_index:02d}")
        assert len(reopened) == 40
        assert reopened.get(f"worker {worker_index} prompt 7") == "answer 7"
        # Handoff stays local: no worker sees another worker's entries.
        assert reopened.get(f"worker {(worker_index + 1) % 4} prompt 7") is None


def test_concurrent_writers_through_one_cache_instance(tmp_path):
    """Thread-safety of one shard under parallel appends (engine threads)."""
    import threading

    cache = PersistentCache(tmp_path / "c", shards=4)

    def write(prefix: str) -> None:
        for i in range(50):
            cache.put(f"{prefix} prompt {i}", f"{prefix} answer {i}")

    threads = [threading.Thread(target=write, args=(f"t{t}",)) for t in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(cache) == 400
    reopened = PersistentCache(tmp_path / "c", shards=4)
    assert len(reopened) == 400
    assert reopened.get("t3 prompt 17") == "t3 answer 17"


def test_reopen_after_crash_with_torn_line_mid_file(tmp_path):
    """A torn line anywhere in a shard is skipped; later entries survive.

    An interrupted writer can leave a truncated record that other processes
    append after (the cluster handoff case: a worker dies mid-put and a
    fresh worker re-opens + extends the same shard directory).
    """
    cache = PersistentCache(tmp_path / "c", shards=1)
    cache.put("before", "kept")
    shard = tmp_path / "c" / "shard-00.jsonl"
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"key": "deadbeef", "text": "tru\n')  # crash mid-record
    survivor = PersistentCache(tmp_path / "c", shards=1)
    survivor.put("after", "also kept")
    reopened = PersistentCache(tmp_path / "c", shards=1)
    assert reopened.get("before") == "kept"
    assert reopened.get("after") == "also kept"
    assert len(reopened) == 2
