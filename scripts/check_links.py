#!/usr/bin/env python
"""Offline markdown link checker for the README and the docs tree.

Walks the given markdown files (and directories of them), extracts
``[text](target)`` links outside fenced code blocks, and verifies that

* relative file targets exist on disk (anchored at the linking file), and
* ``#anchor`` fragments — same-file or cross-file — match a heading in the
  target document (GitHub-style slugs).

External links (``http://``, ``https://``, ``mailto:``) are skipped: CI has
no network and this reproduction links nowhere that needs one.

Usage::

    python scripts/check_links.py README.md docs

Exit status is non-zero when any link is broken, printing one line per
offence.  CI runs this next to ``gen_protocol_docs.py --check``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_PATTERN = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> set[str]:
    slugs: set[str] = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_PATTERN.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_PATTERN.match(line)
        if match:
            slugs.add(slugify(match.group(1)))
    return slugs


def links_in(path: Path) -> list[str]:
    links: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_PATTERN.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Strip inline code spans so `[a](b)` examples are not treated as links.
        line = re.sub(r"`[^`]*`", "", line)
        links.extend(match.group(1) for match in LINK_PATTERN.finditer(line))
    return links


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for target in links_in(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if anchor:
            if resolved.suffix.lower() not in {".md", ".markdown"}:
                continue  # anchors into non-markdown files are not checked
            if slugify(anchor) not in heading_slugs(resolved):
                problems.append(f"{path}: missing anchor -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    if not arguments:
        arguments = ["README.md", "docs"]
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"no such file or directory: {argument}", file=sys.stderr)
            return 2
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s).", file=sys.stderr)
        return 1
    print(f"all links ok across {checked} markdown file(s).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
