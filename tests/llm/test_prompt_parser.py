"""Unit tests for prompt classification and parsing."""

from repro.llm.prompt_parser import (
    AnswerStyle,
    ContextFormat,
    PromptKind,
    classify,
    detect_context_format,
    detect_task_name,
    parse_answer,
    parse_cloze_construction,
    parse_data_parsing,
    parse_instance_retrieval,
    parse_meta_retrieval,
    parse_pairs,
)
from repro.prompting import (
    CLOZE_CONSTRUCTION,
    DATA_PARSING,
    DIRECT_ANSWER,
    INSTANCE_RETRIEVAL,
    META_RETRIEVAL,
    render_demonstrations,
)


def test_classify_all_prompt_kinds():
    meta = META_RETRIEVAL.render(task="data imputation", query="Copenhagen, timezone", candidates="country, population")
    inst = INSTANCE_RETRIEVAL.render(task="data imputation", query="Copenhagen, timezone", instances="1) city: Florence")
    parse = DATA_PARSING.render(serialized="city: Florence, country: Italy")
    cloze = CLOZE_CONSTRUCTION.render(
        demonstrations=render_demonstrations(), task_description="data imputation which ...",
        context="Florence is in Italy", query="Copenhagen, timezone",
    )
    assert classify(meta) is PromptKind.META_RETRIEVAL
    assert classify(inst) is PromptKind.INSTANCE_RETRIEVAL
    assert classify(parse) is PromptKind.DATA_PARSING
    assert classify(cloze) is PromptKind.CLOZE_CONSTRUCTION
    assert classify("The timezone of Copenhagen is __.") is PromptKind.ANSWER


def test_parse_meta_retrieval_fields():
    prompt = META_RETRIEVAL.render(
        task="data imputation", query="Copenhagen, timezone",
        candidates="country, population, postalcode",
    )
    parsed = parse_meta_retrieval(prompt)
    assert parsed.task == "data imputation"
    assert parsed.query == "Copenhagen, timezone"
    assert parsed.candidates == ["country", "population", "postalcode"]


def test_parse_instance_retrieval_lines():
    prompt = INSTANCE_RETRIEVAL.render(
        task="data imputation", query="Copenhagen, timezone",
        instances="1) city: Florence, country: Italy\n2) city: London, country: UK",
    )
    parsed = parse_instance_retrieval(prompt)
    assert len(parsed.instances) == 2
    assert parsed.instances[0][0] == 1
    assert "Florence" in parsed.instances[0][1]


def test_parse_pairs_handles_spaces_and_punctuation():
    pairs = parse_pairs("name: golden dragon bistro, addr: 7219 wilshire blvd, phone: 310-941-7013")
    assert ("name", "golden dragon bistro") in pairs
    assert ("phone", "310-941-7013") in pairs


def test_parse_data_parsing_rows():
    prompt = DATA_PARSING.render(
        serialized="city: Florence, country: Italy\ncity: Alicante, country: Spain"
    )
    parsed = parse_data_parsing(prompt)
    assert len(parsed.rows) == 2
    assert parsed.rows[0][0] == ("city", "Florence")


def test_parse_cloze_construction_extracts_final_claim():
    prompt = CLOZE_CONSTRUCTION.render(
        demonstrations=render_demonstrations(),
        task_description="data imputation which produces the missing data.",
        context="Florence is a city in the country Italy.",
        query="Copenhagen, timezone",
    )
    parsed = parse_cloze_construction(prompt)
    assert parsed.task_name == "data imputation"
    assert "Florence" in parsed.context
    assert parsed.query == "Copenhagen, timezone"


def test_detect_task_name():
    assert detect_task_name("The task is entity resolution which ...") == "entity resolution"
    assert detect_task_name("nothing relevant") == "unknown"


def test_detect_context_format():
    assert detect_context_format("") is ContextFormat.NONE
    assert detect_context_format("city: Florence, country: Italy") is ContextFormat.PAIRS
    assert detect_context_format("Florence is a city in Italy.") is ContextFormat.NATURAL


def test_parse_answer_cloze_imputation():
    prompt = (
        "The task is to impute the missing value. Florence is a city in the country Italy. "
        "The timezone of Copenhagen is __."
    )
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.CLOZE
    assert parsed.task == "data imputation"
    assert parsed.entity == "Copenhagen"
    assert parsed.attribute == "timezone"


def test_parse_answer_cloze_entity_not_polluted_by_context():
    prompt = (
        "north star noodle house is located in the city of atlanta. "
        "The city of ivory coast cantina is __."
    )
    parsed = parse_answer(prompt)
    assert parsed.entity == "ivory coast cantina"
    assert parsed.attribute == "city"


def test_parse_answer_direct_prompt():
    prompt = DIRECT_ANSWER.render(
        task="data imputation",
        context="city: Florence, country: Italy",
        query="Copenhagen, timezone",
    )
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.DIRECT
    assert parsed.entity == "Copenhagen"
    assert parsed.attribute == "timezone"
    assert parsed.context_format is ContextFormat.PAIRS


def test_parse_answer_fm_imputation():
    prompt = (
        "name: oceana, addr: 55 e. 54th st., type: seafood. What is the city? new york\n"
        "name: ruth's chris steak house, addr: 224 s. beverly dr., type: steakhouses. What is the city?"
    )
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.FM
    assert parsed.task == "data imputation"
    assert parsed.attribute == "city"
    assert parsed.entity == "ruth's chris steak house"
    assert "oceana" in parsed.context_text


def test_parse_answer_fm_error_detection():
    parsed = parse_answer("Is there an error in city: sheffxeld? Yes or No.")
    assert parsed.task == "error detection"
    assert parsed.attribute == "city"
    assert parsed.value == "sheffxeld"


def test_parse_answer_cloze_error_detection():
    prompt = (
        'The task is to detect whether the value contains an error. '
        'It is required to identify if there is an error in the city "sheffxeld". '
        "Is there an error in the city? Yes or No."
    )
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.CLOZE
    assert parsed.task == "error detection"
    assert parsed.attribute == "city"
    assert parsed.value == "sheffxeld"


def test_parse_answer_entity_resolution_cloze():
    prompt = (
        "Entity A is title: punch home design 4000, price: 199.99, whereas "
        "Entity B is title: punch home design 18, price: 18.99. "
        "Are these two entities the same? Yes or No."
    )
    parsed = parse_answer(prompt)
    assert parsed.task == "entity resolution"
    assert "4000" in parsed.entity_a
    assert "18.99" in parsed.entity_b


def test_parse_answer_fm_entity_resolution():
    prompt = (
        "Entity A is title: sony camera. Entity B is title: canon camera. "
        "Are Entity A and Entity B the same? Yes or No."
    )
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.FM
    assert parsed.task == "entity resolution"
    assert "sony" in parsed.entity_a


def test_parse_answer_transformation_cloze():
    prompt = (
        "20000101 can be transformed to 2000-01-01. "
        "19990415 can be transformed to __."
    )
    parsed = parse_answer(prompt)
    assert parsed.task == "data transformation"
    assert parsed.source == "19990415"
    assert ("20000101", "2000-01-01") in parsed.example_pairs


def test_parse_answer_fm_transformation():
    prompt = "20000101 to 2000-01-01\n19990415 to"
    parsed = parse_answer(prompt)
    assert parsed.style is AnswerStyle.FM
    assert parsed.task == "data transformation"
    assert parsed.source == "19990415"
    assert ("20000101", "2000-01-01") in parsed.example_pairs


def test_parse_answer_join_and_extraction_and_tableqa():
    join = parse_answer('Column "a.x" contains GER and ITA. Are the two columns joinable? Yes or No.')
    assert join.task == "join discovery"
    extraction = parse_answer("Kevin Durant is a basketball player. The player is __.")
    assert extraction.task == "information extraction"
    assert extraction.attribute == "player"
    qa = parse_answer("Australia won 2 gold medals. Question: how many gold medals did Australia win? The answer is __.")
    assert qa.task == "table question answering"
    assert "Australia" in qa.question
