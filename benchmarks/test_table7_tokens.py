"""Benchmark: regenerate Table 7 (per-query token consumption)."""

from conftest import run_once

from repro.experiments import table7_tokens


def test_table7_tokens(benchmark):
    rows = run_once(benchmark, table7_tokens.run, seed=0, max_tasks=10)
    by_key = {(row["dataset"], row["method"]): row for row in rows}
    for dataset in ("restaurant", "buy"):
        fm = by_key[(dataset, "FM")]["tokens_per_query"]
        no_retrieval = by_key[(dataset, "UniDM (w/o retrieval)")]["tokens_per_query"]
        full = by_key[(dataset, "UniDM")]["tokens_per_query"]
        # Paper shape: FM is cheapest, dropping retrieval saves a lot, and the
        # full pipeline costs an order of magnitude more than FM.
        assert fm < no_retrieval < full
        assert full > 5 * fm
        assert by_key[(dataset, "UniDM")]["llm_calls_per_query"] >= 4
