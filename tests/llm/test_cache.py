"""Unit tests for the caching LLM wrapper."""

import pytest

from repro.llm import CachedLLM, EchoLLM


def test_cache_hits_do_not_invoke_inner_model():
    inner = EchoLLM(reply="pong")
    cached = CachedLLM(inner)
    cached.complete("same prompt")
    cached.complete("same prompt")
    assert inner.usage.calls == 1
    assert cached.usage.calls == 2
    assert cached.hits == 1
    assert cached.misses == 1
    assert cached.hit_rate == pytest.approx(0.5)


def test_cache_eviction_respects_max_entries():
    inner = EchoLLM(reply="x")
    cached = CachedLLM(inner, max_entries=2)
    cached.complete("a")
    cached.complete("b")
    cached.complete("c")  # evicts "a"
    cached.complete("a")  # miss again
    assert inner.usage.calls == 4


def test_cache_clear():
    cached = CachedLLM(EchoLLM(reply="x"))
    cached.complete("a")
    cached.clear()
    assert cached.hits == 0 and cached.misses == 0
    cached.complete("a")
    assert cached.misses == 1


def test_cache_validates_max_entries():
    with pytest.raises(ValueError):
        CachedLLM(EchoLLM(), max_entries=0)


def test_cache_name_mentions_inner_model():
    cached = CachedLLM(EchoLLM())
    assert "echo" in cached.name
