"""Persistent completion cache shared across processes.

The in-memory LRU of :class:`~repro.llm.cache.CachedLLM` dies with the
process; re-running an experiment or restarting the service re-bills every
prompt.  :class:`PersistentCache` spills completions to append-only JSONL
shard files keyed by prompt hash, so a warmed cache makes reruns near-free:

* **append-only** — a put is one ``O_APPEND`` write of one JSON line; there is
  no rewrite-in-place, so a crash can at worst truncate the final line (which
  the loader skips);
* **sharded** — keys are spread over ``shards`` files by hash prefix, keeping
  individual files small and letting several processes warm disjoint shards
  with less write contention;
* **last-wins** — re-putting a prompt appends a new line; on load the latest
  line for a key is the value served.

The class satisfies the ``CacheBackend`` protocol of
:class:`~repro.llm.cache.CachedLLM` (``get``/``put``) and is thread-safe.

Elasticity support: alongside the entry shards the cache keeps a **route
index** (``routes.jsonl``) attributing each prompt key to the spec key that
issued it (see :func:`repro.flow.planner.spec_key` — the same digest the
cluster ring places by).  When the ring resizes, the router computes the
consistent-hash-minimal set of moved spec keys and uses
:meth:`PersistentCache.entries_for_routes` / :meth:`PersistentCache.absorb`
to copy exactly those entries shard-to-shard — no attribution, no migration.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from ..obs.events import emit_event
from ..obs.metrics import MetricsRegistry, get_default_registry


def prompt_key(prompt: str) -> str:
    """Stable content key for a prompt (SHA-256 hex digest)."""
    return hashlib.sha256(prompt.encode("utf-8")).hexdigest()


class PersistentCache:
    """Disk-backed prompt → completion store (JSONL shard files).

    Parameters
    ----------
    path:
        Directory holding the shard files (created if missing).
    shards:
        Number of shard files keys are spread over.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shards: int = 16,
        metrics: MetricsRegistry | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be positive")
        self.path = Path(path)
        self.shards = shards
        self.path.mkdir(parents=True, exist_ok=True)
        metrics = metrics or get_default_registry()
        self._m_puts = metrics.counter("pcache.puts")
        self._m_bytes = metrics.counter("pcache.bytes_written")
        # Per-directory gauge: cluster shards each report their own size.
        self._m_entries = metrics.gauge(f"pcache.entries.{self.path.name}")
        self._lock = threading.Lock()
        self._entries: dict[str, str] = {}
        #: prompt key -> spec (route) keys that issued the prompt; the
        #: unit the cluster ring places by, so resizes can move exactly the
        #: entries whose owner changed.  A set because two different specs
        #: can issue one identical sub-prompt — the entry then belongs to
        #: every route and may only be dropped once *all* of them leave.
        self._routes: dict[str, set[str]] = {}
        self._load()
        self._m_entries.set(len(self._entries))

    # -------------------------------------------------------------------- io
    def _shard_file(self, key: str) -> Path:
        shard = int(key[:8], 16) % self.shards
        return self.path / f"shard-{shard:02d}.jsonl"

    @property
    def _routes_file(self) -> Path:
        return self.path / "routes.jsonl"

    def _load(self) -> None:
        torn = 0
        stale = 0
        for shard_path in sorted(self.path.glob("shard-*.jsonl")):
            with open(shard_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        torn += 1
                        continue  # torn final line from a crashed writer
                    key, text = entry.get("key"), entry.get("text")
                    if isinstance(key, str) and isinstance(text, str):
                        if key in self._entries:
                            stale += 1  # superseded line; compact() would drop it
                        self._entries[key] = text
        if self._routes_file.exists():
            with open(self._routes_file, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        torn += 1
                        continue
                    key, route = entry.get("key"), entry.get("route")
                    if isinstance(key, str) and isinstance(route, str):
                        self._routes.setdefault(key, set()).add(route)
        if torn or stale:
            # Compaction-worthy anomalies: torn lines mean a writer crashed
            # mid-append, stale lines mean superseded history is bloating the
            # shards.  Surface both in the event log so operators notice.
            emit_event(
                "pcache.anomaly",
                path=str(self.path),
                torn_lines=torn,
                stale_lines=stale,
                live_entries=len(self._entries),
            )

    def _append(self, key: str, text: str) -> None:
        line = json.dumps({"key": key, "text": text}, ensure_ascii=False)
        with open(self._shard_file(key), "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    # ------------------------------------------------------------ cache API
    def get(self, prompt: str) -> str | None:
        with self._lock:
            return self._entries.get(prompt_key(prompt))

    def put(self, prompt: str, text: str) -> None:
        key = prompt_key(prompt)
        with self._lock:
            if self._entries.get(key) == text:
                return  # already durable; skip the duplicate append
            self._entries[key] = text
            self._append(key, text)
            self._m_puts.inc()
            self._m_bytes.inc(len(text))
            self._m_entries.set(len(self._entries))

    # ------------------------------------------------------------ routing
    def note_route(self, prompt: str, route: str) -> None:
        """Attribute ``prompt`` to the spec key that issued it (idempotent).

        Called by the serving engine for every prompt a spec submits, so
        the route index stays complete even for prompts that were cache
        hits (their entries may still need to move on a resize).
        """
        key = prompt_key(prompt)
        with self._lock:
            routes = self._routes.setdefault(key, set())
            if route in routes:
                return
            routes.add(route)
            line = json.dumps({"key": key, "route": route}, ensure_ascii=False)
            with open(self._routes_file, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def route_keys(self) -> set[str]:
        """Every distinct spec key this shard has cached prompts for."""
        with self._lock:
            return set().union(*self._routes.values()) if self._routes else set()

    def entries_for_routes(self, routes: "set[str]") -> list[dict]:
        """The migratable rows for ``routes``: ``{"key", "text", "route"}``.

        Prompts attributed to a moved spec key but with no stored entry
        (the completion errored, or the writer crashed first) are skipped —
        the new owner recomputes them on first miss.
        """
        rows: list[dict] = []
        with self._lock:
            for key, key_routes in self._routes.items():
                text = self._entries.get(key)
                if text is None:
                    continue
                # One row per moved attribution: a shared prompt travels
                # with each of its moving routes (absorb dedups the entry).
                for route in sorted(key_routes & routes):
                    rows.append({"key": key, "text": text, "route": route})
        return rows

    def absorb(self, rows: "list[dict]") -> int:
        """Import migrated rows (memory **and** disk); returns entries added.

        The shard-to-shard copy half of a resize: rows come from another
        shard's :meth:`entries_for_routes`.  Existing identical entries are
        skipped, so re-running a torn migration is safe (last-wins on load
        covers genuine conflicts).
        """
        added = 0
        with self._lock:
            for row in rows:
                key, text, route = row.get("key"), row.get("text"), row.get("route")
                if not isinstance(key, str) or not isinstance(text, str):
                    continue
                if self._entries.get(key) != text:
                    self._entries[key] = text
                    self._append(key, text)
                    self._m_puts.inc()
                    self._m_bytes.inc(len(text))
                    added += 1
                if isinstance(route, str) and route not in self._routes.get(
                    key, set()
                ):
                    self._routes.setdefault(key, set()).add(route)
                    line = json.dumps(
                        {"key": key, "route": route}, ensure_ascii=False
                    )
                    with open(self._routes_file, "a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            self._m_entries.set(len(self._entries))
        return added

    def remove_routes(self, routes: "set[str]") -> int:
        """Drop every entry attributed *only* to ``routes``; compact after.

        The source-side half of a migration: once the new owner has
        absorbed the moved rows, the old shard stops holding them so shard
        contents stay disjoint at the spec level.  An entry shared with a
        route that stays keeps living here (only the moved attribution is
        forgotten) — dropping it would cost the staying spec a cache miss.
        Returns entries dropped.
        """
        with self._lock:
            touched = False
            dropped = 0
            for key in list(self._routes):
                remaining = self._routes[key] - routes
                if remaining == self._routes[key]:
                    continue
                touched = True
                if remaining:
                    self._routes[key] = remaining
                else:
                    del self._routes[key]
                    if self._entries.pop(key, None) is not None:
                        dropped += 1
            self._m_entries.set(len(self._entries))
        if touched:
            self.compact()
        return dropped

    # ---------------------------------------------------------- maintenance
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, prompt: str) -> bool:
        return self.get(prompt) is not None

    def clear(self) -> None:
        """Delete all shard files and forget every entry."""
        with self._lock:
            self._entries.clear()
            self._routes.clear()
            for shard_path in self.path.glob("shard-*.jsonl"):
                shard_path.unlink()
            if self._routes_file.exists():
                self._routes_file.unlink()

    def compact(self) -> None:
        """Rewrite shards with one line per live key (drops superseded lines)."""
        with self._lock:
            by_shard: dict[Path, list[tuple[str, str]]] = {}
            for key, text in self._entries.items():
                by_shard.setdefault(self._shard_file(key), []).append((key, text))
            for shard_path in self.path.glob("shard-*.jsonl"):
                shard_path.unlink()
            for shard_path, entries in by_shard.items():
                with open(shard_path, "w", encoding="utf-8") as handle:
                    for key, text in entries:
                        handle.write(
                            json.dumps({"key": key, "text": text}, ensure_ascii=False)
                            + "\n"
                        )
            if self._routes:
                with open(self._routes_file, "w", encoding="utf-8") as handle:
                    for key, key_routes in self._routes.items():
                        for route in sorted(key_routes):
                            handle.write(
                                json.dumps(
                                    {"key": key, "route": route}, ensure_ascii=False
                                )
                                + "\n"
                            )
            elif self._routes_file.exists():
                self._routes_file.unlink()
