"""Configuration of the UniDM pipeline.

Every component the paper ablates (Tables 8-10) is an independent switch here,
so a single config object expresses both the full method and all its variants:

* ``use_meta_retrieval``       — prompt ``p_rm`` picks helpful attributes;
* ``use_instance_retrieval``   — prompt ``p_ri`` scores and ranks records;
* ``use_context_parsing``      — prompt ``p_dp`` rewrites pairs into text;
* ``use_cloze_prompt``         — prompt ``p_cq`` builds a cloze target prompt.

Hyper-parameters default to the paper's setting (Section 5.1): one attribute
from meta-wise retrieval and the top-3 of 50 randomly sampled records from
instance-wise retrieval.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class UniDMConfig:
    """Switches and hyper-parameters of the pipeline."""

    use_meta_retrieval: bool = True
    use_instance_retrieval: bool = True
    use_context_parsing: bool = True
    use_cloze_prompt: bool = True

    #: Number of attributes kept from meta-wise retrieval.
    n_meta_attributes: int = 1
    #: Number of records kept from instance-wise retrieval (top-k).
    top_k_instances: int = 3
    #: Size of the random candidate pool scored by instance-wise retrieval.
    candidate_sample_size: int = 50
    #: Seed for the pipeline's own randomness (candidate sampling, random
    #: context in ablations).  The LLM has its own seed.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_meta_attributes < 0:
            raise ValueError("n_meta_attributes must be >= 0")
        if self.top_k_instances < 0:
            raise ValueError("top_k_instances must be >= 0")
        if self.candidate_sample_size < self.top_k_instances:
            raise ValueError(
                "candidate_sample_size must be >= top_k_instances"
            )

    # -- named variants used throughout the experiments -----------------------
    def with_updates(self, **changes) -> "UniDMConfig":
        return replace(self, **changes)

    @classmethod
    def full(cls, **overrides) -> "UniDMConfig":
        """The complete UniDM pipeline (paper default)."""
        return cls(**overrides)

    @classmethod
    def random_context(cls, **overrides) -> "UniDMConfig":
        """UniDM (random) — context chosen randomly instead of retrieved."""
        return cls(
            use_meta_retrieval=False,
            use_instance_retrieval=False,
            **overrides,
        )

    @classmethod
    def no_retrieval(cls, **overrides) -> "UniDMConfig":
        """Alias of :meth:`random_context`, named as in Table 7."""
        return cls.random_context(**overrides)

    @classmethod
    def baseline_prompting(cls, **overrides) -> "UniDMConfig":
        """All components off: random context, serialized pairs, direct prompt."""
        return cls(
            use_meta_retrieval=False,
            use_instance_retrieval=False,
            use_context_parsing=False,
            use_cloze_prompt=False,
            **overrides,
        )

    def describe(self) -> str:
        """Short human-readable summary used in ablation tables."""
        parts = []
        parts.append("instance" if self.use_instance_retrieval else "-")
        parts.append("meta" if self.use_meta_retrieval else "-")
        parts.append("cloze" if self.use_cloze_prompt else "-")
        parts.append("parse" if self.use_context_parsing else "-")
        return "/".join(parts)
