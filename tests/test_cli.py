"""Tests for the ``python -m repro`` command-line interface."""

import io
import json
import sys

import pytest

from repro.__main__ import main


def test_cli_list_datasets(capsys):
    assert main(["list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "restaurant" in out and "nextiajd" in out


def test_cli_list_experiments(capsys):
    assert main(["list-experiments"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "figure5" in out


def test_cli_run_experiment_unknown(capsys):
    assert main(["run-experiment", "nope"]) == 2


def test_cli_run_experiment_small(capsys):
    assert main(["run-experiment", "table11", "--max-tasks", "4"]) == 0
    out = capsys.readouterr().out
    assert "Evaporate" in out


def test_cli_demo(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "target prompt:" in out


def test_cli_demo_engine(capsys, tmp_path):
    assert main(["demo", "--engine", "--batch-size", "4", "--workers", "4",
                 "--cache-dir", str(tmp_path / "cache")]) == 0
    out = capsys.readouterr().out
    assert "target prompt:" in out
    assert "engine       :" in out and "tasks/s" in out
    assert "batching     :" in out
    assert "cache        :" in out


def test_cli_run_experiment_engine(capsys):
    assert main(["run-experiment", "table11", "--max-tasks", "4", "--engine"]) == 0
    out = capsys.readouterr().out
    assert "Evaporate" in out
    # The global default engine must not leak past the command.
    from repro.eval import harness

    assert harness._DEFAULT_ENGINE_CONFIG is None


def test_cli_serve_stdin(capsys, monkeypatch):
    requests = [
        {"id": 1, "type": "transformation", "value": "19990415",
         "examples": [["20000101", "2000-01-01"], ["20101231", "2010-12-31"]]},
        {"id": 2, "type": "nope"},
    ]
    stdin = io.StringIO("\n".join(json.dumps(r) for r in requests) + "\n")
    monkeypatch.setattr(sys, "stdin", stdin)
    assert main(["serve", "--batch-size", "4", "--workers", "2"]) == 0
    captured = capsys.readouterr()
    responses = [json.loads(line) for line in captured.out.splitlines()]
    assert [r["id"] for r in responses] == [1, 2]
    assert responses[0]["ok"] and responses[0]["answer"] == "1999-04-15"
    assert not responses[1]["ok"]
    assert "served 2 requests" in captured.err


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])
