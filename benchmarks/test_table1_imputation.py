"""Benchmark: regenerate Table 1 (data imputation accuracy)."""

from conftest import run_once, scores_by_method

from repro.experiments import table1_imputation


def test_table1_imputation(benchmark, bench_max_tasks):
    rows = run_once(benchmark, table1_imputation.run, seed=0, max_tasks=bench_max_tasks)
    assert len(rows) == 14
    for dataset in ("restaurant", "buy"):
        scores = scores_by_method(rows, dataset=f"{dataset}[{bench_max_tasks}]")
        if not scores:
            scores = scores_by_method(rows, dataset=dataset)
        # Paper shape: LLM-based methods beat the statistical baselines, and
        # full UniDM is at least competitive with every other method.
        assert scores["UniDM"] >= scores["HoloClean"]
        assert scores["UniDM"] >= scores["CMI"]
        assert scores["UniDM"] + 10 >= scores["FM (manual)"]
        assert scores["UniDM (random)"] + 12 >= scores["FM (random)"]
