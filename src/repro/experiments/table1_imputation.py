"""Table 1 — data imputation accuracy on Restaurant and Buy.

Compares HoloClean, CMI, IMP, FM (random / manual context) and UniDM
(random / retrieved context), reporting imputation accuracy per dataset.
"""

from __future__ import annotations

from ..baselines import CMIImputer, HoloCleanImputer, IMPImputer
from ..core.config import UniDMConfig
from ..datasets import load_dataset
from ..eval import evaluate, format_table
from .common import make_fm, make_unidm, result_row

#: Accuracy (%) reported by the paper, for side-by-side comparison.
PAPER_RESULTS: dict[str, dict[str, float]] = {
    "restaurant": {
        "HoloClean": 33.1,
        "CMI": 56.0,
        "IMP": 77.2,
        "FM (random)": 81.4,
        "FM (manual)": 88.4,
        "UniDM (random)": 87.2,
        "UniDM": 93.0,
    },
    "buy": {
        "HoloClean": 16.2,
        "CMI": 65.3,
        "IMP": 96.5,
        "FM (random)": 86.2,
        "FM (manual)": 98.5,
        "UniDM (random)": 92.3,
        "UniDM": 98.5,
    },
}

DATASETS = ("restaurant", "buy")


def methods_for(dataset, seed: int):
    """The Table 1 method line-up, built fresh for one dataset."""
    return [
        ("HoloClean", HoloCleanImputer(seed=seed)),
        ("CMI", CMIImputer(seed=seed)),
        ("IMP", IMPImputer(seed=seed)),
        ("FM (random)", make_fm(dataset, "random", seed=seed + 1)),
        ("FM (manual)", make_fm(dataset, "manual", seed=seed + 1)),
        (
            "UniDM (random)",
            make_unidm(
                dataset,
                UniDMConfig.random_context(seed=seed + 2),
                seed=seed + 2,
                name="UniDM (random)",
            ),
        ),
        ("UniDM", make_unidm(dataset, seed=seed + 2)),
    ]


def run(seed: int = 0, max_tasks: int | None = None) -> list[dict]:
    """Regenerate the Table 1 rows (long form: one row per method × dataset)."""
    rows: list[dict] = []
    for dataset_name in DATASETS:
        dataset = load_dataset(dataset_name, seed=seed)
        for method_name, method in methods_for(dataset, seed):
            result = evaluate(method, dataset, max_tasks=max_tasks)
            rows.append(
                result_row(
                    result,
                    method=method_name,
                    paper=PAPER_RESULTS[dataset_name].get(method_name, float("nan")),
                    tokens_per_query=result.tokens_per_query,
                )
            )
    return rows


def main(seed: int = 0, max_tasks: int | None = None) -> str:
    rows = run(seed=seed, max_tasks=max_tasks)
    table = format_table(
        rows,
        columns=["dataset", "method", "score", "paper"],
        title="Table 1 — Data imputation accuracy (%)",
    )
    print(table)
    return table


if __name__ == "__main__":  # pragma: no cover
    main()
