"""Unit tests for the LanguageModel interface and usage tracking."""

from repro.llm import EchoLLM


def test_echo_llm_records_usage():
    llm = EchoLLM(reply="pong")
    completion = llm.complete("ping ping ping", kind="test")
    assert completion.text == "pong"
    assert completion.prompt_tokens >= 3
    assert completion.completion_tokens >= 1
    assert completion.total_tokens == completion.prompt_tokens + completion.completion_tokens
    assert llm.usage.calls == 1
    assert llm.usage.per_prompt_kind["test"] == completion.total_tokens


def test_usage_delta_since_snapshot():
    llm = EchoLLM(reply="x")
    llm.complete("first")
    snapshot = llm.usage.snapshot()
    llm.complete("second prompt with more tokens")
    delta = llm.usage.delta_since(snapshot)
    assert delta.calls == 1
    assert delta.total_tokens > 0
    assert delta.total_tokens < llm.usage.total_tokens


def test_usage_reset():
    llm = EchoLLM(reply="x")
    llm.complete("prompt")
    llm.reset_usage()
    assert llm.usage.calls == 0
    assert llm.usage.total_tokens == 0
    assert llm.usage.per_prompt_kind == {}


def test_echo_llm_stores_prompts():
    llm = EchoLLM(reply="")
    llm.complete("a")
    llm.complete("b")
    assert llm.prompts == ["a", "b"]
