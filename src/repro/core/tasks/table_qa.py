"""Table question answering task adapter (Appendix C of the paper).

The query ``Q`` is the natural-language question itself; ``R`` and ``S`` span
the full table, and context retrieval selects the "content snapshot" (relevant
columns and rows) that the question needs.
"""

from __future__ import annotations

from ...datalake.table import Table
from ..types import TaskType
from .base import Task, first_line


class TableQATask(Task):
    """Answer a free-form question over a single table."""

    task_type = TaskType.TABLE_QA

    def __init__(self, table: Table, question: str):
        if not question.strip():
            raise ValueError("question must be non-empty")
        self._table = table
        self._question = question.strip()

    @property
    def question(self) -> str:
        return self._question

    def table(self) -> Table:
        return self._table

    def target_records(self) -> list:
        return self._table.records

    def target_attributes(self) -> list[str]:
        return list(self._table.schema.names)

    def candidate_attributes(self) -> list[str]:
        # Appendix C: for TableQA the candidate set S' equals S (all columns).
        return list(self._table.schema.names)

    def query(self) -> str:
        return self._question

    def parse_answer(self, text: str) -> str:
        return first_line(text)
