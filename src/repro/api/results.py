"""The typed result returned by every facade entry point.

:class:`TaskResult` is the client-side view of one answered task: the parsed
answer, the raw completion text, token/call usage, wall-clock timing measured
around the submission, and — when the task ran in-process — the full
:class:`~repro.core.types.PromptTrace`.  Failures are carried as a structured
:class:`~repro.api.errors.ErrorInfo` instead of being collapsed into prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, TYPE_CHECKING

from .errors import ErrorInfo, OverloadedError, RateLimitedError, TaskFailedError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.types import ManipulationResult, PromptTrace


@dataclass
class TaskResult:
    """Outcome of submitting one task spec through the client facade."""

    answer: Any
    raw: str = ""
    task_type: str = ""
    tokens: int = 0
    calls: int = 0
    #: Client-measured seconds from submission to response (batch-amortised).
    elapsed: float = 0.0
    #: Full prompt trace; populated only for in-process (local) execution.
    trace: "PromptTrace | None" = None
    #: Structured failure; ``None`` on success.
    error: ErrorInfo | None = None
    id: Any = None
    #: Trace id echoed on the response envelope (see :mod:`repro.obs.trace`).
    trace_id: str | None = None
    #: Tenant echoed on the response envelope (see :mod:`repro.tenancy`).
    tenant: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> "TaskResult":
        """Return self on success; raise on failure.

        Raises:
            OverloadedError: When admission control shed the request
                (``error.code == "overloaded"``; ``retry_after`` carries
                the back-off hint).
            RateLimitedError: When the request's tenant exceeded its rate
                or inflight limit (``error.code == "rate_limited"``).
            TaskFailedError: For every other error response.
        """
        if self.error is not None:
            if self.error.code == OverloadedError.code:
                raise OverloadedError.from_info(self.error)
            if self.error.code == RateLimitedError.code:
                raise RateLimitedError.from_info(self.error)
            raise TaskFailedError.from_info(self.error)
        return self

    # -- wire form -----------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """The v2 ``result`` object (trace and timing stay client-side)."""
        return {
            "answer": self.answer,
            "raw": self.raw,
            "task_type": self.task_type,
            "tokens": self.tokens,
            "calls": self.calls,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any], request_id: Any = None) -> "TaskResult":
        return cls(
            answer=payload.get("answer"),
            raw=str(payload.get("raw", "")),
            task_type=str(payload.get("task_type", "")),
            tokens=int(payload.get("tokens", 0)),
            calls=int(payload.get("calls", 0)),
            id=request_id,
        )

    # -- pipeline form -------------------------------------------------------
    @classmethod
    def from_manipulation(
        cls, result: "ManipulationResult", request_id: Any = None, elapsed: float = 0.0
    ) -> "TaskResult":
        """Adapt a pipeline :class:`ManipulationResult` into the facade type."""
        return cls(
            answer=result.value,
            raw=result.raw_answer,
            task_type=result.task_type.value,
            tokens=result.total_tokens,
            calls=result.usage.calls if result.usage else 0,
            elapsed=elapsed,
            trace=result.trace,
            id=request_id,
        )


__all__ = ["TaskResult"]
