"""Shared emitter for the machine-readable ``BENCH_*.json`` artifacts.

Every throughput/efficiency benchmark writes its numbers through
:func:`write_bench`, so the artifacts share one location policy: the repo
root by default, or ``$REPRO_BENCH_DIR`` when set — which is how CI
regenerates fresh short-mode results into a scratch directory and compares
them against the committed baselines with ``scripts/check_bench.py``
(fail on >20% regression of any gated ratio).

Only *ratio* metrics (speedup, dedup factor, call reduction) are gated:
they compare two runs on the same machine, so they are robust to CI runner
speed.  Raw wall-clock numbers are recorded for humans but never compared
across machines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: Environment variable redirecting where BENCH_*.json files land.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_dir() -> Path:
    """Where BENCH artifacts are written (repo root unless redirected)."""
    override = os.environ.get(BENCH_DIR_ENV)
    return Path(override) if override else REPO_ROOT


def bench_path(name: str) -> Path:
    return bench_dir() / f"BENCH_{name}.json"


def write_bench(name: str, payload: dict[str, Any]) -> Path:
    """Write one benchmark's payload as ``BENCH_<name>.json``; returns the path."""
    path = bench_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_bench(name: str, directory: Path | None = None) -> dict[str, Any]:
    """Read one BENCH artifact back (from ``directory`` or the default)."""
    path = (directory or bench_dir()) / f"BENCH_{name}.json"
    return json.loads(path.read_text(encoding="utf-8"))


def reset_default_metrics() -> None:
    """Zero the process-default metrics registry between benchmark phases.

    Benchmarks in one pytest process share the default registry; phases that
    read counters (hit rates, batch sizes) must not see the previous phase's
    traffic.  Zeroing in place keeps the metric handles components cached at
    construction time valid.
    """
    from repro.obs import get_default_registry

    get_default_registry().reset()
