"""Table-level dataflow operators — the vocabulary of :class:`repro.flow.Pipeline`.

Each operator describes one whole-table manipulation over a
:class:`~repro.datalake.table.Table`:

* **LLM operators** (:class:`DetectErrors`, :class:`Impute`, :class:`Transform`,
  :class:`Resolve`, :class:`Extract`, :class:`Join`, :class:`Ask`) compile into
  :class:`~repro.api.specs.TaskSpec` work items — the unified request type of
  the client API — and know how to write the answered values back into the
  table;
* **relational operators** (:class:`Filter`, :class:`Select`,
  :class:`Partition`) run locally, without any LLM calls.

Operators are frozen dataclasses with a JSON wire form (``to_payload`` /
``from_payload`` through the :data:`OP_TYPES` registry), so a whole pipeline
can travel to the TCP service as one
:class:`~repro.api.pipeline_spec.PipelineSpec` request.  They also declare
which columns they read (:meth:`Operator.reads`) and write
(:meth:`Operator.writes`); the pipeline uses those sets for static column
lineage and the planner for dependency-aware wave scheduling.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping, Sequence

from ..api.specs import (
    EntityResolutionSpec,
    ErrorDetectionSpec,
    ExtractionSpec,
    ImputationSpec,
    JoinDiscoverySpec,
    TableQASpec,
    TaskSpec,
    TransformationSpec,
)
from ..datalake.table import Table, is_missing


class FlowError(ValueError):
    """A pipeline was mis-assembled or failed during execution."""


#: Wire ``op`` string -> operator class.  Populated by :func:`register_op`.
OP_TYPES: dict[str, type["Operator"]] = {}


def register_op(cls: type["Operator"]) -> type["Operator"]:
    """Class decorator adding an operator to the wire registry."""
    if not cls.op:
        raise ValueError(f"{cls.__name__} must define a non-empty op name")
    if cls.op in OP_TYPES:
        raise ValueError(f"duplicate operator registration for {cls.op!r}")
    OP_TYPES[cls.op] = cls
    return cls


def operator_from_payload(payload: Mapping[str, Any]) -> "Operator":
    """Build (and validate) the operator named by ``payload['op']``."""
    if not isinstance(payload, Mapping):
        raise FlowError("operator payload must be an object")
    op_name = payload.get("op")
    op_cls = OP_TYPES.get(op_name) if isinstance(op_name, str) else None
    if op_cls is None:
        raise FlowError(
            f"unknown operator {op_name!r}; expected one of {', '.join(OP_TYPES)}"
        )
    return op_cls.from_payload(payload)


@dataclass(frozen=True)
class WorkItem:
    """One compiled unit of LLM work: a spec plus where its answer lands."""

    spec: TaskSpec
    #: Target row index within the compiled partition; ``None`` for
    #: table-level items (Join decisions, Ask questions).
    row: int | None = None
    #: Operator-private payload (e.g. the candidate index for Resolve).
    extra: Any = None


# -------------------------------------------------------------------- helpers
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FlowError(message)


def _set(obj: "Operator", field: str, value: Any) -> None:
    """Normalise a field of a frozen operator during ``__post_init__``."""
    object.__setattr__(obj, field, value)


def _rows_of(value: Any) -> tuple[dict, ...]:
    """Coerce a Table or a sequence of mappings into plain wire rows."""
    if isinstance(value, Table):
        return tuple(value.to_dicts())
    _require(
        isinstance(value, Sequence) and not isinstance(value, (str, bytes)),
        "expected a Table or a list of row objects",
    )
    return tuple(dict(r) for r in value)


def _pk_of(table: Table) -> str | None:
    pk = table.schema.primary_key()
    return pk.name if pk is not None else None


# ----------------------------------------------------------------- base class
@dataclass(frozen=True)
class Operator:
    """Common behaviour of all flow operators."""

    #: Wire discriminator; set by each concrete subclass.
    op: ClassVar[str] = ""
    #: Whether the operator can run partition-at-a-time.  Whole-table
    #: operators (Join, Ask) are execution barriers: the streaming executor
    #: materialises the full table before running them.
    partitionable: ClassVar[bool] = True
    #: Whether the operator compiles to LLM task specs.
    needs_llm: ClassVar[bool] = True

    def __post_init__(self) -> None:
        self.validate()

    # -- contract ------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`FlowError` when the operator is malformed."""

    def reads(self) -> list[str]:
        """Columns the operator needs present in its input table."""
        return []

    def writes(self) -> list[str]:
        """Columns the operator writes (existing or new)."""
        return []

    def scans_all_columns(self) -> bool:
        """Whether compiled specs embed every column of the table.

        Evidence-carrying operators ship whole rows inside their specs
        (imputation evidence, detection context, QA tables, join probes), so
        for scheduling purposes they depend on *every* column — fusing them
        into a wave after any write would change the evidence a sequential
        execution would have shown them.
        """
        return False

    def columns_after(self, columns: Sequence[str]) -> list[str]:
        """The column set of the output table given the input columns."""
        out = list(columns)
        for name in self.writes():
            if name not in out:
                out.append(name)
        return out

    # -- LLM operators -------------------------------------------------------
    def compile(self, table: Table) -> list[WorkItem]:
        """Turn one table (partition) into the LLM work it implies.

        Args:
            table: The input partition in its current (post-upstream) state.

        Returns:
            One :class:`WorkItem` (row reference + task spec) per cell or
            row this operator must ask the LLM about; an empty list when
            the partition needs no work.

        Raises:
            NotImplementedError: On relational operators (``needs_llm`` is
                False); the executor calls :meth:`transform` instead.
        """
        raise NotImplementedError(f"{self.op} is not an LLM operator")

    def apply(
        self,
        table: Table,
        results: Sequence[tuple[WorkItem, Any]],
        answers: dict[str, Any],
    ) -> Table:
        """Write answered values back into the table.

        Args:
            table: The partition :meth:`compile` ran over.
            results: ``(work item, answered value)`` pairs, in compile
                order.
            answers: The run-wide table-level answer channel; barrier
                operators (Ask, Join) record their verdicts here.

        Returns:
            The updated partition (a new table; inputs are not mutated).
        """
        raise NotImplementedError(f"{self.op} is not an LLM operator")

    # -- relational operators ------------------------------------------------
    def transform(self, table: Table) -> Table:
        """Apply a pure relational operator (no LLM calls).

        Returns:
            The reshaped table.

        Raises:
            NotImplementedError: On LLM operators; the executor routes them
                through :meth:`compile` / :meth:`apply`.
        """
        raise NotImplementedError(f"{self.op} is an LLM operator")

    # -- wire form -----------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """The flat payload form (``op`` plus the operator's own fields)."""
        payload: dict[str, Any] = {"op": self.op}
        for op_field in dataclasses.fields(self):
            value = getattr(self, op_field.name)
            if value != op_field.default:
                payload[op_field.name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Operator":
        """Build the operator from a payload, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        missing = [
            f.name
            for f in dataclasses.fields(cls)
            if f.default is dataclasses.MISSING
            and f.default_factory is dataclasses.MISSING
            and f.name not in kwargs
        ]
        if missing:
            raise FlowError(f"'{missing[0]}' is required for the {cls.op} operator")
        return cls(**kwargs)

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({', '.join(self.writes() or self.reads())})"


# ------------------------------------------------------------- LLM operators
@register_op
@dataclass(frozen=True)
class Impute(Operator):
    """Fill the missing cells of ``column`` using the partition as evidence."""

    op: ClassVar[str] = "impute"

    column: str

    def validate(self) -> None:
        _require(bool(self.column), "impute needs a non-empty 'column'")

    def reads(self) -> list[str]:
        return [self.column]

    def writes(self) -> list[str]:
        return [self.column]

    def scans_all_columns(self) -> bool:
        return True  # whole rows travel as imputation evidence

    def compile(self, table: Table) -> list[WorkItem]:
        rows = table.to_dicts()
        pk = _pk_of(table)
        items = []
        for index, row in enumerate(rows):
            if is_missing(row.get(self.column)):
                items.append(
                    WorkItem(
                        ImputationSpec(
                            rows=rows,
                            target=row,
                            attribute=self.column,
                            table_name=table.name,
                            primary_key=pk,
                        ),
                        row=index,
                    )
                )
        return items

    def apply(self, table, results, answers):
        out = table.copy()
        for item, value in results:
            out[item.row][self.column] = value
        return out


@register_op
@dataclass(frozen=True)
class DetectErrors(Operator):
    """Flag suspicious values of ``column`` into a boolean flag column."""

    op: ClassVar[str] = "detect_errors"

    column: str
    flag_column: str = ""

    def validate(self) -> None:
        _require(bool(self.column), "detect_errors needs a non-empty 'column'")

    @property
    def target_column(self) -> str:
        return self.flag_column or f"{self.column}_error"

    def reads(self) -> list[str]:
        return [self.column]

    def writes(self) -> list[str]:
        return [self.target_column]

    def scans_all_columns(self) -> bool:
        return True  # whole rows travel as detection context

    def compile(self, table: Table) -> list[WorkItem]:
        rows = table.to_dicts()
        pk = _pk_of(table)
        items = []
        for index, row in enumerate(rows):
            if not is_missing(row.get(self.column)):
                items.append(
                    WorkItem(
                        ErrorDetectionSpec(
                            rows=rows,
                            target=row,
                            attribute=self.column,
                            table_name=table.name,
                            primary_key=pk,
                        ),
                        row=index,
                    )
                )
        return items

    def apply(self, table, results, answers):
        # Missing cells stay None in the flag column: there is no value to judge.
        out = table.with_column(self.target_column, default=None)
        for item, value in results:
            out[item.row][self.target_column] = bool(value)
        return out


@register_op
@dataclass(frozen=True)
class Transform(Operator):
    """Re-format every value of ``column`` following the example pairs."""

    op: ClassVar[str] = "transform"

    column: str
    examples: Sequence[Sequence[str]]
    output_column: str = ""

    def validate(self) -> None:
        _require(bool(self.column), "transform needs a non-empty 'column'")
        _require(
            isinstance(self.examples, Sequence)
            and not isinstance(self.examples, (str, bytes))
            and len(self.examples) > 0,
            "transform needs a non-empty list of [input, output] example pairs",
        )
        for pair in self.examples:
            _require(
                isinstance(pair, Sequence)
                and not isinstance(pair, (str, bytes))
                and len(pair) == 2,
                "each transform example must be an [input, output] pair",
            )
        _set(self, "examples", tuple((str(a), str(b)) for a, b in self.examples))

    @property
    def target_column(self) -> str:
        return self.output_column or self.column

    def reads(self) -> list[str]:
        return [self.column]

    def writes(self) -> list[str]:
        return [self.target_column]

    def compile(self, table: Table) -> list[WorkItem]:
        items = []
        for index, row in enumerate(table.to_dicts()):
            value = row.get(self.column)
            if not is_missing(value):
                items.append(
                    WorkItem(
                        TransformationSpec(value=str(value), examples=self.examples),
                        row=index,
                    )
                )
        return items

    def apply(self, table, results, answers):
        out = table
        if self.target_column not in table.schema:
            out = table.with_column(self.target_column, default=None)
        else:
            out = table.copy()
        for item, value in results:
            out[item.row][self.target_column] = value
        return out


@register_op
@dataclass(frozen=True)
class Extract(Operator):
    """Populate ``attribute`` from the documents held in ``document_column``."""

    op: ClassVar[str] = "extract"

    document_column: str
    attribute: str
    output_column: str = ""
    max_chunk_chars: int = 2000

    def validate(self) -> None:
        _require(bool(self.document_column), "extract needs a 'document_column'")
        _require(bool(str(self.attribute).strip()), "extract needs an 'attribute'")
        _require(
            isinstance(self.max_chunk_chars, int) and self.max_chunk_chars > 0,
            "'max_chunk_chars' must be a positive integer",
        )

    @property
    def target_column(self) -> str:
        return self.output_column or self.attribute

    def reads(self) -> list[str]:
        return [self.document_column]

    def writes(self) -> list[str]:
        return [self.target_column]

    def compile(self, table: Table) -> list[WorkItem]:
        items = []
        for index, row in enumerate(table.to_dicts()):
            document = row.get(self.document_column)
            if not is_missing(document):
                items.append(
                    WorkItem(
                        ExtractionSpec(
                            document=str(document),
                            attribute=self.attribute,
                            max_chunk_chars=self.max_chunk_chars,
                        ),
                        row=index,
                    )
                )
        return items

    def apply(self, table, results, answers):
        out = table.with_column(self.target_column, default=None)
        for item, value in results:
            out[item.row][self.target_column] = value
        return out


@register_op
@dataclass(frozen=True)
class Resolve(Operator):
    """Match each row against a reference table via entity resolution.

    For every row, candidates from ``against`` are compared one by one (in
    order); the first candidate the LLM judges to be the same entity supplies
    its ``key`` value for ``output_column`` (rows with no match get ``None``).
    """

    op: ClassVar[str] = "resolve"

    against: Any  # Table or list of row objects; normalised to wire rows.
    key: str
    output_column: str = "match"
    attributes: Sequence[str] | None = None
    max_candidates: int = 0

    def validate(self) -> None:
        _set(self, "against", _rows_of(self.against))
        _require(len(self.against) > 0, "resolve needs a non-empty 'against' table")
        _require(bool(self.key), "resolve needs the 'key' column of 'against'")
        for row in self.against:
            _require(
                self.key in row,
                f"'against' rows must carry the key column {self.key!r}",
            )
        _require(bool(self.output_column), "resolve needs an 'output_column'")
        if self.attributes is not None:
            _set(self, "attributes", tuple(str(a) for a in self.attributes))
        _require(
            isinstance(self.max_candidates, int) and self.max_candidates >= 0,
            "'max_candidates' must be a non-negative integer (0 = unlimited)",
        )

    def reads(self) -> list[str]:
        return list(self.attributes) if self.attributes else []

    def writes(self) -> list[str]:
        return [self.output_column]

    def scans_all_columns(self) -> bool:
        return self.attributes is None  # unscoped: whole rows are compared

    def _project(self, row: Mapping[str, Any]) -> dict[str, Any]:
        if self.attributes:
            return {k: row[k] for k in self.attributes if k in row}
        return dict(row)

    def compile(self, table: Table) -> list[WorkItem]:
        candidates = list(self.against)
        if self.max_candidates:
            candidates = candidates[: self.max_candidates]
        items = []
        for index, row in enumerate(table.to_dicts()):
            record_a = self._project(row)
            if not record_a:
                continue
            for rank, candidate in enumerate(candidates):
                record_b = self._project(candidate)
                if not record_b:
                    continue
                items.append(
                    WorkItem(
                        EntityResolutionSpec(record_a=record_a, record_b=record_b),
                        row=index,
                        extra=rank,
                    )
                )
        return items

    def apply(self, table, results, answers):
        out = table.with_column(self.output_column, default=None)
        # First matching candidate (in candidate order) wins, per row.
        best: dict[int, int] = {}
        for item, value in results:
            if value and (item.row not in best or item.extra < best[item.row]):
                best[item.row] = item.extra
        for row_index, rank in best.items():
            out[row_index][self.output_column] = self.against[rank][self.key]
        return out


@register_op
@dataclass(frozen=True)
class Join(Operator):
    """LLM-gated left join: discover joinability, then merge the columns.

    One join-discovery task decides whether ``on`` joins ``other[other_on]``
    (recorded in the flow's ``answers``); when joinable, the other table's
    columns are merged in by value equality.  The brought columns always enter
    the schema (``None`` when not joinable or unmatched) so downstream stages
    see a stable shape either way.
    """

    op: ClassVar[str] = "join"
    partitionable: ClassVar[bool] = False

    other: Any  # Table or list of row objects; normalised to wire rows.
    on: str
    other_on: str
    other_name: str = "other"
    columns: Sequence[str] | None = None
    prefix: str = ""
    n_probe_rows: int = 40
    n_sample_values: int = 6
    n_sample_records: int = 2
    seed: int = 0

    def validate(self) -> None:
        if isinstance(self.other, Table) and self.other_name == "other":
            _set(self, "other_name", self.other.name)
        _set(self, "other", _rows_of(self.other))
        _require(len(self.other) > 0, "join needs a non-empty 'other' table")
        _require(bool(self.on), "join needs the local column 'on'")
        _require(bool(self.other_on), "join needs the reference column 'other_on'")
        for row in self.other:
            _require(
                self.other_on in row,
                f"'other' rows must carry the join column {self.other_on!r}",
            )
        if self.columns is not None:
            _set(self, "columns", tuple(str(c) for c in self.columns))
            for name in self.columns:
                _require(
                    name in self.other[0],
                    f"join column {name!r} not present in the 'other' rows",
                )
        _require(self.n_probe_rows > 0, "'n_probe_rows' must be positive")

    @property
    def brought_columns(self) -> list[str]:
        names = (
            list(self.columns)
            if self.columns is not None
            else [c for c in self.other[0] if c != self.other_on]
        )
        return [f"{self.prefix}{c}" for c in names]

    def _source_columns(self) -> list[str]:
        if self.columns is not None:
            return list(self.columns)
        return [c for c in self.other[0] if c != self.other_on]

    def reads(self) -> list[str]:
        return [self.on]

    def writes(self) -> list[str]:
        return self.brought_columns

    def scans_all_columns(self) -> bool:
        return True  # probe rows carry the full schema

    def compile(self, table: Table) -> list[WorkItem]:
        if len(table) == 0:
            return []
        return [
            WorkItem(
                JoinDiscoverySpec(
                    table_a={
                        "name": table.name,
                        "rows": table.to_dicts()[: self.n_probe_rows],
                    },
                    column_a=self.on,
                    table_b={
                        "name": self.other_name,
                        "rows": list(self.other[: self.n_probe_rows]),
                    },
                    column_b=self.other_on,
                    n_sample_values=self.n_sample_values,
                    n_sample_records=self.n_sample_records,
                    seed=self.seed,
                )
            )
        ]

    def apply(self, table, results, answers):
        joinable = bool(results[0][1]) if results else None
        answers[f"join:{self.on}~{self.other_name}.{self.other_on}"] = joinable
        out = table
        for name in self.brought_columns:
            out = out.with_column(name, default=None)
        if not joinable:
            return out
        # SQL NULL semantics: a missing key never joins, on either side.
        lookup: dict[Any, Mapping[str, Any]] = {}
        for row in self.other:
            if not is_missing(row[self.other_on]):
                lookup.setdefault(str(row[self.other_on]), row)
        sources = self._source_columns()
        for record in out:
            if is_missing(record[self.on]):
                continue
            match = lookup.get(str(record[self.on]))
            if match is None:
                continue
            for source, target in zip(sources, self.brought_columns):
                record[target] = match.get(source)
        return out


@register_op
@dataclass(frozen=True)
class Ask(Operator):
    """Answer a free-form question over the whole table (result in ``answers``)."""

    op: ClassVar[str] = "ask"
    partitionable: ClassVar[bool] = False

    question: str
    name: str = ""
    max_rows: int = 0

    def validate(self) -> None:
        _require(bool(str(self.question).strip()), "ask needs a non-empty 'question'")
        _require(
            isinstance(self.max_rows, int) and self.max_rows >= 0,
            "'max_rows' must be a non-negative integer (0 = whole table)",
        )

    @property
    def answer_key(self) -> str:
        return self.name or self.question

    def scans_all_columns(self) -> bool:
        return True  # the whole table is the question's context

    def compile(self, table: Table) -> list[WorkItem]:
        if len(table) == 0:
            return []
        rows = table.to_dicts()
        if self.max_rows:
            rows = rows[: self.max_rows]
        return [
            WorkItem(
                TableQASpec(
                    rows=rows,
                    question=self.question,
                    table_name=table.name,
                    primary_key=_pk_of(table),
                )
            )
        ]

    def apply(self, table, results, answers):
        answers[self.answer_key] = results[0][1] if results else None
        return table


# ------------------------------------------------------ relational operators
#: Predicates understood by :class:`Filter`.
FILTER_MODES = (
    "missing",
    "not_missing",
    "equals",
    "not_equals",
    "truthy",
    "falsy",
)


@register_op
@dataclass(frozen=True)
class Filter(Operator):
    """Keep the rows whose ``column`` satisfies a declarative predicate."""

    op: ClassVar[str] = "filter"
    needs_llm: ClassVar[bool] = False

    column: str
    mode: str = "not_missing"
    value: Any = None

    def validate(self) -> None:
        _require(bool(self.column), "filter needs a non-empty 'column'")
        _require(
            self.mode in FILTER_MODES,
            f"unknown filter mode {self.mode!r}; expected one of {', '.join(FILTER_MODES)}",
        )

    def reads(self) -> list[str]:
        return [self.column]

    def _keep(self, value: Any) -> bool:
        if self.mode == "missing":
            return is_missing(value)
        if self.mode == "not_missing":
            return not is_missing(value)
        if self.mode == "equals":
            return value == self.value
        if self.mode == "not_equals":
            return value != self.value
        if self.mode == "truthy":
            return bool(value)
        return not value  # falsy

    def transform(self, table: Table) -> Table:
        return table.select(lambda record: self._keep(record[self.column]))


@register_op
@dataclass(frozen=True)
class Select(Operator):
    """Project the table onto the given columns (in the given order)."""

    op: ClassVar[str] = "select"
    needs_llm: ClassVar[bool] = False

    columns: Sequence[str]

    def validate(self) -> None:
        _require(
            isinstance(self.columns, Sequence)
            and not isinstance(self.columns, (str, bytes))
            and len(self.columns) > 0,
            "select needs a non-empty list of column names",
        )
        _set(self, "columns", tuple(str(c) for c in self.columns))

    def reads(self) -> list[str]:
        return list(self.columns)

    def columns_after(self, columns: Sequence[str]) -> list[str]:
        return list(self.columns)

    def transform(self, table: Table) -> Table:
        return table.project(list(self.columns))


@register_op
@dataclass(frozen=True)
class Partition(Operator):
    """Set the streaming partition size for the downstream stages."""

    op: ClassVar[str] = "partition"
    needs_llm: ClassVar[bool] = False

    size: int

    def validate(self) -> None:
        _require(
            isinstance(self.size, int) and self.size >= 1,
            "partition needs a positive integer 'size'",
        )

    def transform(self, table: Table) -> Table:
        return table


__all__ = [
    "Ask",
    "DetectErrors",
    "Extract",
    "FILTER_MODES",
    "Filter",
    "FlowError",
    "Impute",
    "Join",
    "OP_TYPES",
    "Operator",
    "Partition",
    "Resolve",
    "Select",
    "Transform",
    "WorkItem",
    "operator_from_payload",
    "register_op",
]
