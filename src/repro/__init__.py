"""UniDM reproduction: a unified framework for data manipulation with LLMs.

The package is organised as:

* :mod:`repro.datalake`   — tables, records, schemas and lakes;
* :mod:`repro.llm`        — language-model interface, simulated LLMs, knowledge;
* :mod:`repro.prompting`  — the canonical prompt templates;
* :mod:`repro.core`       — the UniDM pipeline and task adapters;
* :mod:`repro.transforms` — string transformation operators and program search;
* :mod:`repro.datasets`   — synthetic counterparts of the paper's benchmarks;
* :mod:`repro.baselines`  — the comparison systems (HoloClean, FM, Ditto, ...);
* :mod:`repro.eval`       — metrics and evaluation harnesses;
* :mod:`repro.experiments`— one module per paper table/figure.

Quickstart::

    from repro.datasets import RestaurantDataset
    from repro.core import UniDM, UniDMConfig
    from repro.llm import SimulatedLLM

    dataset = RestaurantDataset(seed=0).build()
    llm = SimulatedLLM(knowledge=dataset.knowledge, seed=0)
    pipeline = UniDM(llm, UniDMConfig.full())
    result = pipeline.run(dataset.tasks[0])
    print(result.value)
"""

from .core import ManipulationResult, TaskType, UniDM, UniDMConfig, solve
from .llm import SimulatedLLM, WorldKnowledge

__version__ = "1.0.0"

__all__ = [
    "ManipulationResult",
    "SimulatedLLM",
    "TaskType",
    "UniDM",
    "UniDMConfig",
    "WorldKnowledge",
    "__version__",
    "solve",
]
