#!/usr/bin/env python
"""CI perf-regression gate over the committed ``BENCH_*.json`` baselines.

The benchmark suite writes machine-readable artifacts through
``benchmarks/report.py``.  This script compares a freshly generated set
(``--fresh``, typically ``$REPRO_BENCH_DIR`` from a short-mode CI run)
against the committed baselines (``--baseline``, the repo root) and fails
when any **gated ratio** dropped by more than ``--threshold`` (default 20%).

Only within-run ratios are gated — cluster speedup, flow dedup/call
reduction, warm-cache serving speedup, micro-batching round-trip
reduction.  They compare two runs on the *same* machine, so a slow CI
runner cannot fail the gate; raw wall-clock and throughput numbers are
printed for context but never compared across machines.

Usage::

    REPRO_BENCH_DIR=bench-fresh python -m pytest \
        benchmarks/test_cluster_throughput.py \
        benchmarks/test_flow_throughput.py \
        benchmarks/test_serving_throughput.py -q
    python scripts/check_bench.py --baseline . --fresh bench-fresh

Exit status 1 on any regression (or a missing fresh artifact), 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Gated metrics: artifact name -> list of (dotted key path, human label).
#: Higher is better; the fresh value must stay above the baseline's floor.
GATED_METRICS: dict[str, list[tuple[str, str]]] = {
    "cluster": [("speedup", "4-worker cluster speedup")],
    "flow": [
        ("llm_call_reduction", "flow LLM-call reduction vs per-row loop"),
        ("flow_executor.dedup_factor", "flow spec dedup factor"),
    ],
    "serving": [("speedup", "warm-cache engine speedup vs cold sequential")],
    "batching": [("round_trip_reduction", "micro-batching round-trip reduction")],
    "wire": [
        (
            "overhead_reduction",
            "pipelined wire per-request overhead reduction vs thread-per-conn",
        )
    ],
}

#: Capped metrics: artifact name -> list of (dotted key path, label, cap).
#: Lower is better; the *fresh* value must stay at or below the absolute cap
#: regardless of the committed baseline (a budget, not a regression ratio).
CAPPED_METRICS: dict[str, list[tuple[str, str, float]]] = {
    "cluster": [
        (
            "elastic.migration_fraction",
            "avg per-resize fraction of cache entries migrated (2->4 live)",
            0.6,
        ),
        (
            "elastic.resize_error_rate",
            "requests failed during a live 2->4 resize",
            0.0,
        ),
    ],
    "obs": [
        (
            "overhead_ratio",
            "span+event instrumentation overhead (traced / untraced)",
            1.10,
        ),
        (
            "slo_overhead_ratio",
            "time-series + SLO monitoring overhead (monitored / untraced)",
            1.10,
        ),
    ],
    "tenancy": [
        (
            "p99_degradation",
            "well-behaved tenant p99 under a 20x flood (abuse / baseline)",
            2.0,
        )
    ],
}


def dig(payload: dict, path: str):
    value = payload
    for part in path.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def load(directory: Path, name: str) -> dict | None:
    path = directory / f"BENCH_{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=".",
        help="directory of the committed BENCH_*.json baselines (repo root)",
    )
    parser.add_argument(
        "--fresh",
        required=True,
        help="directory of the freshly generated BENCH_*.json artifacts",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum tolerated fractional drop of a gated ratio (default 0.20)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    fresh_dir = Path(args.fresh)
    failures: list[str] = []
    checked = 0

    for name, metrics in GATED_METRICS.items():
        baseline = load(baseline_dir, name)
        fresh = load(fresh_dir, name)
        if baseline is None:
            # No committed baseline yet: the first run establishes one.
            print(f"BENCH_{name}.json: no baseline committed, skipping")
            continue
        if fresh is None:
            failures.append(
                f"BENCH_{name}.json: baseline exists but no fresh artifact was "
                f"generated in {fresh_dir} — did the benchmark run?"
            )
            continue
        for path, label in metrics:
            old = dig(baseline, path)
            new = dig(fresh, path)
            if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
                failures.append(
                    f"BENCH_{name}.json: metric {path!r} missing or non-numeric "
                    f"(baseline={old!r}, fresh={new!r})"
                )
                continue
            checked += 1
            floor = old * (1.0 - args.threshold)
            status = "ok" if new >= floor else "REGRESSION"
            print(
                f"{status:>10}  {label}: baseline {old:.3f} -> fresh {new:.3f} "
                f"(floor {floor:.3f})"
            )
            if new < floor:
                failures.append(
                    f"{label} regressed: {old:.3f} -> {new:.3f} "
                    f"(allowed floor {floor:.3f}, threshold {args.threshold:.0%})"
                )

    for name, metrics in CAPPED_METRICS.items():
        fresh = load(fresh_dir, name)
        if fresh is None:
            if load(baseline_dir, name) is None:
                # Neither committed nor generated: the gate is not armed yet.
                print(f"BENCH_{name}.json: no baseline committed, skipping")
                continue
            failures.append(
                f"BENCH_{name}.json: baseline exists but no fresh artifact was "
                f"generated in {fresh_dir} — did the benchmark run?"
            )
            continue
        for path, label, cap in metrics:
            new = dig(fresh, path)
            if not isinstance(new, (int, float)):
                failures.append(
                    f"BENCH_{name}.json: metric {path!r} missing or non-numeric "
                    f"(fresh={new!r})"
                )
                continue
            checked += 1
            status = "ok" if new <= cap else "OVER BUDGET"
            print(f"{status:>10}  {label}: fresh {new:.3f} (cap {cap:.3f})")
            if new > cap:
                failures.append(
                    f"{label} over budget: {new:.3f} exceeds cap {cap:.3f}"
                )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"all {checked} gated benchmark ratios within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
