"""One client facade over the in-process engine and the TCP service.

``Client.local(...)`` builds (or wraps) a pipeline + engine in this process;
``Client.remote(host, port)`` speaks the line protocol to a running
``python -m repro serve --port`` instance.  Both offer the same calls with
the same semantics:

* :meth:`Client.submit` — one :class:`~repro.api.specs.TaskSpec`, returns a
  :class:`~repro.api.results.TaskResult`, raising
  :class:`~repro.api.errors.TaskFailedError` on an error response;
* :meth:`Client.submit_many` — a batch of specs, answered in order, with
  per-item failures embedded as ``result.error`` (never raising mid-batch);
* :meth:`Client.asubmit_many` — the async flavour of ``submit_many``.

Both paths serialize specs through the same v2 wire encoding and decode the
same response envelopes, so a spec answered locally and remotely is, by
construction, the *same request* — the acceptance contract of the redesign.
Local clients additionally expose :meth:`run_task` / :meth:`run_tasks`,
which accept pipeline :class:`~repro.core.tasks.base.Task` objects directly
and return rich :class:`~repro.core.types.ManipulationResult`\\ s (with full
prompt traces) — the entry point the CLI demo, the evaluation harness and
the examples use.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..obs.events import get_default_event_log
from ..obs.span import span
from ..obs.trace import Trace, new_trace_id
from .errors import TransportError
from .protocol import PROTOCOL_VERSION, decode_response, encode_request
from .results import TaskResult
from .specs import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.router import Router
    from ..core.config import UniDMConfig
    from ..core.pipeline import UniDM
    from ..core.tasks.base import Task
    from ..core.types import ManipulationResult
    from ..llm.base import LanguageModel
    from ..serving.engine import ExecutionEngine
    from ..serving.service import ServingService
    from ..tenancy import TenantRegistry

#: Error codes ``retries=`` may resubmit: the shed responses that carry a
#: ``retry_after`` hint and promise the same request can succeed later.
_RETRYABLE_CODES = frozenset({"overloaded", "rate_limited"})

#: Bounds on the honored ``retry_after`` hint (seconds): a floor so a zero
#: hint still backs off, a cap so a pathological hint cannot hang a caller.
_RETRY_FLOOR = 0.01
_RETRY_CAP = 5.0


class Client:
    """Unified entry point to the seven data-manipulation tasks."""

    def __init__(self, backend: "_Backend"):
        self._backend = backend
        self._next_id = 0
        self._last_trace: str | None = None

    # ------------------------------------------------------------ constructors
    @classmethod
    def local(
        cls,
        llm: "LanguageModel | None" = None,
        config: "UniDMConfig | None" = None,
        engine: "ExecutionEngine | None" = None,
        *,
        pipeline: "UniDM | None" = None,
        model: str | None = None,
        seed: int = 0,
        knowledge: Any = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        workers: int = 8,
        tenants: "TenantRegistry | None" = None,
    ) -> "Client":
        """A client over an in-process pipeline + execution engine.

        With no arguments this assembles the default serving stack (simulated
        LLM → cache → engine); pass ``llm``/``config`` to customise it or
        ``pipeline`` to wrap an existing :class:`~repro.core.pipeline.UniDM`.

        Args:
            llm: Language model to build a pipeline around (mutually
                exclusive with ``pipeline``).
            config: Pipeline configuration (default ``UniDMConfig.full``).
            engine: Execution engine to use instead of a fresh one.
            pipeline: A ready :class:`~repro.core.pipeline.UniDM` to wrap.
            model: Simulated-model profile name for the default stack.
            seed: Seed shared by the default pipeline and simulated LLM.
            knowledge: World-knowledge store for the default simulated LLM.
            cache_dir: Directory of a persistent completion cache.
            batch_size: Micro-batch size of the fresh engine.
            workers: Concurrent tasks in flight in the fresh engine.
            tenants: Per-tenant scheduling/rate-limit configuration (see
                :mod:`repro.tenancy`); ``None`` leaves tenancy off.

        Returns:
            A :class:`Client` whose submissions run on the local engine.

        Raises:
            ValueError: If both ``pipeline`` and ``llm``/``config`` are given.

        Example:
            >>> from repro.api import Client, TransformationSpec
            >>> spec = TransformationSpec(value="19990415",
            ...                           examples=[["20000101", "2000-01-01"]])
            >>> with Client.local(seed=0) as client:
            ...     client.submit(spec).answer
            '1999-04-15'
        """
        from ..core.config import UniDMConfig
        from ..core.pipeline import UniDM
        from ..serving.engine import EngineConfig, ExecutionEngine
        from ..serving.service import ServingService, build_service

        if pipeline is not None:
            if llm is not None or config is not None:
                raise ValueError(
                    "pass either pipeline= or llm=/config= to Client.local, not "
                    "both — a ready pipeline already fixes its model and config"
                )
            if engine is None:
                engine = ExecutionEngine(
                    EngineConfig(max_batch_size=batch_size, workers=workers)
                )
            service = ServingService(pipeline, engine, tenants=tenants)
        elif llm is not None:
            pipeline = UniDM(llm, config or UniDMConfig.full(seed=seed))
            if engine is None:
                engine = ExecutionEngine(
                    EngineConfig(max_batch_size=batch_size, workers=workers)
                )
            service = ServingService(pipeline, engine, tenants=tenants)
        else:
            service = build_service(
                model=model,
                seed=seed,
                cache_dir=cache_dir,
                batch_size=batch_size,
                workers=workers,
                knowledge=knowledge,
                tenants=tenants,
            )
            if config is not None:
                service.pipeline = UniDM(service.pipeline.llm, config)
            if engine is not None:
                service.engine = engine
        return cls(_LocalBackend(service))

    @classmethod
    def remote(
        cls,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 30.0,
        *,
        protocol: str = "auto",
        pool_size: int = 4,
    ) -> "Client":
        """A client speaking the wire transport to a running TCP service.

        Connections are pooled and keep-alive; each one negotiates the
        framing at connect time (binary frames against a transport-aware
        server, legacy JSON lines otherwise — see
        ``docs/wire-transport.md``), and ``submit_many`` pipelines its whole
        batch over one connection instead of paying a round trip per
        request.

        Args:
            host: Service host (``python -m repro serve --port ...``).
            port: Service TCP port.
            timeout: Per-connection socket timeout in seconds.
            protocol: ``"auto"`` (default) negotiates framing at connect;
                ``"lines"`` skips the handshake and speaks the plain
                JSON-lines protocol.
            pool_size: Idle keep-alive connections retained for reuse.

        Returns:
            A :class:`Client` whose submissions travel over TCP; the
            spec/result semantics are identical to :meth:`local`.
        """
        return cls(
            _RemoteBackend(
                host, port, timeout, protocol=protocol, pool_size=pool_size
            )
        )

    @classmethod
    def cluster(
        cls,
        workers: int = 4,
        *,
        mode: str = "thread",
        seed: int = 0,
        model: str | None = None,
        knowledge: Any = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        queue_depth: int = 32,
        llm_factory: Any = None,
        config: "UniDMConfig | None" = None,
        router: "Router | None" = None,
        tenants: "TenantRegistry | None" = None,
    ) -> "Client":
        """A client over a sharded multi-worker cluster (see ``repro.cluster``).

        Specs are consistent-hashed across ``workers`` serving stacks, each
        owning a disjoint persistent-cache shard, so repeated work always
        lands on the worker already holding its completions.  Submission
        semantics are identical to :meth:`local` / :meth:`remote`.

        Args:
            workers: Number of shard workers.
            mode: ``"thread"`` for in-process workers, ``"process"`` for
                spawned ``python -m repro serve`` subprocesses speaking the
                v2 TCP protocol.
            seed: Seed of every worker's pipeline + simulated LLM.
            model: Simulated-model profile of every worker.
            knowledge: World-knowledge store shared by thread workers.
            cache_dir: Parent directory of the per-worker persistent cache
                shards (``<cache_dir>/worker-NN``).
            batch_size: Micro-batch size of each worker's engine.
            engine_workers: Concurrent tasks in flight per worker engine.
            queue_depth: Bounded work-queue depth per thread worker
                (backpressure bound).
            llm_factory: ``int -> LanguageModel`` building a custom backend
                per thread worker (benchmarks, tests).
            config: Pipeline configuration override for thread workers.
            router: A ready :class:`~repro.cluster.router.Router` to wrap
                (every other argument is then ignored).
            tenants: Per-tenant scheduling/rate-limit configuration
                enforced at the router (see :mod:`repro.tenancy`).

        Returns:
            A :class:`Client` whose submissions fan out across the cluster.

        Raises:
            ValueError: If ``mode`` is not ``"thread"`` or ``"process"``,
                or ``workers`` is not positive.

        Example:
            >>> from repro.api import Client, TransformationSpec
            >>> specs = [TransformationSpec(value=value,
            ...                             examples=[["20000101", "2000-01-01"]])
            ...          for value in ["19990415", "20061231"]]
            >>> with Client.cluster(workers=2, seed=0) as client:
            ...     [result.answer for result in client.submit_many(specs)]
            ['1999-04-15', '2006-12-31']
        """
        from ..cluster.router import Router

        if router is None:
            if mode == "thread":
                router = Router.local(
                    workers,
                    seed=seed,
                    model=model,
                    knowledge=knowledge,
                    cache_dir=cache_dir,
                    batch_size=batch_size,
                    engine_workers=engine_workers,
                    queue_depth=queue_depth,
                    llm_factory=llm_factory,
                    config=config,
                    tenants=tenants,
                )
            elif mode == "process":
                router = Router.spawn(
                    workers,
                    seed=seed,
                    model=model,
                    cache_dir=cache_dir,
                    batch_size=batch_size,
                    engine_workers=engine_workers,
                    tenants=tenants,
                )
            else:
                raise ValueError(
                    f"mode must be 'thread' or 'process', got {mode!r}"
                )
        return cls(_ClusterBackend(router))

    # -------------------------------------------------------------- spec path
    def submit(
        self,
        spec: TaskSpec,
        *,
        priority: int = 0,
        tenant: str | None = None,
        retries: int = 0,
    ) -> TaskResult:
        """Execute one task spec; raise on failure.

        Raises ``OverloadedError`` (with ``retry_after``) when admission
        control shed the request, ``RateLimitedError`` when the request's
        ``tenant`` exceeded its limits, ``TaskFailedError`` for any other
        error response.  ``retries`` bounds automatic resubmission of those
        shed responses (see :meth:`submit_many`).
        """
        return self.submit_many(
            [spec], priority=priority, tenant=tenant, retries=retries
        )[0].unwrap()

    def submit_many(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        tenant: str | None = None,
        retries: int = 0,
    ) -> list[TaskResult]:
        """Execute a batch of specs; responses keep submission order.

        Failures never abort the batch — each failed item carries its
        structured error in ``result.error`` (``result.ok`` is False).
        Every v2 envelope is stamped with a trace id (the active
        :class:`~repro.obs.Trace` context's id, or a fresh one per request)
        and, when nonzero, ``priority`` — honored at dequeue by admission-
        controlled services.  ``tenant`` rides the envelope too, so a
        tenancy-configured front door accounts, rate-limits and
        fair-schedules the batch under that tenant (see
        :mod:`repro.tenancy`).  The whole call is timed under a
        ``client.submit`` span; inside a :class:`~repro.obs.Trace` context
        it becomes the root of the request's distributed span tree.

        ``retries`` (opt-in, default 0) bounds automatic resubmission of
        items shed with ``overloaded`` or ``rate_limited``: after each
        round the client sleeps the largest ``retry_after`` hint among the
        shed items (floored/capped client-side) and resubmits only those.
        Items still shed after ``retries`` rounds keep their error.
        """
        results = self._submit_once(specs, priority, tenant)
        for _ in range(retries):
            positions = _retryable_positions(results)
            if not positions:
                break
            time.sleep(_backoff_hint(results, positions))
            retried = self._submit_once(
                [specs[position] for position in positions], priority, tenant
            )
            for position, result in zip(positions, retried):
                results[position] = result
        return results

    async def asubmit_many(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        tenant: str | None = None,
        retries: int = 0,
    ) -> list[TaskResult]:
        """Async flavour of :meth:`submit_many` (same ordering/error rules)."""
        results = await self._asubmit_once(specs, priority, tenant)
        for _ in range(retries):
            positions = _retryable_positions(results)
            if not positions:
                break
            await asyncio.sleep(_backoff_hint(results, positions))
            retried = await self._asubmit_once(
                [specs[position] for position in positions], priority, tenant
            )
            for position, result in zip(positions, retried):
                results[position] = result
        return results

    def _submit_once(
        self, specs: Sequence[TaskSpec], priority: int, tenant: str | None
    ) -> list[TaskResult]:
        with span("client.submit", specs=len(specs)):
            requests, ids = self._encode(specs, priority=priority, tenant=tenant)
            if not requests:
                return []
            self._last_trace = requests[0].get("trace")
            started = time.perf_counter()
            responses = self._backend.send(requests)
            elapsed = time.perf_counter() - started
            return self._decode(responses, ids, elapsed)

    async def _asubmit_once(
        self, specs: Sequence[TaskSpec], priority: int, tenant: str | None
    ) -> list[TaskResult]:
        with span("client.submit", specs=len(specs)):
            requests, ids = self._encode(specs, priority=priority, tenant=tenant)
            if not requests:
                return []
            self._last_trace = requests[0].get("trace")
            started = time.perf_counter()
            responses = await self._backend.asend(requests)
            elapsed = time.perf_counter() - started
            return self._decode(responses, ids, elapsed)

    def last_trace(self) -> str | None:
        """Trace id stamped on the most recent submission (or ``None``)."""
        return self._last_trace

    def events(
        self, trace: str | None = None, *, kind: str | None = None
    ) -> list[dict]:
        """Buffered events of the process-default event log.

        Args:
            trace: Restrict to one trace id; defaults to :meth:`last_trace`
                (pass ``""`` for every trace).
            kind: Restrict to one event kind (e.g. ``"span"``).
        """
        if trace is None:
            trace = self._last_trace
        if trace == "":
            trace = None
        return get_default_event_log().events(trace=trace, kind=kind)

    def stats(
        self, prefix: str = "", *, tenant: str | None = None, reset: bool = False
    ) -> Any:
        """The serving front-end's observability snapshot.

        Submits a :class:`~repro.api.stats_spec.StatsSpec` through the same
        wire path as every other request, so local, remote and cluster
        clients answer identically shaped snapshots: a ``metrics`` section
        (counters / gauges / histogram percentiles of the
        :class:`~repro.obs.MetricsRegistry`) plus a front-end section
        (service totals, or the aggregated cluster stats).

        Args:
            prefix: Restrict the ``metrics`` section to names under this
                dotted prefix (e.g. ``"batcher"``).
            tenant: Restrict the snapshot to one tenant — the ``metrics``
                section narrows to ``tenant.<resolved>.*`` and the
                ``tenancy`` section reports only that tenant's state.
            reset: Zero every metric (in place) after the snapshot, so the
                next one describes only what happened since — benchmark
                isolation without snapshot subtraction.
        """
        from .stats_spec import StatsSpec

        return self.submit(
            StatsSpec(prefix=prefix, tenant=tenant or "", reset=reset)
        ).answer

    def health(self) -> dict:
        """The serving front-end's liveness/readiness view.

        Reads the ``health`` section of the stats snapshot (produced by the
        service's :class:`~repro.obs.slo.HealthMonitor`): ``status``
        (``"ok"`` / ``"degraded"``), ``ready`` plus the ``reasons`` it is
        not, uptime and the firing-alert count.  Same wire path as
        :meth:`stats`, so it works identically for local, remote and
        cluster clients.
        """
        snapshot = self.stats()
        health = snapshot.get("health") if isinstance(snapshot, dict) else None
        if not isinstance(health, dict):
            # Pre-SLO service: alive by virtue of having answered.
            return {"status": "ok", "ready": True, "reasons": []}
        return health

    def workers(self) -> "tuple[int, int] | None":
        """Cluster mode: the ``(live, total)`` worker count, else ``None``.

        Reads the ``workers`` detail of the health section — the counts
        move at runtime as the elastic ring resizes (joins, drained leaves,
        crash restarts), so this is the cheap way to watch a cluster scale
        without parsing the full per-worker stats rows.
        """
        workers = self.health().get("workers")
        if not isinstance(workers, dict):
            return None
        return int(workers.get("live", 0)), int(workers.get("total", 0))

    def alerts(self) -> list[dict]:
        """The firing SLO alerts of the serving front-end (may be empty).

        Each alert carries the objective's name, kind, severity, metric,
        the per-window values that breached, and how long it has been
        firing (``for_s``).  Empty when no SLOs are configured or nothing
        is breaching.
        """
        snapshot = self.stats()
        alerts = snapshot.get("alerts") if isinstance(snapshot, dict) else None
        return alerts if isinstance(alerts, list) else []

    # -------------------------------------------------------------- task path
    def run_task(self, task: "Task") -> "ManipulationResult":
        """Run one pipeline task in-process (rich result with prompt trace)."""
        return self._backend.run_tasks([task])[0]

    def run_tasks(self, tasks: Iterable["Task"]) -> "list[ManipulationResult]":
        """Run pipeline tasks through the local engine, preserving order."""
        return self._backend.run_tasks(list(tasks))

    # ------------------------------------------------------------- life-cycle
    @property
    def is_local(self) -> bool:
        return isinstance(self._backend, _LocalBackend)

    @property
    def service(self) -> "ServingService":
        """The in-process service (local clients only)."""
        return self._backend.service  # raises on remote backends

    @property
    def pipeline(self) -> "UniDM":
        """The in-process pipeline (local clients only)."""
        return self._backend.service.pipeline

    @property
    def router(self) -> "Router":
        """The cluster router (cluster clients only).

        Raises:
            TransportError: When this client is not a cluster client.
        """
        backend = self._backend
        if not isinstance(backend, _ClusterBackend):
            raise TransportError("this client has no router; use Client.cluster")
        return backend.router

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- internals
    def _encode(
        self, specs: Sequence[TaskSpec], priority: int = 0, tenant: str | None = None
    ) -> tuple[list[dict], list[int]]:
        requests, ids = [], []
        for spec in specs:
            if not isinstance(spec, TaskSpec):
                raise TypeError(
                    f"submit expects TaskSpec instances, got {type(spec).__name__}; "
                    "use run_task/run_tasks for pipeline Task objects"
                )
            request_id = self._next_id
            self._next_id += 1
            requests.append(
                encode_request(
                    spec,
                    request_id,
                    PROTOCOL_VERSION,
                    trace=Trace.current_id() or new_trace_id(),
                    priority=priority,
                    tenant=tenant,
                )
            )
            ids.append(request_id)
        return requests, ids

    def _decode(
        self, responses: list[dict], ids: list[int], elapsed: float
    ) -> list[TaskResult]:
        if len(responses) != len(ids):
            raise TransportError(
                f"service answered {len(responses)} responses for {len(ids)} requests"
            )
        by_id = {}
        for response in responses:
            result = decode_response(response)
            by_id[result.id] = result
        per_item = elapsed / len(ids)
        ordered = []
        for position, request_id in enumerate(ids):
            result = by_id.get(request_id)
            if result is None:  # service echoed no/garbled ids: trust ordering
                result = decode_response(responses[position])
            result.elapsed = per_item
            ordered.append(result)
        return ordered


# -------------------------------------------------------------------- retries
def _retryable_positions(results: "list[TaskResult]") -> list[int]:
    """Positions whose error is a shed (`overloaded`/`rate_limited`) response."""
    return [
        position
        for position, result in enumerate(results)
        if result.error is not None and result.error.code in _RETRYABLE_CODES
    ]


def _backoff_hint(results: "list[TaskResult]", positions: list[int]) -> float:
    """The sleep honoring the largest ``retry_after`` among shed items."""
    hint = max(
        (results[position].error.retry_after or 0.0) for position in positions
    )
    return min(max(hint, _RETRY_FLOOR), _RETRY_CAP)


# ------------------------------------------------------------------- backends
class _Backend:
    """Transport strategy: how encoded request batches reach the service."""

    def send(self, requests: list[dict]) -> list[dict]:
        raise NotImplementedError

    async def asend(self, requests: list[dict]) -> list[dict]:
        raise NotImplementedError

    def run_tasks(self, tasks: "list[Task]") -> "list[ManipulationResult]":
        raise TransportError("run_task/run_tasks need a local client; this one is remote")

    def close(self) -> None:
        pass


class _LocalBackend(_Backend):
    """Requests answered by an in-process :class:`ServingService`."""

    def __init__(self, service: "ServingService"):
        self.service = service

    def send(self, requests: list[dict]) -> list[dict]:
        return self.service.handle_batch(requests)

    async def asend(self, requests: list[dict]) -> list[dict]:
        # handle_batch spins its own event loop; keep it off this one.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.service.handle_batch, requests)

    def run_tasks(self, tasks: "list[Task]") -> "list[ManipulationResult]":
        return self.service.run_tasks(tasks)


class _ClusterBackend(_Backend):
    """Requests answered by a sharded :class:`~repro.cluster.router.Router`.

    The router exposes the same ``handle_batch`` contract as the in-process
    service, so the facade treats a cluster exactly like a bigger local
    service — per-spec placement, backpressure and failover live entirely
    inside the router.
    """

    def __init__(self, router: "Router"):
        self.router = router

    def send(self, requests: list[dict]) -> list[dict]:
        return self.router.handle_batch(requests)

    async def asend(self, requests: list[dict]) -> list[dict]:
        # Worker batches run their own event loops; keep them off this one.
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.router.handle_batch, requests)

    def run_tasks(self, tasks: "list[Task]") -> "list[ManipulationResult]":
        raise TransportError(
            "run_task/run_tasks need a single local engine; a cluster routes "
            "typed specs only — use submit/submit_many"
        )

    def close(self) -> None:
        self.router.close()


class _RemoteBackend(_Backend):
    """Requests shipped over the negotiated TCP wire transport.

    Connections are **pooled and keep-alive**: the first batch pays one
    connect + handshake round trip (see
    :class:`repro.serving.transport.WireConnection` — binary framing when
    the server speaks it, multiplexed JSON lines otherwise, legacy
    blank-line batches against pre-transport servers), and every later
    batch reuses a pooled connection, pipelining all of its requests before
    reading any response.  ``protocol="lines"`` skips negotiation entirely
    and speaks the legacy protocol, one pooled connection per batch.

    A batch that fails on a pooled connection (the server restarted, a
    keep-alive socket went stale) is retried once on a fresh connection
    before surfacing a :class:`TransportError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        *,
        protocol: str = "auto",
        pool_size: int = 4,
    ):
        if protocol not in ("auto", "lines"):
            raise ValueError(f"protocol must be 'auto' or 'lines', got {protocol!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.protocol = protocol
        self.pool_size = pool_size
        self._pool: Any = None
        self._pool_lock = threading.Lock()

    # ----------------------------------------------------------------- sync
    def _pool_handle(self) -> Any:
        with self._pool_lock:
            if self._pool is None:
                from ..serving.transport import WireConnectionPool

                self._pool = WireConnectionPool(
                    self.host,
                    self.port,
                    self.timeout,
                    size=self.pool_size,
                    negotiate=self.protocol == "auto",
                )
            return self._pool

    def send(self, requests: list[dict]) -> list[dict]:
        from ..serving.transport import FrameError

        pool = self._pool_handle()
        last_error: Exception | None = None
        for attempt in range(2):
            try:
                conn = pool.acquire()
            except OSError as exc:
                raise TransportError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                responses = conn.send_batch(requests)
            except (OSError, FrameError, ConnectionError) as exc:
                # A stale keep-alive connection fails on first use after a
                # server restart; one fresh-connection retry absorbs that.
                conn.close()
                last_error = exc
                continue
            pool.release(conn)
            return responses
        raise TransportError(
            f"service at {self.host}:{self.port} dropped the batch: {last_error}"
        ) from last_error

    # ---------------------------------------------------------------- async
    async def asend(self, requests: list[dict]) -> list[dict]:
        # One connection per batch, closed before returning: connections
        # must not outlive their event loop (callers often use asyncio.run),
        # and the streaming win — all requests in flight before any response
        # is read — is per-batch, not per-connection.
        from ..serving.transport import AsyncWireConnection, FrameError

        last_error: Exception | None = None
        for attempt in range(2):
            try:
                conn = await AsyncWireConnection.open(
                    self.host,
                    self.port,
                    self.timeout,
                    negotiate=self.protocol == "auto",
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot reach service at {self.host}:{self.port}: {exc}"
                ) from exc
            try:
                return await conn.send_batch(requests)
            except (OSError, FrameError, ConnectionError, asyncio.TimeoutError) as exc:
                last_error = exc
            finally:
                await conn.close()
        raise TransportError(
            f"service at {self.host}:{self.port} dropped the batch: {last_error}"
        ) from last_error

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()


__all__ = ["Client"]
