"""Unit tests for the evaluation harness and reporting helpers."""

import pytest

from repro.core.types import TaskType
from repro.eval import evaluate, evaluate_many, format_markdown_table, format_table, metric_for, pivot_rows
from repro.eval.harness import EvaluationResult


class OracleMethod:
    """Per-task method that answers from the dataset's ground truth."""

    name = "oracle"

    def __init__(self, dataset):
        self.mapping = {id(task): truth for task, truth in zip(dataset.tasks, dataset.ground_truth)}

    def solve(self, task):
        return self.mapping[id(task)]


class ConstantDatasetMethod:
    name = "constant"

    def __init__(self, value):
        self.value = value

    def predict_dataset(self, dataset):
        return [self.value] * len(dataset.tasks)


class BrokenDatasetMethod:
    name = "broken"

    def predict_dataset(self, dataset):
        return ["x"]


def test_metric_selection_per_task_type():
    assert metric_for(TaskType.DATA_IMPUTATION)[0] == "accuracy"
    assert metric_for(TaskType.ERROR_DETECTION)[0] == "f1"
    assert metric_for(TaskType.ENTITY_RESOLUTION)[0] == "f1"
    assert metric_for(TaskType.INFORMATION_EXTRACTION)[0] == "text_f1"


def test_evaluate_oracle_scores_one(restaurant_dataset):
    result = evaluate(OracleMethod(restaurant_dataset), restaurant_dataset)
    assert result.score == 1.0
    assert result.metric_name == "accuracy"
    assert result.n_tasks == len(restaurant_dataset)
    assert result.tokens_per_query == 0


def test_evaluate_max_tasks_subsets(restaurant_dataset):
    result = evaluate(OracleMethod(restaurant_dataset), restaurant_dataset, max_tasks=5)
    assert result.n_tasks == 5


def test_evaluate_dataset_level_method(hospital_dataset):
    result = evaluate(ConstantDatasetMethod(True), hospital_dataset)
    assert result.metric_name == "f1"
    assert result.extras["recall"] == 1.0
    assert result.extras["precision"] < 0.2


def test_evaluate_rejects_misaligned_predictions(hospital_dataset):
    with pytest.raises(ValueError):
        evaluate(BrokenDatasetMethod(), hospital_dataset)


def test_evaluate_many(restaurant_dataset):
    results = evaluate_many(
        [OracleMethod(restaurant_dataset), ConstantDatasetMethod("nowhere")],
        restaurant_dataset,
        max_tasks=5,
    )
    assert [r.method for r in results] == ["oracle", "constant"]
    assert results[0].score >= results[1].score


def test_result_summary_and_percent(restaurant_dataset):
    result = evaluate(OracleMethod(restaurant_dataset), restaurant_dataset, max_tasks=3)
    assert result.score_percent == 100.0
    assert "oracle" in result.summary()


def test_format_table_and_markdown_and_pivot():
    rows = [
        {"method": "A", "dataset": "d1", "score": 1.234},
        {"method": "B", "dataset": "d1", "score": 2.0},
    ]
    text = format_table(rows, title="demo")
    assert "demo" in text and "1.2" in text
    markdown = format_markdown_table(rows)
    assert markdown.startswith("| method")
    assert format_table([]) == "(no rows)"
    pivoted = pivot_rows(rows, index="dataset", column="method", value="score")
    assert pivoted[0]["A"] == 1.234 and pivoted[0]["B"] == 2.0


def test_evaluation_result_tokens_per_query_zero_tasks():
    result = EvaluationResult(
        method="m", dataset="d", task_type=TaskType.DATA_IMPUTATION,
        metric_name="accuracy", score=0.0, n_tasks=0,
    )
    assert result.tokens_per_query == 0.0
