"""The cluster router — sharded serving with cache affinity.

:class:`Router` fans :class:`~repro.api.specs.TaskSpec` batches out over N
workers (threads in-process, or spawned ``python -m repro serve`` processes
speaking the v2 TCP protocol).  Placement is a consistent-hash ring over the
spec's canonical wire form (:mod:`repro.cluster.hashing`), so:

* the same spec always lands on the same worker — its completions live in
  that worker's in-memory LRU and on-disk
  :class:`~repro.serving.cache.PersistentCache` shard, and cache hits never
  cross a shard boundary;
* shard contents stay disjoint at the spec level — a worker only ever warms
  prompts arising from specs it owns, so N workers hold N shards of the
  cache, not N copies.  (Two *different* specs on different workers can
  still issue one identical sub-prompt; that is duplicated work across
  shards, not a correctness problem, and it is rare because whole specs —
  the unit the flow planner dedups — never split.)

Per-worker batches are submitted concurrently; each
:class:`~repro.cluster.workers.ThreadWorker` applies its own bounded-queue
backpressure.  When a worker dies mid-batch (:class:`WorkerDeadError`), the
router removes it from the ring and requeues the affected specs onto the
surviving workers — consistent hashing keeps every other spec exactly where
its cache is.

Determinism: each worker is a complete serving stack whose engine preserves
the ordered-retrieval guarantee, so under the documented determinism regime
(a warmed cache, or an execution that is a pure function of each spec — see
:mod:`repro.serving.engine`) cluster results are bit-identical to a single
engine's ``run_many`` at any worker count.  ``tests/cluster/test_parity.py``
enforces this.

Pipeline requests (:class:`~repro.api.pipeline_spec.PipelineSpec`) do not
hash to one worker: the router runs the streaming
:class:`~repro.flow.executor.FlowExecutor` itself and fans the plan's spec
batches out across the ring, so a whole-table pipeline is cluster-parallel
wave by wave.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from ..api.pipeline_spec import PipelineSpec
from ..api.protocol import (
    PROTOCOL_VERSION,
    decode_response,
    encode_error,
    encode_request,
    encode_success,
)
from ..api.results import TaskResult
from ..api.specs import TaskSpec
from ..api.stats_spec import StatsSpec
from ..obs.admission import AdmissionController
from ..obs.events import emit_event
from ..obs.export import get_default_exemplars
from ..obs.metrics import MetricsRegistry, get_default_registry
from ..obs.slo import HealthMonitor, SLOSpec
from ..obs.span import Span, remote_span, span
from ..tenancy import TenancyController, TenantRegistry
from .hashing import HashRing, spec_key
from .stats import ClusterStats, WorkerStats
from .workers import ClusterError, SubprocessWorker, ThreadWorker, Worker, WorkerDeadError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.config import UniDMConfig
    from ..llm.base import LanguageModel

__all__ = ["Router"]


class Router:
    """Routes spec batches across workers by consistent hash of the spec.

    Parameters
    ----------
    workers:
        The shard workers (see :mod:`repro.cluster.workers`).  The router
        owns them: :meth:`close` closes every worker.
    replicas:
        Virtual nodes per worker on the hash ring.
    health_interval:
        Seconds between opportunistic liveness sweeps (checked at submit
        time); ``None`` disables sweeps, leaving death detection to failed
        submissions.

    Raises
    ------
    ValueError
        If no workers are given or two workers share an id.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        *,
        replicas: int = 64,
        health_interval: float | None = 30.0,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        retry_after: float = 0.05,
        metrics: MetricsRegistry | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
        monitor_interval: float = 1.0,
    ):
        if not workers:
            raise ValueError("a cluster needs at least one worker")
        ids = [worker.worker_id for worker in workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {ids}")
        self.workers: dict[str, Worker] = {w.worker_id: w for w in workers}
        self._ring = HashRing(ids, replicas=replicas)
        self._pool = ThreadPoolExecutor(
            max_workers=len(workers), thread_name_prefix="repro-router"
        )
        self._lock = threading.Lock()
        self._routed: dict[str, int] = {wid: 0 for wid in ids}
        self._requeues = 0
        self._deaths = 0
        self.requests_served = 0
        self._health_interval = health_interval
        self._last_health = time.monotonic()
        self._closed = False
        self._metrics = metrics or get_default_registry()
        self._m_routed = {
            wid: self._metrics.counter(f"router.routed.{wid}") for wid in ids
        }
        self._m_requeued = self._metrics.counter("router.requeued")
        self._m_deaths = self._metrics.counter("router.deaths")
        self._m_inflight = self._metrics.gauge("router.inflight")
        self.admission = AdmissionController(
            max_inflight,
            max_queue_depth,
            retry_after=retry_after,
            name="router.admission",
            metrics=self._metrics,
        )
        # Tenancy is enforced once, here at the front door; worker services
        # run tenancy-free so a spec is never double-charged.  The claimed
        # tenant still rides every worker-bound envelope (with its weight)
        # so thread workers dequeue weighted-fair across tenants.
        self.tenancy = (
            TenancyController(tenants, retry_after=retry_after, metrics=self._metrics)
            if tenants is not None
            else None
        )
        # Readiness in cluster mode additionally requires every registered
        # worker alive: the ring is fixed at startup and dead workers never
        # rejoin, so the correct supervisor reaction is a restart.
        self.monitor = HealthMonitor(
            registry=self._metrics,
            slos=slos,
            interval=monitor_interval,
            admission=self.admission,
            workers_alive=lambda: (len(self.live_workers), len(self.workers)),
        )

    # ------------------------------------------------------------ constructors
    @classmethod
    def local(
        cls,
        n_workers: int = 4,
        *,
        seed: int = 0,
        model: str | None = None,
        knowledge: Any = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        queue_depth: int = 32,
        llm_factory: "Any | None" = None,
        config: "UniDMConfig | None" = None,
        replicas: int = 64,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
    ) -> "Router":
        """A router over ``n_workers`` in-process thread workers.

        Every worker assembles its own serving stack (simulated LLM → cache
        → engine) with the same ``seed``; with ``cache_dir`` each worker's
        persistent shard lives in ``<cache_dir>/worker-NN``, so shards stay
        disjoint on disk and re-open warm on restart.  ``llm_factory`` (an
        ``int -> LanguageModel`` callable) substitutes a custom backend per
        worker — benchmarks and parity tests use it.
        """
        from ..core.pipeline import UniDM
        from ..serving.service import build_service

        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        workers = []
        for index in range(n_workers):
            worker_id = f"worker-{index:02d}"
            shard_dir = (
                str(Path(cache_dir) / worker_id) if cache_dir is not None else None
            )
            service = build_service(
                model=model,
                seed=seed,
                cache_dir=shard_dir,
                batch_size=batch_size,
                workers=engine_workers,
                knowledge=knowledge,
                llm=llm_factory(index) if llm_factory is not None else None,
            )
            if config is not None:
                service.pipeline = UniDM(service.pipeline.llm, config)
            workers.append(
                ThreadWorker(worker_id, service, queue_depth=queue_depth)
            )
        return cls(
            workers,
            replicas=replicas,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            tenants=tenants,
            slos=slos,
        )

    @classmethod
    def spawn(
        cls,
        n_workers: int = 4,
        *,
        seed: int = 0,
        model: str | None = None,
        cache_dir: str | None = None,
        batch_size: int = 8,
        engine_workers: int = 8,
        host: str = "127.0.0.1",
        replicas: int = 64,
        max_inflight: int | None = None,
        max_queue_depth: int | None = None,
        tenants: TenantRegistry | None = None,
        slos: Sequence[SLOSpec] = (),
    ) -> "Router":
        """A router over ``n_workers`` spawned ``repro serve`` subprocesses.

        Each child binds its own TCP port and owns the
        ``<cache_dir>/worker-NN`` shard directory; the router speaks the
        existing v2 line protocol to them, so a subprocess cluster exercises
        exactly the wire path a remote deployment would.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        workers: list[Worker] = []
        try:
            for index in range(n_workers):
                worker_id = f"worker-{index:02d}"
                shard_dir = (
                    str(Path(cache_dir) / worker_id) if cache_dir is not None else None
                )
                workers.append(
                    SubprocessWorker(
                        worker_id,
                        host=host,
                        seed=seed,
                        model=model,
                        cache_dir=shard_dir,
                        batch_size=batch_size,
                        engine_workers=engine_workers,
                    )
                )
        except Exception:
            for worker in workers:
                worker.close()
            raise
        return cls(
            workers,
            replicas=replicas,
            max_inflight=max_inflight,
            max_queue_depth=max_queue_depth,
            tenants=tenants,
            slos=slos,
        )

    # ----------------------------------------------------------------- routing
    def worker_for(self, spec: TaskSpec) -> str:
        """The live worker id owning ``spec`` (affinity diagnostic)."""
        return self._ring.node_for(spec_key(spec))

    def submit_specs(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        trace: str | None = None,
        span_parent: str | None = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        """Execute specs across the cluster; results keep submission order.

        Specs are grouped by ring placement and the per-worker groups run
        concurrently.  A worker death mid-batch removes it from the ring and
        requeues only its group — every other spec stays on the worker
        holding its cache.  Per-item failures come back embedded as
        ``result.error`` (like :meth:`repro.api.Client.submit_many`).

        ``stats`` specs are answered from the router itself (aggregated
        snapshot), before admission control.  When tenancy is on, the whole
        call is charged against ``tenant``'s token bucket and inflight cap
        first — excess comes back as per-spec ``rate_limited`` errors — and
        then global admission applies: when the batch would exceed the
        pending bound, every spec of the batch comes back with an
        ``overloaded`` error instead of queueing.
        ``trace`` (one id for the batch) is forwarded on every worker-bound
        envelope so the id survives the extra hop; ``span_parent`` (the
        caller's span id) parents the router's ``router.submit`` span so the
        hop joins the caller's span tree.

        Raises
        ------
        ClusterError
            When every worker has died.
        """
        from ..serving.service import overloaded_error

        spec_list = list(specs)
        results: list[TaskResult | None] = [None] * len(spec_list)
        work: list[tuple[int, TaskSpec]] = []
        for index, spec in enumerate(spec_list):
            if isinstance(spec, StatsSpec):
                results[index] = TaskResult(
                    answer=self.stats_snapshot(
                        spec.prefix, reset=spec.reset, tenant=spec.tenant
                    ),
                    task_type="stats",
                    tenant=tenant,
                )
            else:
                work.append((index, spec))
        if work:
            resolved = (
                self.tenancy.resolve(tenant) if self.tenancy is not None else None
            )
            if self.tenancy is not None:
                info = self.tenancy.admit(resolved, len(work))
                if info is not None:
                    emit_event("tenancy.shed", trace=trace, **(info.details or {}))
                    for index, _ in work:
                        results[index] = TaskResult(
                            answer=None, error=info, tenant=tenant
                        )
                    with self._lock:
                        self.requests_served += len(spec_list)
                    return [result for result in results if result is not None]
            started = time.perf_counter()
            try:
                if not self.admission.try_acquire(len(work)):
                    info = overloaded_error(self.admission)
                    emit_event(
                        "admission.shed",
                        trace=trace,
                        name=self.admission.name,
                        requests=len(work),
                        **(info.details or {}),
                    )
                    for index, _ in work:
                        results[index] = TaskResult(answer=None, error=info, tenant=tenant)
                else:
                    try:
                        with remote_span(
                            "router.submit",
                            trace_id=trace,
                            parent_id=span_parent,
                            specs=len(work),
                            tenant=resolved,
                        ):
                            answered = self._dispatch(
                                [spec for _, spec in work],
                                priority=priority,
                                trace=trace,
                                tenant=resolved,
                            )
                    finally:
                        self.admission.release(len(work))
                    for (index, _), result in zip(work, answered):
                        if result.tenant is None:
                            result.tenant = tenant
                        results[index] = result
            finally:
                if self.tenancy is not None:
                    self.tenancy.release(resolved, len(work))
                    self.tenancy.observe_latency(
                        resolved, time.perf_counter() - started, len(work)
                    )
        with self._lock:
            # Top-level requests only: the nested wave submissions a
            # pipeline plan makes through _dispatch do not inflate this.
            self.requests_served += len(spec_list)
        return [result for result in results if result is not None]

    def _dispatch(
        self,
        specs: Sequence[TaskSpec],
        *,
        priority: int = 0,
        trace: str | None = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        if self._closed:
            raise ClusterError("router is closed")
        self._maybe_sweep()
        results: list[TaskResult | None] = [None] * len(specs)
        pending: list[tuple[int, TaskSpec]] = []
        plans: list[tuple[int, PipelineSpec]] = []
        for index, spec in enumerate(specs):
            if isinstance(spec, PipelineSpec):
                plans.append((index, spec))
            else:
                pending.append((index, spec))

        inflight = self._m_inflight
        n_tracked = len(pending)
        inflight.inc(n_tracked)
        # Pool threads get no contextvars; capture the caller's span (the
        # router.submit span, or a flow.wave span for nested wave dispatches)
        # here so every per-worker dispatch span parents under it.
        parent_span = Span.current()
        try:
            rounds = 0
            while pending:
                rounds += 1
                if rounds > len(self.workers) + 1:  # pragma: no cover - defensive
                    raise ClusterError("requeue loop exceeded the worker count")
                groups: dict[str, list[tuple[int, TaskSpec]]] = {}
                try:
                    for index, spec in pending:
                        groups.setdefault(self.worker_for(spec), []).append(
                            (index, spec)
                        )
                except LookupError as exc:
                    raise ClusterError(str(exc)) from exc
                futures = {
                    worker_id: self._pool.submit(
                        self._submit_group,
                        worker_id,
                        group,
                        priority,
                        trace,
                        parent_span,
                        tenant,
                    )
                    for worker_id, group in groups.items()
                }
                pending = []
                for worker_id, future in futures.items():
                    group = groups[worker_id]
                    try:
                        answered = future.result()
                    except (WorkerDeadError, ClusterError):
                        self._mark_dead(worker_id)
                        with self._lock:
                            self._requeues += len(group)
                        self._m_requeued.inc(len(group))
                        emit_event(
                            "router.requeue",
                            trace=trace,
                            worker=worker_id,
                            specs=len(group),
                        )
                        pending.extend(group)
                        continue
                    for (index, _), result in zip(group, answered):
                        results[index] = result
        finally:
            inflight.dec(n_tracked)

        for index, spec in plans:
            results[index] = self._run_plan(spec, tenant=tenant)
        return [result for result in results if result is not None]

    def _submit_group(
        self,
        worker_id: str,
        group: "list[tuple[int, TaskSpec]]",
        priority: int = 0,
        trace: str | None = None,
        parent: "Span | None" = None,
        tenant: str | None = None,
    ) -> list[TaskResult]:
        worker = self.workers[worker_id]
        # Runs on a pool thread: the dispatch span is re-rooted from the
        # captured caller span, and its id rides the envelope's "span" key so
        # the worker-side subtree (possibly in another process, over TCP)
        # parents under this hop.
        wire_trace = trace if trace is not None else (
            parent.trace_id if parent is not None else None
        )
        with span(
            "router.dispatch",
            trace_id=wire_trace,
            parent_id=parent.span_id if parent is not None else None,
            worker=worker_id,
            specs=len(group),
        ) as dispatch_span:
            weight = (
                self.tenancy.weight(tenant)
                if self.tenancy is not None and tenant is not None
                else 1.0
            )
            requests = [
                encode_request(
                    spec,
                    request_id=local_id,
                    version=PROTOCOL_VERSION,
                    trace=wire_trace,
                    priority=priority,
                    span=(
                        dispatch_span.span_id if dispatch_span is not None else None
                    ),
                    tenant=tenant,
                )
                for local_id, (_, spec) in enumerate(group)
            ]
            responses = worker.submit(
                requests,
                priority=priority,
                tenant=tenant if tenant is not None else "default",
                weight=weight,
            )
            if len(responses) != len(requests):
                raise WorkerDeadError(
                    f"worker {worker_id} answered {len(responses)} responses "
                    f"for {len(requests)} requests"
                )
        with self._lock:
            self._routed[worker_id] += len(group)
        self._m_routed[worker_id].inc(len(group))
        get_default_exemplars().note(f"router.routed.{worker_id}", wire_trace)
        return [decode_response(response) for response in responses]

    def _run_plan(self, spec: PipelineSpec, tenant: str | None = None) -> TaskResult:
        from ..serving.service import run_pipeline_spec

        def submit(specs: Sequence[TaskSpec]) -> list[TaskResult]:
            # Wave submissions keep the plan's tenant so worker-side
            # weighted-fair queues see the right weight (no re-admission:
            # the plan was charged once at the front door).
            return self._dispatch(specs, tenant=tenant)

        return run_pipeline_spec(spec, submit)

    # -------------------------------------------------------------- wire front
    def handle_batch(self, requests: Sequence[Any]) -> list[dict]:
        """Answer raw wire requests (either protocol generation) in order.

        Parsing and error encoding go through the same
        :func:`repro.serving.service.parse_batch` helper the single-process
        service uses, so the two front-ends answer malformed input
        identically — ``python -m repro serve --cluster`` is this method
        behind a socket.
        """
        from ..serving.service import parse_batch

        parsed_entries, responses = parse_batch(requests)
        # Wire batches can mix tenants; submit_specs charges one tenant per
        # call, so group by claimed tenant (everything is one "" group with
        # tenancy off — the pre-tenancy behaviour, bit for bit).
        groups: dict[str, list] = {}
        for position, parsed in parsed_entries:
            claimed = parsed.tenant or "" if self.tenancy is not None else ""
            groups.setdefault(claimed, []).append((position, parsed))
        for claimed, group in groups.items():
            specs = [parsed.spec for _, parsed in group]
            priority = max(parsed.priority for _, parsed in group)
            # Forward the batch's trace id to the workers when it is
            # unambiguous (all requests under one Trace context — the
            # common client batch); mixed-trace batches forward nothing.
            # The caller's span id parents this hop under the same condition.
            traces = {parsed.trace for _, parsed in group if parsed.trace}
            batch_trace = traces.pop() if len(traces) == 1 else None
            spans = {parsed.span for _, parsed in group if parsed.span}
            batch_parent = (
                spans.pop() if batch_trace is not None and len(spans) == 1 else None
            )
            for (position, parsed), result in zip(
                group,
                self.submit_specs(
                    specs,
                    priority=priority,
                    trace=batch_trace,
                    span_parent=batch_parent,
                    tenant=claimed or None,
                ),
            ):
                if result.error is not None:
                    responses[position] = encode_error(
                        result.error,
                        parsed.id,
                        parsed.version,
                        trace=parsed.trace,
                        tenant=parsed.tenant,
                    )
                else:
                    responses[position] = encode_success(
                        result,
                        parsed.id,
                        parsed.version,
                        trace=parsed.trace,
                        tenant=parsed.tenant,
                    )
        return [response for response in responses if response is not None]

    # ------------------------------------------------------------------ health
    def check_health(self) -> dict[str, bool]:
        """Ping every worker; mark and un-ring the dead.  Returns id → alive."""
        alive = {}
        for worker_id, worker in self.workers.items():
            ok = worker.ping()
            alive[worker_id] = ok
            if not ok and worker_id in self._ring:
                self._mark_dead(worker_id)
        return alive

    def _maybe_sweep(self) -> None:
        if self._health_interval is None:
            return
        now = time.monotonic()
        if now - self._last_health >= self._health_interval:
            self._last_health = now
            self.check_health()

    def _mark_dead(self, worker_id: str) -> None:
        with self._lock:
            if worker_id in self._ring:
                self._ring.remove(worker_id)
                self._deaths += 1
                self._m_deaths.inc()
                died = True
            else:
                died = False
        if died:
            emit_event(
                "worker.death", worker=worker_id, survivors=len(self._ring.nodes)
            )

    @property
    def live_workers(self) -> set[str]:
        return self._ring.nodes

    # ------------------------------------------------------------------- stats
    def stats_snapshot(
        self, prefix: str = "", *, reset: bool = False, tenant: str = ""
    ) -> dict:
        """The observability snapshot a ``stats`` request answers with.

        Combines the aggregated :class:`ClusterStats` rows with the metric
        registry (batcher/engine/cache counters of every thread worker live
        in the same process registry) and the admission-control state.  With
        ``reset`` the registry is zeroed in place after the snapshot; with
        ``tenant`` (and tenancy on) the metrics narrow to that tenant's
        ``tenant.<name>.*`` series and the tenancy section to its state.
        """
        if tenant and not prefix and self.tenancy is not None:
            prefix = f"tenant.{self.tenancy.resolve(tenant)}."
        snapshot = {
            "cluster": self.stats().to_payload(),
            "admission": {
                "max_inflight": self.admission.max_inflight,
                "max_queue_depth": self.admission.max_queue_depth,
                "pending": self.admission.pending,
                "inflight": self.admission.inflight,
                "queue_depth": self.admission.queued,
                "retry_after": self.admission.retry_after,
            },
            "metrics": self._metrics.snapshot(prefix),
            "exemplars": get_default_exemplars().snapshot(),
        }
        if self.tenancy is not None:
            snapshot["tenancy"] = self.tenancy.snapshot(tenant or None)
        snapshot.update(self.monitor.sections(prefix))
        if reset:
            self._metrics.reset()
        return snapshot

    def stats(self) -> ClusterStats:
        """Aggregate a :class:`ClusterStats` snapshot across all workers."""
        rows: list[WorkerStats] = []
        for worker_id, worker in self.workers.items():
            row = worker.stats()
            row.alive = worker_id in self._ring and row.alive
            row.routed = self._routed.get(worker_id, 0)
            rows.append(row)
        with self._lock:
            return ClusterStats(
                workers=rows,
                routed=sum(self._routed.values()),
                requeues=self._requeues,
                deaths=self._deaths,
            )

    # --------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the pool down and close every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.monitor.stop()
        self._pool.shutdown(wait=True)
        for worker in self.workers.values():
            worker.close()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
