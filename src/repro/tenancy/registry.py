"""Tenant configuration: who gets what share, rate and cap.

:class:`TenantRegistry` maps tenant names to :class:`TenantConfig` records —
scheduling ``weight`` (fair-share proportion at dequeue), token-bucket
``rate``/``burst`` (admission rate limiting) and ``max_inflight`` (a hard
cap on that tenant's concurrently admitted requests).  A registry always
contains a catch-all ``default`` tenant, so untagged v1/v2 traffic keeps
working, and *unknown* tenant names resolve to it too — an adversarial
client inventing fresh names per request shares one bucket and one metric
series instead of minting unbounded per-name state.

Two serialized forms feed the CLI (``repro serve --tenant`` /
``--tenants-file``):

* inline — ``name,weight=2,rate=50,burst=100,max_inflight=8`` (every knob
  optional);
* JSON file — ``{"name": {"weight": 2, "rate": 50, ...}, ...}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

from .fairqueue import DEFAULT_TENANT

#: Knobs the serialized forms accept, in canonical order.
_CONFIG_KEYS = ("weight", "rate", "burst", "max_inflight")


@dataclass(frozen=True)
class TenantConfig:
    """Per-tenant scheduling weight, token-bucket knobs and inflight cap."""

    name: str
    #: Fair-share proportion at dequeue (relative to other tenants).
    weight: float = 1.0
    #: Token-bucket refill rate (requests/second); ``None`` = unlimited.
    rate: float | None = None
    #: Token-bucket capacity; defaults to ``rate`` when limiting is on.
    burst: float | None = None
    #: Hard cap on concurrently admitted requests; ``None`` = uncapped.
    max_inflight: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("tenant name must be a non-empty string")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"tenant {self.name!r}: rate must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ValueError(f"tenant {self.name!r}: burst must be positive")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(f"tenant {self.name!r}: max_inflight must be >= 1")

    # ----------------------------------------------------------- serialization
    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"weight": self.weight}
        if self.rate is not None:
            payload["rate"] = self.rate
        if self.burst is not None:
            payload["burst"] = self.burst
        if self.max_inflight is not None:
            payload["max_inflight"] = self.max_inflight
        return payload

    @classmethod
    def from_payload(cls, name: str, payload: Mapping[str, Any]) -> "TenantConfig":
        if not isinstance(payload, Mapping):
            raise ValueError(f"tenant {name!r}: config must be an object")
        unknown = set(payload) - set(_CONFIG_KEYS)
        if unknown:
            raise ValueError(
                f"tenant {name!r}: unknown config keys {sorted(unknown)}; "
                f"expected {list(_CONFIG_KEYS)}"
            )
        max_inflight = payload.get("max_inflight")
        return cls(
            name=name,
            weight=float(payload.get("weight", 1.0)),
            rate=_opt_float(name, "rate", payload.get("rate")),
            burst=_opt_float(name, "burst", payload.get("burst")),
            max_inflight=int(max_inflight) if max_inflight is not None else None,
        )

    @classmethod
    def parse_inline(cls, text: str) -> "TenantConfig":
        """Parse the CLI form ``name[,knob=value,...]``."""
        parts = [part.strip() for part in text.split(",") if part.strip()]
        if not parts:
            raise ValueError("empty tenant specification")
        name, payload = parts[0], {}
        for part in parts[1:]:
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"tenant {name!r}: expected knob=value, got {part!r}"
                )
            key = key.strip()
            if key not in _CONFIG_KEYS:
                raise ValueError(
                    f"tenant {name!r}: unknown knob {key!r}; "
                    f"expected one of {list(_CONFIG_KEYS)}"
                )
            try:
                payload[key] = float(value) if key != "max_inflight" else int(value)
            except ValueError:
                raise ValueError(
                    f"tenant {name!r}: {key} must be numeric, got {value!r}"
                ) from None
        return cls.from_payload(name, payload)


def _opt_float(name: str, key: str, value: Any) -> float | None:
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"tenant {name!r}: {key} must be a number")
    return float(value)


class TenantRegistry:
    """Named tenant configurations plus the catch-all ``default``.

    The ``default`` tenant is always present (permissive unless explicitly
    configured) and :meth:`resolve` maps unknown names onto it, so a front
    door can pass any claimed tenant string through without minting
    per-name state.
    """

    def __init__(self, configs: Iterable[TenantConfig] = ()):
        self._configs: dict[str, TenantConfig] = {
            DEFAULT_TENANT: TenantConfig(DEFAULT_TENANT)
        }
        for config in configs:
            self.register(config)

    def register(self, config: TenantConfig) -> None:
        """Add or replace one tenant's configuration."""
        self._configs[config.name] = config

    def resolve(self, tenant: str | None) -> TenantConfig:
        """The effective config for a claimed tenant name.

        ``None``, empty and unknown names all resolve to ``default``; state
        and metrics key on the *resolved* config's name.
        """
        if tenant:
            config = self._configs.get(tenant)
            if config is not None:
                return config
        return self._configs[DEFAULT_TENANT]

    def get(self, name: str) -> TenantConfig | None:
        return self._configs.get(name)

    def names(self) -> list[str]:
        return list(self._configs)

    def __contains__(self, name: str) -> bool:
        return name in self._configs

    def __iter__(self) -> Iterator[TenantConfig]:
        return iter(self._configs.values())

    def __len__(self) -> int:
        return len(self._configs)

    # ----------------------------------------------------------- serialization
    def to_payload(self) -> dict[str, dict[str, Any]]:
        return {config.name: config.to_payload() for config in self}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TenantRegistry":
        if not isinstance(payload, Mapping):
            raise ValueError("tenant config must be an object mapping name -> knobs")
        return cls(
            TenantConfig.from_payload(name, knobs) for name, knobs in payload.items()
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "TenantRegistry":
        """Load the JSON-file form (see the module docstring)."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"tenants file {path}: bad JSON: {exc}") from None
        return cls.from_payload(payload)


__all__ = ["DEFAULT_TENANT", "TenantConfig", "TenantRegistry"]
