"""Schema definitions for relational tables stored in a data lake.

A :class:`Schema` is an ordered collection of :class:`Attribute` objects.  The
paper (Section 3) treats every data-lake element ``D_i`` as a relational table
with a schema ``S_i``; tasks select an attribute subset ``S ⊆ S_i``.  We keep
the model deliberately small: attributes have a name, a coarse type and a few
optional annotations (primary-key flag, free-text description, semantic domain
tag) that the retrieval and parsing components can exploit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


class AttributeType(str, enum.Enum):
    """Coarse value types carried by a table column."""

    TEXT = "text"
    CATEGORICAL = "categorical"
    NUMERIC = "numeric"
    DATE = "date"
    IDENTIFIER = "identifier"

    def is_numeric(self) -> bool:
        return self is AttributeType.NUMERIC


@dataclass(frozen=True)
class Attribute:
    """A single column of a relational table.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    type:
        Coarse :class:`AttributeType`; defaults to free text.
    primary_key:
        Whether the column identifies a record (used to build the target query
        ``Q`` for imputation, e.g. ``"Copenhagen, timezone"``).
    description:
        Optional human-readable description (surfaced to the LLM as metadata).
    domain:
        Optional semantic-domain tag, e.g. ``"geography.city"``.  The simulated
        LLM uses domain tags to decide how familiar a value is.
    """

    name: str
    type: AttributeType = AttributeType.TEXT
    primary_key: bool = False
    description: str = ""
    domain: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class Schema:
    """Ordered, name-addressable collection of :class:`Attribute` objects."""

    def __init__(self, attributes: Iterable[Attribute | str]):
        attrs: list[Attribute] = []
        for a in attributes:
            attrs.append(Attribute(a) if isinstance(a, str) else a)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate attribute names in schema: {dupes}")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._by_name: dict[str, Attribute] = {a.name: a for a in attrs}

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        if isinstance(name, Attribute):
            return name.name in self._by_name
        return name in self._by_name

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        return self._by_name[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({[a.name for a in self._attributes]})"

    # -- accessors ----------------------------------------------------------
    @property
    def names(self) -> list[str]:
        """Attribute names in declaration order."""
        return [a.name for a in self._attributes]

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    def get(self, name: str) -> Attribute | None:
        return self._by_name.get(name)

    def primary_key(self) -> Attribute | None:
        """Return the (first) primary-key attribute, if declared."""
        for a in self._attributes:
            if a.primary_key:
                return a
        return None

    def index_of(self, name: str) -> int:
        for i, a in enumerate(self._attributes):
            if a.name == name:
                return i
        raise KeyError(name)

    # -- derivation ---------------------------------------------------------
    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema restricted to ``names`` (in the given order)."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise KeyError(f"unknown attributes: {missing}")
        return Schema([self._by_name[n] for n in names])

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a new schema with ``names`` removed."""
        drop = set(names)
        return Schema([a for a in self._attributes if a.name not in drop])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a new schema with attributes renamed according to ``mapping``."""
        out = []
        for a in self._attributes:
            if a.name in mapping:
                out.append(
                    Attribute(
                        name=mapping[a.name],
                        type=a.type,
                        primary_key=a.primary_key,
                        description=a.description,
                        domain=a.domain,
                    )
                )
            else:
                out.append(a)
        return Schema(out)
