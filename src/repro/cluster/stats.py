"""Aggregated cluster metrics — one snapshot across every worker.

:meth:`repro.cluster.router.Router.stats` assembles a :class:`ClusterStats`
from per-worker :class:`WorkerStats` plus the router's own counters (specs
routed, requeues after worker deaths).  Thread workers report their full
serving-stack internals (cache hits, persistent entries, engine throughput);
subprocess workers live in another process, so only the router-side counters
and liveness are known for them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ClusterStats", "WorkerStats"]


@dataclass
class WorkerStats:
    """One worker's view of the world at snapshot time."""

    worker_id: str
    alive: bool = True
    #: Specs the router sent this worker (router-side counter).
    routed: int = 0
    #: Requests the worker's service answered (thread workers only).
    requests_served: int = 0
    #: LLM cache counters (thread workers only; 0 when unknown).
    cache_hits: int = 0
    cache_misses: int = 0
    persistent_hits: int = 0
    #: Entries in the worker's persistent cache shard (-1 when unknown).
    cache_entries: int = -1

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_payload(self) -> dict[str, Any]:
        return {
            "worker_id": self.worker_id,
            "alive": self.alive,
            "routed": self.routed,
            "requests_served": self.requests_served,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "persistent_hits": self.persistent_hits,
            "cache_entries": self.cache_entries,
        }


@dataclass
class ClusterStats:
    """Cluster-wide aggregate: per-worker rows plus router counters."""

    workers: list[WorkerStats] = field(default_factory=list)
    #: Specs routed since the router started.
    routed: int = 0
    #: Specs re-routed to a surviving worker after their owner died.
    requeues: int = 0
    #: Workers declared dead so far.
    deaths: int = 0
    #: Persistent-cache entries moved shard-to-shard by ring resizes.
    migrations: int = 0
    #: Ring resizes (joins + leaves) since the router started.
    resizes: int = 0
    #: Crashed workers revived in place (same id, same shard).
    restarts: int = 0
    #: Workers currently draining out (un-ringed, finishing work).
    draining: int = 0

    @property
    def alive_workers(self) -> int:
        return sum(1 for worker in self.workers if worker.alive)

    @property
    def cache_hits(self) -> int:
        return sum(worker.cache_hits for worker in self.workers)

    @property
    def cache_misses(self) -> int:
        return sum(worker.cache_misses for worker in self.workers)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_payload(self) -> dict[str, Any]:
        return {
            "workers": [worker.to_payload() for worker in self.workers],
            "routed": self.routed,
            "requeues": self.requeues,
            "deaths": self.deaths,
            "migrations": self.migrations,
            "resizes": self.resizes,
            "restarts": self.restarts,
            "draining": self.draining,
            "alive_workers": self.alive_workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def describe(self) -> str:
        """One line per worker plus the aggregate, for CLI output."""
        lines = [
            f"cluster: {self.alive_workers}/{len(self.workers)} workers alive, "
            f"{self.routed} specs routed, {self.requeues} requeued, "
            f"{self.resizes} resizes ({self.migrations} entries migrated, "
            f"{self.restarts} restarts), hit rate {self.hit_rate:.2f}"
        ]
        for worker in self.workers:
            state = "up" if worker.alive else "DEAD"
            lines.append(
                f"  {worker.worker_id}: {state}, routed {worker.routed}, "
                f"served {worker.requests_served}, "
                f"hits {worker.cache_hits}/{worker.cache_hits + worker.cache_misses}"
            )
        return "\n".join(lines)
