"""Observability layer: metrics, request tracing and admission control.

The serving stack (engine → batcher → cache → router) grew fast; this
package is the measurement layer that keeps it honest.  Three pieces:

* :mod:`repro.obs.metrics` — a dependency-free metrics core: thread-safe
  :class:`Counter`, :class:`Gauge` and fixed-bucket latency
  :class:`Histogram` objects behind a :class:`MetricsRegistry` whose
  ``snapshot()`` is plain JSON (counters, gauges, histogram percentiles).
  Every hot path of the stack is instrumented against the process-default
  registry, so one snapshot describes the whole serving process.
* :mod:`repro.obs.trace` — the :class:`Trace` context: every request gets a
  trace id that travels inside the v2 wire envelope (``"trace"`` key) and is
  echoed on the response, so a request can be followed client → service →
  logs without any shared infrastructure.
* :mod:`repro.obs.admission` — load shedding: an
  :class:`AdmissionController` bounds in-flight and queued requests and
  rejects the excess with a structured ``overloaded`` protocol error
  (retry-after hint) instead of queueing unboundedly, plus a
  :class:`PriorityLock` so higher-priority batches dequeue first.

Snapshots are exposed end-to-end: the ``stats`` wire type
(:class:`repro.api.stats_spec.StatsSpec`), :meth:`repro.api.Client.stats`,
``python -m repro stats`` and ``serve --stats-port``.  See
``docs/observability.md`` for the metric name catalogue.
"""

from .admission import (
    AdmissionController,
    PriorityLock,
    serve_stats_in_thread,
    start_stats_server,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_default_registry,
)
from .trace import Trace, new_trace_id

__all__ = [
    "AdmissionController",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PriorityLock",
    "Trace",
    "get_default_registry",
    "new_trace_id",
    "serve_stats_in_thread",
    "start_stats_server",
]
