"""Structured API errors shared by the client facade and the wire protocol.

PR 1's service reported failures as bare strings, which forced clients to
parse prose.  The v2 protocol instead carries an :class:`ErrorInfo` object —
a stable ``code``, a human-readable ``message`` and (for validation errors)
the offending ``field`` — and the exceptions below map onto it.

:class:`InvalidRequestError` deliberately subclasses :class:`ValueError` so
that pre-existing call sites (and tests) that expect ``ValueError`` from
request validation keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True)
class ErrorInfo:
    """Wire-serializable description of a failure."""

    code: str
    message: str
    field: str | None = None
    #: Back-off hint (seconds) carried by admission-control rejections.
    retry_after: float | None = None
    #: Optional structured context (e.g. `overloaded` carries the shedding
    #: controller's `queue_depth` / `inflight` / `capacity` at shed time).
    details: Mapping[str, Any] | None = None

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.field is not None:
            payload["field"] = self.field
        if self.retry_after is not None:
            payload["retry_after"] = self.retry_after
        if self.details is not None:
            payload["details"] = dict(self.details)
        return payload

    @classmethod
    def from_payload(cls, payload: Any) -> "ErrorInfo":
        if isinstance(payload, str):  # v1 responses carry a bare string
            return cls(code="error", message=payload)
        if not isinstance(payload, dict):
            return cls(code="error", message=str(payload))
        retry_after = payload.get("retry_after")
        details = payload.get("details")
        return cls(
            code=str(payload.get("code", "error")),
            message=str(payload.get("message", "")),
            field=payload.get("field"),
            retry_after=float(retry_after) if retry_after is not None else None,
            details=dict(details) if isinstance(details, dict) else None,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" (field: {self.field})" if self.field else ""
        return f"[{self.code}] {self.message}{where}"


class ApiError(Exception):
    """Base class of all errors raised by the :mod:`repro.api` facade."""

    code = "error"

    def __init__(
        self,
        message: str,
        *,
        field: str | None = None,
        code: str | None = None,
        retry_after: float | None = None,
        details: Mapping[str, Any] | None = None,
    ):
        super().__init__(message)
        self.message = message
        self.field = field
        self.retry_after = retry_after
        self.details = dict(details) if details is not None else None
        if code is not None:
            self.code = code

    @property
    def info(self) -> ErrorInfo:
        return ErrorInfo(
            code=self.code,
            message=self.message,
            field=self.field,
            retry_after=self.retry_after,
            details=self.details,
        )

    @classmethod
    def from_info(cls, info: ErrorInfo) -> "ApiError":
        return cls(
            info.message,
            field=info.field,
            code=info.code,
            retry_after=info.retry_after,
            details=info.details,
        )


class InvalidRequestError(ApiError, ValueError):
    """A request failed validation before reaching the pipeline."""

    code = "invalid_request"


class UnknownTaskTypeError(InvalidRequestError):
    """The request named a task type outside the registry."""

    code = "unknown_task_type"


class ProtocolError(InvalidRequestError):
    """The request envelope itself was malformed (bad version, bad shape)."""

    code = "protocol_error"


class TransportError(ApiError):
    """The remote service could not be reached or answered garbage."""

    code = "transport_error"


class TaskFailedError(ApiError):
    """The service answered with an error response for a submitted task."""

    code = "task_failed"

    @classmethod
    def from_info(cls, info: ErrorInfo) -> "TaskFailedError":
        return cls(
            info.message,
            field=info.field,
            code=info.code,
            retry_after=info.retry_after,
            details=info.details,
        )


class OverloadedError(ApiError):
    """Admission control shed the request; retry after ``retry_after`` s.

    Raised client-side when a shed response surfaces through ``submit``;
    service-side it is encoded directly as an ``overloaded`` error response
    (see :class:`repro.obs.AdmissionController`).
    """

    code = "overloaded"


class RateLimitedError(ApiError):
    """A per-tenant limit shed the request; retry after ``retry_after`` s.

    The tenancy counterpart of :class:`OverloadedError`: the request was
    rejected by its tenant's token bucket or ``max_inflight`` cap, not by
    global capacity (see :class:`repro.tenancy.TenancyController`).
    ``details`` carries the tenant name, the violated limit and the
    ``reason`` (``"rate"`` or ``"inflight"``).
    """

    code = "rate_limited"


#: Every ``error.code`` value a v2 response can carry, with the condition it
#: reports.  This is the registry ``scripts/gen_protocol_docs.py`` renders
#: into ``docs/wire-protocol.md`` — add new codes here, not just inline.
ERROR_CODES: dict[str, str] = {
    "invalid_request": "A task payload failed validation; `field` names the offending key.",
    "unknown_task_type": "The request named a `type` outside the spec registry.",
    "protocol_error": "The envelope itself was malformed (bad `v`, missing `task` object).",
    "bad_json": "A request line never parsed as JSON (reported in position).",
    "bad_frame": "A negotiated connection lost frame sync (torn frame, oversized declared length, undecodable payload); the response is best-effort with `id: null` and the connection closes — reconnect to recover.",
    "pipeline_failed": "A `pipeline` request's plan failed mid-execution; the message names the stage.",
    "overloaded": "Admission control shed the request (`max_inflight`/`max_queue_depth` exceeded); `retry_after` hints the back-off in seconds and `details` carries the controller state at shed time (`queue_depth`, `inflight`, `pending`, `capacity`).",
    "rate_limited": "The request's tenant exceeded its token-bucket rate or `max_inflight` cap; `retry_after` hints the back-off in seconds and `details` carries the tenant state at shed time (`tenant`, `reason` — `rate` or `inflight` —, `rate`, `burst`, `max_inflight`, `inflight`).",
    "task_failed": "Client-side marker for an error response surfaced through `submit`.",
    "transport_error": "Client-side: the service was unreachable or answered garbage.",
    "error": "Catch-all used when a v1 bare-string error is lifted into the structured shape.",
}
